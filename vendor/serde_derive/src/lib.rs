//! No-op stand-ins for serde's derive macros.
//!
//! The workspace annotates config/result structs with
//! `#[derive(Serialize, Deserialize)]` so they are ready for real serde, but
//! nothing in the tree actually serializes them yet and the build
//! environment is offline. These derives therefore expand to nothing; the
//! companion `vendor/serde` crate provides blanket trait impls so any
//! `T: Serialize` bounds still hold.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` annotation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` annotation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
