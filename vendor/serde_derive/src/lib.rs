//! Real (if minimal) derive macros for the vendored `serde` stand-in.
//!
//! Earlier PRs shipped these as no-ops; the sweep subsystem needs actual
//! serialization, so the macros now generate working `Serialize` /
//! `Deserialize` impls against `vendor/serde`'s value-tree data model.
//!
//! The build environment is offline, so there is no `syn`/`quote`: the
//! item is parsed directly from the `proc_macro::TokenStream` and the impl
//! is emitted as a formatted string. Supported shapes — the strict subset
//! the workspace actually derives on:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are unit or single-field tuples
//!   (externally tagged: `Unit` ⇒ `"Unit"`, `Var(x)` ⇒ `{"Var": x}`).
//!
//! Anything else produces a `compile_error!` naming the unsupported
//! construct, so a future derive site fails loudly instead of serializing
//! wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` (value-tree `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum; each variant is `(name, tuple_arity)` with arity 0 (unit) or 1.
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => {
            if serialize {
                gen_serialize(&item)
            } else {
                gen_deserialize(&item)
            }
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Parses the derive input item down to names: item kind, type name, and
/// field/variant names. Types of fields are irrelevant — the generated
/// code delegates to `serde::Serialize`/`Deserialize` impls.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match ident_at(&tokens, i) {
        Some(k) if k == "struct" || k == "enum" => k,
        Some(other) => return Err(format!("serde_derive: unsupported item `{other}`")),
        None => return Err("serde_derive: expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name =
        ident_at(&tokens, i).ok_or_else(|| "serde_derive: expected item name".to_string())?;
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic parameters on `{name}` are not supported"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde_derive: `{name}` must have a braced body (tuple/unit structs unsupported)"
            ))
        }
    };
    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skips leading `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Splits a brace-group token stream at top-level commas, tracking `<...>`
/// angle-bracket depth so generic arguments don't split fields.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().expect("non-empty parts").push(tt);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for part in split_top_level(body) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        match part.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            _ => return Err("serde_derive: expected a named field".to_string()),
        }
        match part.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "serde_derive: field `{}` must be named (tuple structs unsupported)",
                    fields.last().expect("just pushed")
                ))
            }
        }
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    for part in split_top_level(body) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde_derive: expected an enum variant".to_string()),
        };
        let arity = match part.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                split_top_level(g.stream()).len()
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive: struct variant `{name}` is not supported"
                ))
            }
            _ => 0,
        };
        if arity > 1 {
            return Err(format!(
                "serde_derive: multi-field tuple variant `{name}` is not supported"
            ));
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}, ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::object(vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| {
                    if *arity == 0 {
                        format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),")
                    } else {
                        format!(
                            "{name}::{v}(x0) => ::serde::Value::object(vec![({v:?}, \
                             ::serde::Serialize::to_value(x0))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field({f:?})?)?,"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         ::core::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                inits = inits.join("\n")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            let tuple_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 1)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::core::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(inner)?)),"
                    )
                })
                .collect();
            let unit_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::core::option::Option::Some(s) = value.as_str() {{\n\
                         return match s {{\n\
                             {arms}\n\
                             other => ::core::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }};\n\
                     }}",
                    arms = unit_arms.join("\n")
                )
            };
            let tuple_block = if tuple_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::core::option::Option::Some((tag, inner)) = value.single_entry() {{\n\
                         return match tag {{\n\
                             {arms}\n\
                             other => ::core::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }};\n\
                     }}",
                    arms = tuple_arms.join("\n")
                )
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         {unit_block}\n\
                         {tuple_block}\n\
                         ::core::result::Result::Err(::serde::Error::custom(format!(\
                             \"expected a {name} variant, found {{}}\", value.kind())))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
