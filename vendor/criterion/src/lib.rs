//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset used by `crates/bench/benches/*`: benchmark groups
//! with a configurable sample count, `bench_function` with a
//! [`Bencher::iter`] closure, and the `criterion_group!`/`criterion_main!`
//! macros. Timing is a simple median-of-samples over an adaptively chosen
//! iteration count — good enough for relative comparisons, with none of
//! real criterion's statistics.
//!
//! Like the real crate, measurement only happens when the binary is passed
//! `--bench` (which `cargo bench` does); under `cargo test` each benchmark
//! body runs exactly once so test runs stay fast.

use std::time::{Duration, Instant};

/// Target wall-clock time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// Entry point handed to each benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; anything else (notably `cargo
        // test`, which passes `--test` or nothing) gets the fast run-once
        // mode, matching real criterion's behavior.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = !args.iter().any(|a| a == "--bench");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            test_mode: self.test_mode,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named set of benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` and prints a `group/name: median ns/iter` line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        if self.test_mode {
            let mut b = Bencher { mode: Mode::Once };
            f(&mut b);
            println!("test {label} ... ok (ran once)");
            return self;
        }
        let mut b = Bencher {
            mode: Mode::Measure {
                samples: self.sample_size,
                results: Vec::with_capacity(self.sample_size),
            },
        };
        f(&mut b);
        if let Mode::Measure { results, .. } = &mut b.mode {
            results.sort();
            let median = results.get(results.len() / 2).copied().unwrap_or(0);
            println!(
                "{label:<40} median {median:>12} ns/iter ({} samples)",
                results.len()
            );
        }
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

enum Mode {
    /// `cargo test` pass: execute the body a single time, no timing.
    Once,
    Measure {
        samples: usize,
        /// Median per-iteration nanoseconds of each sample.
        results: Vec<u128>,
    },
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match &mut self.mode {
            Mode::Once => {
                std::hint::black_box(routine());
            }
            Mode::Measure { samples, results } => {
                // Warm up and size the batch so one sample ≈ SAMPLE_TARGET.
                let t0 = Instant::now();
                std::hint::black_box(routine());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
                for _ in 0..*samples {
                    let t = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(routine());
                    }
                    results.push(t.elapsed().as_nanos() / iters as u128);
                }
            }
        }
    }
}

/// Declares `fn $name()` that runs each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `fn main()` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
