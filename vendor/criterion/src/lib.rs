//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset used by `crates/bench/benches/*`: benchmark groups
//! with a configurable sample count, `bench_function` with a
//! [`Bencher::iter`] closure, and the `criterion_group!`/`criterion_main!`
//! macros. Timing is a simple median-of-samples over an adaptively chosen
//! iteration count — good enough for relative comparisons, with none of
//! real criterion's statistics.
//!
//! Like the real crate, measurement only happens when the binary is passed
//! `--bench` (which `cargo bench` does); under `cargo test` each benchmark
//! body runs exactly once so test runs stay fast. Passing `--quick`
//! (e.g. `cargo bench -- --quick`, as CI's smoke step does) caps the run
//! at a few short samples per benchmark — enough to prove the benchmarks
//! execute, not to produce stable numbers.

use std::time::{Duration, Instant};

/// Target wall-clock time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// Target sample time under `--quick` (smoke-test mode).
const QUICK_SAMPLE_TARGET: Duration = Duration::from_millis(2);

/// Samples per benchmark under `--quick`.
const QUICK_SAMPLES: usize = 3;

/// Entry point handed to each benchmark function.
pub struct Criterion {
    test_mode: bool,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; anything else (notably `cargo
        // test`, which passes `--test` or nothing) gets the fast run-once
        // mode, matching real criterion's behavior. `--quick` mirrors real
        // criterion's flag: measure, but as briefly as possible.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = !args.iter().any(|a| a == "--bench");
        let quick = args.iter().any(|a| a == "--quick");
        Criterion { test_mode, quick }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            test_mode: self.test_mode,
            quick: self.quick,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named set of benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    test_mode: bool,
    quick: bool,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` and prints a `group/name: median ns/iter` line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        if self.test_mode {
            let mut b = Bencher { mode: Mode::Once };
            f(&mut b);
            println!("test {label} ... ok (ran once)");
            return self;
        }
        let samples = if self.quick {
            self.sample_size.min(QUICK_SAMPLES)
        } else {
            self.sample_size
        };
        let mut b = Bencher {
            mode: Mode::Measure {
                samples,
                quick: self.quick,
                results: Vec::with_capacity(samples),
            },
        };
        f(&mut b);
        if let Mode::Measure { results, .. } = &mut b.mode {
            results.sort();
            let median = results.get(results.len() / 2).copied().unwrap_or(0);
            println!(
                "{label:<40} median {median:>12} ns/iter ({} samples)",
                results.len()
            );
        }
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

enum Mode {
    /// `cargo test` pass: execute the body a single time, no timing.
    Once,
    Measure {
        samples: usize,
        /// Shorten warm-up and samples to smoke-test length.
        quick: bool,
        /// Median per-iteration nanoseconds of each sample.
        results: Vec<u128>,
    },
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match &mut self.mode {
            Mode::Once => {
                std::hint::black_box(routine());
            }
            Mode::Measure {
                samples,
                quick,
                results,
            } => {
                // Warm up and size the batch so one sample ≈ the target.
                let target = if *quick {
                    QUICK_SAMPLE_TARGET
                } else {
                    SAMPLE_TARGET
                };
                let t0 = Instant::now();
                std::hint::black_box(routine());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
                for _ in 0..*samples {
                    let t = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(routine());
                    }
                    results.push(t.elapsed().as_nanos() / iters as u128);
                }
            }
        }
    }
}

/// Declares `fn $name()` that runs each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `fn main()` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
