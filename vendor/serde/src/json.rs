//! JSON text ↔ [`Value`](crate::Value): a writer and a recursive-descent
//! parser (RFC 8259 subset — no duplicate-key policing, `\u` escapes
//! limited to the BMP plus surrogate pairs).
//!
//! Stands in for `serde_json`: `to_string` / `to_string_pretty` /
//! `from_str` mirror that crate's entry points over this crate's
//! [`Serialize`]/[`Deserialize`] traits.
//!
//! Non-finite floats serialize as `null` (matching `serde_json`'s
//! behaviour) — a NaN/inf does not survive a round trip: it comes back
//! as `None` for an `Option` field and as a deserialize error otherwise.
//! Keep metrics finite before persisting them.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    out
}

/// Serializes `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    out
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an error describing the first syntax problem (with byte
/// offset) or shape mismatch.
pub fn from_str<T>(text: &str) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    T::from_value(&parse_value(text)?)
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns an error describing the first syntax problem, with its byte
/// offset in `text`.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-round-trip Display recovers the exact
                // f64 on parse; integral floats keep a ".0" marker so the
                // value stays float-kinded through a round trip.
                if f.fract() == 0.0 && f.abs() < 1e16 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                // JSON has no non-finite numbers; serde_json also emits null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                write_value(&items[i], out, indent, d);
            });
        }
        Value::Object(fields) => {
            write_seq(out, indent, depth, fields.len(), '{', '}', |out, i, d| {
                write_string(&fields[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&fields[i].1, out, indent, d);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid codepoint"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value(text).unwrap();
            assert_eq!(to_string(&v), text, "{text}");
        }
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 123456.789, -2.5] {
            let text = to_string(&f);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn integral_float_stays_float() {
        assert_eq!(to_string(&2.0f64), "2.0");
        let v = parse_value("2.0").unwrap();
        assert_eq!(v, Value::Float(2.0));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"name":"run","cells":[{"id":"abc","speedup":1.25},{"id":"def","speedup":1.5}],"n":2}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v), text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value(r#"{"a":[1,2],"b":{"c":null}}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ back \u{1F600} \u{7}";
        let text = to_string(&s.to_string());
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_parses() {
        let back: String = from_str(r#""😀""#).unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn syntax_errors_carry_position() {
        let err = parse_value("[1, 2,,]").unwrap_err();
        assert!(err.message().contains("at byte 6"), "{err}");
        assert!(parse_value("{\"a\": 1} trailing").is_err());
    }
}
