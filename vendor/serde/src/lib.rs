//! Offline stand-in for `serde` — now a *real* (if small) implementation.
//!
//! Earlier PRs shipped this crate as a pile of no-op blanket impls so the
//! `#[derive(Serialize, Deserialize)]` annotations across the workspace
//! stayed inert. The sweep subsystem needs actual serialization (JSON run
//! records, round-trippable bench results), so the stand-in grew up:
//!
//! * [`Value`] — an order-preserving JSON-like data model.
//! * [`Serialize`] / [`Deserialize`] — value-tree conversion traits,
//!   implemented for the primitives, `String`, `Option`, `Vec`, fixed-size
//!   arrays and small tuples used by the workspace's config/result structs.
//! * [`json`] — a writer and a recursive-descent parser connecting
//!   [`Value`] to RFC 8259 text.
//! * Real derive macros re-exported from `serde_derive` (named-field
//!   structs, unit enum variants, single-field tuple variants).
//!
//! The API is deliberately simpler than crates.io serde (a value tree, not
//! a zero-copy visitor pipeline). Swapping in the real `serde = { version
//! = "1", features = ["derive"] }` + `serde_json` remains the plan once
//! network access exists; the derive surface used by the workspace is a
//! strict subset of real serde's, so the swap is source-compatible for
//! everything except direct `Value` manipulation.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Serialization/deserialization error: a message, optionally with the
/// byte offset where JSON parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The JSON-like data model every `Serialize`/`Deserialize` impl converts
/// through. Object fields preserve insertion order so serialized output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, leading `-`).
    Int(i64),
    /// Unsigned integer (JSON number without fraction/exponent).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(&str, Value)` pairs (derive-codegen helper).
    pub fn object(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Unsigned integer payload, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            // Strict `<`: `u64::MAX as f64` rounds up to 2^64, which is
            // NOT representable — `<=` would let 2^64 saturate silently.
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f < u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Signed integer payload, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            // `i64::MIN as f64` is exactly -2^63 (representable, so `>=`),
            // but `i64::MAX as f64` rounds up to 2^63 (strict `<`).
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Looks up a field of an object; errors carry the field name
    /// (derive-codegen helper).
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The single `(key, value)` entry of a one-field object — the
    /// externally-tagged encoding of tuple enum variants (derive-codegen
    /// helper).
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Some((fields[0].0.as_str(), &fields[0].1))
            }
            _ => None,
        }
    }
}

/// Converts a value into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] data model. The `'de` lifetime
/// mirrors real serde's trait signature so generic bounds written against
/// crates.io serde keep compiling.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an error when `value`'s shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, found: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, found {}",
        found.kind()
    )))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .map_or_else(|| type_err(stringify!($t), value), Ok)
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .map_or_else(|| type_err(stringify!($t), value), Ok)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().map_or_else(|| type_err("f64", value), Ok)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map_or_else(|| type_err("f32", value), |f| Ok(f as f32))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map_or_else(|| type_err("string", value), |s| Ok(s.to_string()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N} elements, found {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => type_err("2-element array", other),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => type_err("3-element array", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(usize::from_value(&7usize.to_value()), Ok(7));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(9);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()), Ok(Some(9)));
        assert_eq!(Option::<u32>::from_value(&none.to_value()), Ok(None));
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        let arr = [(1usize, 2usize), (3, 4)];
        let v = arr.to_value();
        assert_eq!(<[(usize, usize); 2]>::from_value(&v), Ok(arr));
        let wrong = Value::Array(vec![Value::UInt(1)]);
        assert!(<[u8; 2]>::from_value(&wrong).is_err());
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = Value::object(vec![("a", Value::UInt(1))]);
        assert_eq!(obj.field("a"), Ok(&Value::UInt(1)));
        let err = obj.field("b").unwrap_err();
        assert!(err.message().contains("missing field `b`"));
    }

    #[test]
    fn numeric_widening_is_exact() {
        // Integer-valued floats deserialize into integer types.
        assert_eq!(u64::from_value(&Value::Float(8.0)), Ok(8));
        assert!(u64::from_value(&Value::Float(8.5)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn float_to_int_boundaries_reject_unrepresentable() {
        // 2^64 and 2^63 round-trip through f64 exactly but overflow the
        // integer types — they must error, not saturate.
        let two_pow_64 = 18_446_744_073_709_551_616.0f64;
        assert!(u64::from_value(&Value::Float(two_pow_64)).is_err());
        let two_pow_63 = 9_223_372_036_854_775_808.0f64;
        assert!(i64::from_value(&Value::Float(two_pow_63)).is_err());
        // The exactly-representable extremes still convert.
        assert_eq!(i64::from_value(&Value::Float(-two_pow_63)), Ok(i64::MIN));
        assert_eq!(u64::from_value(&Value::Float(2f64.powi(53))), Ok(1 << 53));
    }
}
