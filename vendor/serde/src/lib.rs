//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros from `serde_derive` and provides
//! blanket-implemented `Serialize`/`Deserialize` marker traits so generic
//! bounds written against serde still compile. No actual serialization is
//! performed anywhere in the workspace yet.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
