//! Minimal offline stand-in for the crates.io `bytes` crate.
//!
//! Implements the subset used by this workspace: an owned growable buffer
//! ([`BytesMut`]) with little-endian put methods, a cheaply cloneable
//! immutable view ([`Bytes`]) with cursor-style little-endian get methods,
//! and the [`Buf`]/[`BufMut`] traits that carry those methods. Semantics
//! match the real crate for this subset: reads advance the cursor and panic
//! if the buffer has too few remaining bytes.

use std::sync::Arc;

/// Read side of a byte buffer: cursor-style accessors that consume bytes.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Moves the cursor forward `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`, advancing the cursor.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }
}

/// Write side of a byte buffer: append-only little-endian put methods.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Unread length (identical to [`Buf::remaining`]).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a view of `range` within the unread bytes, sharing storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "buffer underflow");
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

/// A growable byte buffer; freeze it into an immutable [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut w = BytesMut::with_capacity(17);
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(42);
        w.put_f32_le(1.5);
        let mut r = w.freeze();
        assert_eq!(r.len(), 17);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_shares_storage_and_offsets() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mut s = b.slice(2..5);
        assert_eq!(s.chunk(), &[2, 3, 4]);
        s.advance(1);
        assert_eq!(s.chunk(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.get_u32_le();
    }
}
