//! Trains VGG13 on the synthetic CIFAR10 stand-in twice — plain backprop
//! vs ADA-GP — and prints the accuracy of both arms (the Table 1
//! comparison in miniature).
//!
//! ```sh
//! cargo run --release --example train_vgg_cifar
//! ```

use ada_gp::adagp::trainer::evaluate_accuracy;
use ada_gp::adagp::{AdaGp, AdaGpConfig, BaselineTrainer, ScheduleConfig};
use ada_gp::nn::data::{DatasetSpec, VisionDataset};
use ada_gp::nn::models::{build_cnn, CnnModel, ModelConfig};
use ada_gp::nn::optim::Sgd;
use ada_gp::tensor::Prng;

fn main() {
    let spec = DatasetSpec {
        classes: 10,
        channels: 3,
        size: 12,
        train_len: 160,
        test_len: 64,
    };
    let dataset = VisionDataset::new(spec, 42);
    let model_cfg = ModelConfig {
        width: 0.0625,
        depth_div: 4,
        classes: spec.classes,
    };
    let (epochs, batches, batch) = (6, 16, 8);

    // Arm 1: plain backprop.
    let mut rng = Prng::seed_from_u64(1);
    let mut bp_model = build_cnn(CnnModel::Vgg13, &model_cfg, 3, spec.size, &mut rng);
    let mut bp = BaselineTrainer::new();
    let mut opt = Sgd::new(0.01, 0.9);
    for epoch in 0..epochs {
        let mut loss = 0.0;
        for b in 0..batches {
            let (x, y) = dataset.train_batch(b, batch);
            loss += bp.train_batch(&mut bp_model, &mut opt, &x, &y).loss;
        }
        println!(
            "BP     epoch {epoch}: mean loss {:.3}",
            loss / batches as f32
        );
    }
    let bp_acc = evaluate_accuracy(&mut bp_model, (0..4).map(|b| dataset.test_batch(b, batch)));

    // Arm 2: ADA-GP (same init seed).
    let mut rng = Prng::seed_from_u64(1);
    let mut gp_model = build_cnn(CnnModel::Vgg13, &model_cfg, 3, spec.size, &mut rng);
    let mut cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: 2,
            epochs_per_stage: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    cfg.predictor.lr = 1e-3;
    let mut adagp = AdaGp::new(cfg, &mut gp_model, &mut rng);
    let mut opt = Sgd::new(0.01, 0.9);
    for epoch in 0..epochs {
        let mut loss = 0.0;
        for b in 0..batches {
            let (x, y) = dataset.train_batch(b, batch);
            loss += adagp.train_batch(&mut gp_model, &mut opt, &x, &y).loss;
        }
        println!(
            "ADA-GP epoch {epoch}: mean loss {:.3}",
            loss / batches as f32
        );
        adagp.controller_mut().end_epoch();
    }
    let gp_acc = evaluate_accuracy(&mut gp_model, (0..4).map(|b| dataset.test_batch(b, batch)));

    let (_, bp_batches, gp_batches) = adagp.controller_mut().phase_counts();
    println!();
    println!("BP baseline accuracy:  {bp_acc:.2}%");
    println!("ADA-GP accuracy:       {gp_acc:.2}%");
    println!(
        "ADA-GP skipped the backward pass on {gp_batches} of {} batches",
        bp_batches + gp_batches
    );
}
