//! Evaluates the accelerator cycle model: training speed-up and energy
//! saving of the three ADA-GP hardware designs for a few paper-scale
//! models (the Figures 17/21 computation on a small slice).
//!
//! ```sh
//! cargo run --release --example accelerator_speedup
//! ```

use ada_gp::accel::dataflow::{AcceleratorConfig, Dataflow};
use ada_gp::accel::designs::AdaGpDesign;
use ada_gp::accel::energy::{energy_saving_percent, EnergyConfig};
use ada_gp::accel::speedup::{training_speedup, EpochMix};
use ada_gp::nn::models::shapes::{model_shapes, InputScale};
use ada_gp::nn::models::CnnModel;

fn main() {
    let cfg = AcceleratorConfig::default();
    let mix = EpochMix::paper();
    let energy_cfg = EnergyConfig::default();

    println!("180-PE accelerator, weight-stationary dataflow, 90-epoch run");
    println!();
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>12}",
        "Model", "LOW", "Efficient", "MAX", "Energy save"
    );
    for model in [
        CnnModel::Vgg13,
        CnnModel::ResNet50,
        CnnModel::DenseNet121,
        CnnModel::MobileNetV2,
    ] {
        let layers = model_shapes(model, InputScale::ImageNet);
        let s = |d| training_speedup(&cfg, Dataflow::WeightStationary, d, &layers, &mix);
        let saving = energy_saving_percent(&energy_cfg, &layers, &mix, AdaGpDesign::Efficient);
        println!(
            "{:<14} {:>9.2}x {:>11.2}x {:>9.2}x {:>11.1}%",
            model.name(),
            s(AdaGpDesign::Low),
            s(AdaGpDesign::Efficient),
            s(AdaGpDesign::Max),
            saving
        );
    }
    println!();
    println!("(paper: avg 1.47x speed-up, 34% energy reduction)");
}
