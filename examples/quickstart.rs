//! Quickstart: attach ADA-GP to a small CNN and watch it alternate
//! between backprop and gradient-prediction phases.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Set `ADAGP_TRACE=/tmp/quickstart.trace.json` to dump a Chrome-trace
//! timeline of the run (open in Perfetto or `chrome://tracing`), and/or
//! `ADAGP_PROFILE=/tmp/quickstart.collapsed` to dump a collapsed-stack
//! span-tree profile (feed to any flamegraph tool).

use ada_gp::adagp::{AdaGp, AdaGpConfig, ScheduleConfig};
use ada_gp::nn::containers::Sequential;
use ada_gp::nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
use ada_gp::nn::optim::Sgd;
use ada_gp::tensor::{init, Prng};

fn main() {
    let _trace = ada_gp::obs::trace_guard_from_env("quickstart");
    let _profile = ada_gp::obs::profile_guard_from_env();
    let mut rng = Prng::seed_from_u64(7);

    // A 3-layer CNN for 10-class classification of 3x16x16 images.
    let mut model = Sequential::new();
    model.push(Conv2d::new(3, 8, 3, 1, 1, true, &mut rng).with_label("conv1"));
    model.push(Relu::new());
    model.push(MaxPool2d::new(2, 2));
    model.push(Conv2d::new(8, 16, 3, 1, 1, true, &mut rng).with_label("conv2"));
    model.push(Relu::new());
    model.push(Flatten::new());
    model.push(Linear::new(16 * 8 * 8, 10, true, &mut rng).with_label("fc"));

    // ADA-GP: one epoch of warm-up, then the 4:1 -> 1:1 annealed schedule.
    let cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: 1,
            epochs_per_stage: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
    println!(
        "model has {} prediction sites; predictor row capacity = {}",
        adagp.sites().len(),
        adagp.predictor_mut().max_row_len()
    );

    let mut opt = Sgd::new(0.01, 0.9);
    for epoch in 0..4 {
        for batch in 0..10 {
            let x = init::gaussian(&[8, 3, 16, 16], 0.0, 1.0, &mut rng);
            let y: Vec<usize> = (0..8).map(|i| (i + batch) % 10).collect();
            let stats = adagp.train_batch(&mut model, &mut opt, &x, &y);
            if batch < 5 {
                println!(
                    "epoch {epoch} batch {batch}: phase {:?}, loss {:.3}{}",
                    stats.phase,
                    stats.loss,
                    stats
                        .mape
                        .map(|m| format!(", predictor MAPE {m:.1}%"))
                        .unwrap_or_default()
                );
            }
        }
        adagp.controller_mut().end_epoch();
    }
    let (warmup, bp, gp) = adagp.controller_mut().phase_counts();
    println!("phase counts: warm-up {warmup}, BP {bp}, GP {gp}");
    println!("GP batches skipped their backward pass entirely.");
}
