//! Trains the 3+3-layer Transformer on the synthetic translation task
//! with ADA-GP (the Table 2 experiment in miniature), printing loss,
//! token accuracy and BLEU.
//!
//! ```sh
//! cargo run --release --example transformer_translation
//! ```

use ada_gp::adagp::{AdaGp, AdaGpConfig, Phase, ScheduleConfig};
use ada_gp::nn::data::{TranslationDataset, BOS};
use ada_gp::nn::metrics::bleu;
use ada_gp::nn::models::{Transformer, TransformerConfig};
use ada_gp::nn::module::ForwardCtx;
use ada_gp::nn::optim::{Adam, Optimizer};
use ada_gp::tensor::softmax::cross_entropy;
use ada_gp::tensor::Prng;

fn main() {
    let data = TranslationDataset::multi30k_like(3);
    let mut rng = Prng::seed_from_u64(3);
    let mut model = Transformer::new(TransformerConfig::paper_like(data.vocab()), &mut rng);
    let mut cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: 2,
            epochs_per_stage: 1,
            ..Default::default()
        },
        track_metrics: false,
        ..Default::default()
    };
    cfg.predictor.lr = 1e-3;
    let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
    let mut opt = Adam::new(2e-3);

    let (epochs, batches, batch) = (5, 10, 8);
    for epoch in 0..epochs {
        let mut loss_sum = 0.0f32;
        let mut gp_count = 0;
        for b in 0..batches {
            let (src, tgt) = data.train_batch(b, batch);
            let tgt_in: Vec<Vec<usize>> = tgt
                .iter()
                .map(|row| {
                    let mut v = vec![BOS];
                    v.extend_from_slice(&row[..row.len() - 1]);
                    v
                })
                .collect();
            let targets: Vec<usize> = tgt.iter().flatten().copied().collect();
            match adagp.controller_mut().next_phase() {
                Phase::WarmUp | Phase::BP => {
                    let logits =
                        model.forward_with_ctx(&src, &tgt_in, &mut ForwardCtx::train_recording());
                    let (loss, dl) = cross_entropy(&logits, &targets);
                    loss_sum += loss;
                    model.backward(&dl);
                    adagp.train_predictor_from_sites(&mut model);
                    opt.step(&mut model);
                }
                Phase::GP => {
                    let logits =
                        model.forward_with_ctx(&src, &tgt_in, &mut ForwardCtx::train_recording());
                    loss_sum += cross_entropy(&logits, &targets).0;
                    adagp.apply_predicted_gradients(&mut model);
                    opt.step(&mut model);
                    gp_count += 1;
                }
            }
        }
        adagp.controller_mut().end_epoch();
        println!(
            "epoch {epoch}: mean loss {:.3} ({gp_count}/{batches} batches skipped backprop)",
            loss_sum / batches as f32
        );
    }

    // Greedy-decode a few test sentences and report BLEU.
    let mut hyps = Vec::new();
    let mut refs = Vec::new();
    for i in 0..16 {
        let (src, tgt) = data.test_pair(i);
        let out = model.greedy_decode(&[src], BOS, data.sentence_len());
        hyps.push(out.into_iter().next().expect("one decode"));
        refs.push(tgt);
    }
    println!("BLEU on 16 test sentences: {:.2}", bleu(&hyps, &refs));
}
