//! Renders the GPipe schedule grid and compares all three pipeline
//! schemes with and without ADA-GP (the §3.8 / Figure 20 setting).
//!
//! ```sh
//! cargo run --release --example pipeline_schedules
//! ```

use ada_gp::pipeline::{simulate_gpipe, PipelineConfig, PipelineScheme, SlotKind};

fn main() {
    let cfg = PipelineConfig::default();
    let grid = simulate_gpipe(cfg.devices, cfg.microbatches, cfg.fw, cfg.bw);

    println!("GPipe schedule, 4 devices x 4 micro-batches (F=forward, B=backward, .=bubble):");
    for (d, row) in grid.grid.iter().enumerate() {
        print!("device {d}: ");
        for slot in row {
            match slot {
                SlotKind::Idle => print!(" ."),
                SlotKind::Forward(m) => print!("F{m}"),
                SlotKind::Backward(m) => print!("B{m}"),
            }
        }
        println!();
    }
    println!(
        "makespan {} steps, {:.0}% bubbles",
        grid.makespan(),
        100.0 * grid.bubble_fraction()
    );
    println!();

    println!(
        "{:<10} {:>14} {:>18} {:>10}",
        "Scheme", "steps/batch", "ADA-GP steps/pair", "speed-up"
    );
    for scheme in PipelineScheme::all() {
        println!(
            "{:<10} {:>14} {:>18} {:>9.2}x",
            scheme.name(),
            scheme.batch_steps(&cfg),
            scheme.adagp_pair_steps(&cfg),
            scheme.adagp_speedup(&cfg, 0.0)
        );
    }
    println!();
    println!("(paper: GPipe 21 steps, Chimera 16; ADA-GP pairs 25 and 20)");
}
