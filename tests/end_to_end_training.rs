//! Integration tests: full ADA-GP training loops spanning the tensor, nn
//! and core crates.

use ada_gp::adagp::trainer::evaluate_accuracy;
use ada_gp::adagp::{AdaGp, AdaGpConfig, BaselineTrainer, Phase, ScheduleConfig};
use ada_gp::nn::containers::Sequential;
use ada_gp::nn::data::{DatasetSpec, VisionDataset};
use ada_gp::nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
use ada_gp::nn::module::Module;
use ada_gp::nn::optim::Sgd;
use ada_gp::tensor::Prng;

fn small_cnn(classes: usize, rng: &mut Prng) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 8, 3, 1, 1, true, rng).with_label("c1"));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2, 2));
    m.push(Conv2d::new(8, 12, 3, 1, 1, true, rng).with_label("c2"));
    m.push(Relu::new());
    m.push(Flatten::new());
    m.push(Linear::new(12 * 6 * 6, classes, true, rng).with_label("fc"));
    m
}

/// The baseline must learn the synthetic task well above chance.
#[test]
fn baseline_learns_synthetic_task() {
    let spec = DatasetSpec::tiny(4, 12);
    let ds = VisionDataset::new(spec, 9);
    let mut rng = Prng::seed_from_u64(9);
    let mut model = small_cnn(4, &mut rng);
    let mut trainer = BaselineTrainer::new();
    let mut opt = Sgd::new(0.02, 0.9);
    for epoch in 0..6 {
        for b in 0..12 {
            let (x, y) = ds.train_batch(b + epoch, 8);
            trainer.train_batch(&mut model, &mut opt, &x, &y);
        }
    }
    let acc = evaluate_accuracy(&mut model, (0..4).map(|b| ds.test_batch(b, 8)));
    assert!(acc > 50.0, "baseline accuracy {acc}%");
}

/// ADA-GP with warm-up + alternating phases must also learn well above
/// chance, and its phase counts must follow the schedule.
#[test]
fn adagp_learns_and_follows_schedule() {
    let spec = DatasetSpec::tiny(4, 12);
    let ds = VisionDataset::new(spec, 9);
    let mut rng = Prng::seed_from_u64(9);
    let mut model = small_cnn(4, &mut rng);
    let mut cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: 2,
            epochs_per_stage: 1,
            ..Default::default()
        },
        track_metrics: false,
        ..Default::default()
    };
    cfg.predictor.lr = 1e-3;
    let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
    let mut opt = Sgd::new(0.02, 0.9);
    for _epoch in 0..7 {
        for b in 0..12 {
            let (x, y) = ds.train_batch(b, 8);
            adagp.train_batch(&mut model, &mut opt, &x, &y);
        }
        adagp.controller_mut().end_epoch();
    }
    let (warmup, bp, gp) = adagp.controller_mut().phase_counts();
    assert_eq!(warmup, 24, "2 warm-up epochs x 12 batches");
    assert!(gp > bp, "post-warm-up schedule is GP-heavy early on");
    let acc = evaluate_accuracy(&mut model, (0..4).map(|b| ds.test_batch(b, 8)));
    assert!(acc > 40.0, "ADA-GP accuracy {acc}%");
}

/// During Phase GP, non-site parameters (biases, BN) receive no gradient
/// and sites receive exactly the predicted gradient — verifying that
/// backprop is truly skipped.
#[test]
fn gp_phase_touches_only_prediction_sites() {
    let mut rng = Prng::seed_from_u64(3);
    let mut model = small_cnn(4, &mut rng);
    let cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: 0,
            ..Default::default()
        },
        track_metrics: false,
        ..Default::default()
    };
    let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
    // With zero momentum, parameters that get no gradient cannot move.
    let mut opt = Sgd::new(0.05, 0.0);
    let x = ada_gp::tensor::init::gaussian(&[4, 3, 12, 12], 0.0, 1.0, &mut rng);

    // Snapshot every parameter; remember which are site weights.
    let mut before = Vec::new();
    model.visit_params(&mut |p| before.push(p.value.clone()));
    let mut site_weight_shapes = Vec::new();
    model.visit_sites(&mut |s| site_weight_shapes.push(s.meta().weight_shape.clone()));

    let stats = adagp.train_batch(&mut model, &mut opt, &x, &[0, 1, 2, 3]);
    assert_eq!(stats.phase, Phase::GP);

    let mut after = Vec::new();
    model.visit_params(&mut |p| after.push(p.value.clone()));
    for (b, a) in before.iter().zip(after.iter()) {
        let is_site_weight = site_weight_shapes.iter().any(|s| s[..] == *b.shape());
        let moved = b.sub(a).norm() > 0.0;
        if is_site_weight {
            assert!(moved, "site weight {:?} did not move in GP", b.shape());
        } else {
            assert!(!moved, "non-site param {:?} moved in GP", b.shape());
        }
    }
}

/// The whole pipeline is deterministic: identical seeds give identical
/// final weights.
#[test]
fn training_is_deterministic() {
    let run = || {
        let spec = DatasetSpec::tiny(3, 12);
        let ds = VisionDataset::new(spec, 5);
        let mut rng = Prng::seed_from_u64(5);
        let mut model = small_cnn(3, &mut rng);
        let mut cfg = AdaGpConfig::default();
        cfg.schedule.warmup_epochs = 0;
        cfg.track_metrics = false;
        let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.9);
        for b in 0..6 {
            let (x, y) = ds.train_batch(b, 4);
            adagp.train_batch(&mut model, &mut opt, &x, &y);
        }
        let mut sum = 0.0f64;
        model.visit_params(&mut |p| sum += p.value.data().iter().map(|v| *v as f64).sum::<f64>());
        sum
    };
    assert_eq!(run().to_bits(), run().to_bits());
}
