//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use ada_gp::accel::dataflow::{utilization, AcceleratorConfig, Dataflow};
use ada_gp::accel::designs::{baseline_batch_cycles, bp_batch_cycles, gp_batch_cycles, AdaGpDesign};
use ada_gp::accel::layer_cost::LayerCost;
use ada_gp::adagp::controller::{PhaseController, ScheduleConfig};
use ada_gp::adagp::reorg;
use ada_gp::nn::models::shapes::LayerShape;
use ada_gp::nn::{SiteKind, SiteMeta};
use ada_gp::pipeline::{simulate_gpipe, PipelineConfig, PipelineScheme};
use ada_gp::tensor::{init, Prng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reorganization round-trip: gradient rows -> gradient is lossless
    /// for arbitrary conv site shapes.
    #[test]
    fn reorg_gradient_roundtrip(out_ch in 1usize..16, in_ch in 1usize..8, k in 1usize..4, seed in 0u64..1000) {
        let meta = SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![out_ch, in_ch, k, k],
            label: "p".into(),
        };
        let mut rng = Prng::seed_from_u64(seed);
        let grad = init::gaussian(&[out_ch, in_ch, k, k], 0.0, 0.1, &mut rng);
        let rows = reorg::gradient_rows(&meta, &grad);
        let back = reorg::rows_to_gradient(&meta, &rows);
        prop_assert_eq!(back, grad);
    }

    /// The reorganized predictor input always has `out_ch` rows and one
    /// channel, regardless of batch and spatial size.
    #[test]
    fn reorg_shape_invariant(batch in 1usize..8, out_ch in 1usize..12, hw in 1usize..9, seed in 0u64..1000) {
        let meta = SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![out_ch, 2, 3, 3],
            label: "p".into(),
        };
        let mut rng = Prng::seed_from_u64(seed);
        let act = init::gaussian(&[batch, out_ch, hw, hw], 0.0, 1.0, &mut rng);
        let r = reorg::reorganize(&meta, &act);
        prop_assert_eq!(r.input.shape(), &[out_ch, 1, hw, hw]);
        prop_assert_eq!(r.row_len, 2 * 9);
    }

    /// Batch-mean reorganization is linear: scaling all activations scales
    /// the predictor input.
    #[test]
    fn reorg_is_linear(scale in 0.1f32..10.0, seed in 0u64..1000) {
        let meta = SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![4, 2, 3, 3],
            label: "p".into(),
        };
        let mut rng = Prng::seed_from_u64(seed);
        let act = init::gaussian(&[3, 4, 5, 5], 0.0, 1.0, &mut rng);
        let r1 = reorg::reorganize(&meta, &act);
        let r2 = reorg::reorganize(&meta, &act.scale(scale));
        let scaled = r1.input.scale(scale);
        prop_assert!(r2.input.allclose(&scaled, 1e-3 * scale.max(1.0)));
    }

    /// Phase controller: a full epoch's phases respect the k:m ratio
    /// exactly over whole cycles.
    #[test]
    fn controller_respects_ratio(epoch_offset in 0usize..16, batches in 1usize..100) {
        let cfg = ScheduleConfig { warmup_epochs: 0, ..Default::default() };
        let mut c = PhaseController::new(cfg);
        for _ in 0..epoch_offset {
            c.end_epoch();
        }
        let (k, m) = cfg.ratio_at(epoch_offset);
        let mut gp = 0usize;
        for _ in 0..batches {
            if c.next_phase() == ada_gp::adagp::Phase::GP {
                gp += 1;
            }
        }
        let cycle = k + m;
        let full_cycles = batches / cycle;
        let rem = batches % cycle;
        let expected_gp = full_cycles * k + rem.min(k);
        prop_assert_eq!(gp, expected_gp);
    }

    /// Utilization is always within (0, 1] for any dataflow and layer.
    #[test]
    fn utilization_bounds(in_ch in 1usize..512, out_ch in 1usize..512, k in 1usize..8, out in 1usize..64) {
        let layer = LayerShape::conv("l", in_ch, out_ch, k, out);
        for df in [Dataflow::WeightStationary, Dataflow::OutputStationary, Dataflow::InputStationary, Dataflow::RowStationary] {
            let u = utilization(df, &layer, 180);
            prop_assert!(u > 0.0 && u <= 1.0, "{:?}: {}", df, u);
        }
    }

    /// For any cost vector: GP < baseline <= BP, and the design ordering
    /// MAX <= Efficient <= LOW holds in GP.
    #[test]
    fn design_cycle_ordering(costs in prop::collection::vec((1u64..100_000, 1u64..1_000), 1..20)) {
        let costs: Vec<LayerCost> = costs
            .into_iter()
            .map(|(fw, alpha)| LayerCost { fw, bw: 2 * fw, alpha })
            .collect();
        let b = baseline_batch_cycles(&costs);
        for d in AdaGpDesign::all() {
            prop_assert!(bp_batch_cycles(d, &costs) >= b);
        }
        let max = gp_batch_cycles(AdaGpDesign::Max, &costs);
        let eff = gp_batch_cycles(AdaGpDesign::Efficient, &costs);
        let low = gp_batch_cycles(AdaGpDesign::Low, &costs);
        prop_assert!(max <= eff && eff <= low);
        prop_assert!(eff < b, "GP must beat the baseline when alpha < fw");
    }

    /// GPipe simulation: makespan matches the closed form and all work is
    /// scheduled, for arbitrary device/micro-batch counts.
    #[test]
    fn gpipe_simulation_consistent(d in 1usize..8, m in 1usize..8, fw in 1usize..3, bw in 1usize..4) {
        let g = simulate_gpipe(d, m, fw, bw);
        prop_assert_eq!(g.makespan(), (d + m - 1) * fw + (d + m - 1) * bw);
        let busy: usize = g.grid.iter().flat_map(|r| r.iter()).filter(|s| **s != ada_gp::pipeline::SlotKind::Idle).count();
        prop_assert_eq!(busy, d * m * (fw + bw));
    }

    /// ADA-GP pipeline speed-up is bounded by (2·batch)/(batch + M·fw) and
    /// decreases monotonically with the predictor latency.
    #[test]
    fn pipeline_speedup_bounds(alpha in 0.0f64..0.5) {
        let cfg = PipelineConfig::default();
        for scheme in PipelineScheme::all() {
            let s = scheme.adagp_speedup(&cfg, alpha);
            let ceiling = 2.0 * scheme.batch_steps(&cfg) as f64 / scheme.adagp_pair_steps(&cfg) as f64;
            prop_assert!(s > 1.0, "{}: {}", scheme.name(), s);
            prop_assert!(s <= ceiling + 1e-12);
        }
    }

    /// Tensor elementwise algebra: (a + b) - b == a within float tolerance.
    #[test]
    fn tensor_add_sub_inverse(len in 1usize..64, seed in 0u64..1000) {
        let mut rng = Prng::seed_from_u64(seed);
        let a = init::gaussian(&[len], 0.0, 10.0, &mut rng);
        let b = init::gaussian(&[len], 0.0, 10.0, &mut rng);
        let roundtrip = a.add(&b).sub(&b);
        prop_assert!(roundtrip.allclose(&a, 1e-3));
    }

    /// Softmax output is a probability distribution for any logits.
    #[test]
    fn softmax_is_distribution(rows in 1usize..6, cols in 1usize..10, seed in 0u64..1000) {
        let mut rng = Prng::seed_from_u64(seed);
        let logits = init::gaussian(&[rows, cols], 0.0, 5.0, &mut rng);
        let p = ada_gp::tensor::softmax::softmax(&logits);
        for i in 0..rows {
            let s: f32 = p.data()[i * cols..(i + 1) * cols].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
        prop_assert!(p.min() >= 0.0);
    }

    /// Conv output shape formula holds for arbitrary parameters.
    #[test]
    fn conv_shape_formula(
        n in 1usize..3, cin in 1usize..4, cout in 1usize..4,
        hw in 3usize..10, k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let mut rng = Prng::seed_from_u64(0);
        let x = init::gaussian(&[n, cin, hw, hw], 0.0, 1.0, &mut rng);
        let w = init::gaussian(&[cout, cin, k, k], 0.0, 1.0, &mut rng);
        let p = ada_gp::tensor::conv::Conv2dParams::new(stride, pad);
        let y = ada_gp::tensor::conv::conv2d(&x, &w, None, &p);
        let expected = (hw + 2 * pad - k) / stride + 1;
        prop_assert_eq!(y.shape(), &[n, cout, expected, expected]);
    }
}

/// Non-proptest sanity: Tensor equality/cloning semantics.
#[test]
fn tensor_clone_is_deep() {
    let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
    let mut b = a.clone();
    b.data_mut()[0] = 9.0;
    assert_eq!(a.data()[0], 1.0);
}
