//! Property-based tests over the core data structures and invariants of the
//! reproduction.
//!
//! The build environment is offline, so instead of proptest these are
//! seeded randomized sweeps driven by the workspace's own [`Prng`]: each
//! property is checked across `CASES` pseudo-random configurations drawn
//! from the same ranges the original proptest strategies used. Failures are
//! reproducible from the printed case seed.

use ada_gp::accel::dataflow::{utilization, Dataflow};
use ada_gp::accel::designs::{
    baseline_batch_cycles, bp_batch_cycles, gp_batch_cycles, AdaGpDesign,
};
use ada_gp::accel::layer_cost::LayerCost;
use ada_gp::adagp::controller::{PhaseController, ScheduleConfig};
use ada_gp::adagp::reorg;
use ada_gp::nn::models::shapes::LayerShape;
use ada_gp::nn::{SiteKind, SiteMeta};
use ada_gp::pipeline::{simulate_gpipe, PipelineConfig, PipelineScheme};
use ada_gp::tensor::{init, Prng, Tensor};

const CASES: u64 = 64;

/// Uniform draw from `lo..hi` (half-open, like a proptest range strategy).
fn draw(rng: &mut Prng, lo: usize, hi: usize) -> usize {
    lo + rng.below(hi - lo)
}

/// Runs `body` for `CASES` seeded cases.
fn cases(mut body: impl FnMut(&mut Prng)) {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xada0_0000 + case);
        body(&mut rng);
    }
}

/// Reorganization round-trip: gradient rows -> gradient is lossless for
/// arbitrary conv site shapes.
#[test]
fn reorg_gradient_roundtrip() {
    cases(|rng| {
        let out_ch = draw(rng, 1, 16);
        let in_ch = draw(rng, 1, 8);
        let k = draw(rng, 1, 4);
        let meta = SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![out_ch, in_ch, k, k],
            label: "p".into(),
        };
        let grad = init::gaussian(&[out_ch, in_ch, k, k], 0.0, 0.1, rng);
        let rows = reorg::gradient_rows(&meta, &grad);
        let back = reorg::rows_to_gradient(&meta, &rows);
        assert_eq!(back, grad);
    });
}

/// The reorganized predictor input always has `out_ch` rows and one channel,
/// regardless of batch and spatial size.
#[test]
fn reorg_shape_invariant() {
    cases(|rng| {
        let batch = draw(rng, 1, 8);
        let out_ch = draw(rng, 1, 12);
        let hw = draw(rng, 1, 9);
        let meta = SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![out_ch, 2, 3, 3],
            label: "p".into(),
        };
        let act = init::gaussian(&[batch, out_ch, hw, hw], 0.0, 1.0, rng);
        let r = reorg::reorganize(&meta, &act);
        assert_eq!(r.input.shape(), &[out_ch, 1, hw, hw]);
        assert_eq!(r.row_len, 2 * 9);
    });
}

/// Batch-mean reorganization is linear: scaling all activations scales the
/// predictor input.
#[test]
fn reorg_is_linear() {
    cases(|rng| {
        let scale = rng.uniform_range(0.1, 10.0);
        let meta = SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![4, 2, 3, 3],
            label: "p".into(),
        };
        let act = init::gaussian(&[3, 4, 5, 5], 0.0, 1.0, rng);
        let r1 = reorg::reorganize(&meta, &act);
        let r2 = reorg::reorganize(&meta, &act.scale(scale));
        let scaled = r1.input.scale(scale);
        assert!(r2.input.allclose(&scaled, 1e-3 * scale.max(1.0)));
    });
}

/// Phase controller: a full epoch's phases respect the k:m ratio exactly
/// over whole cycles.
#[test]
fn controller_respects_ratio() {
    cases(|rng| {
        let epoch_offset = draw(rng, 0, 16);
        let batches = draw(rng, 1, 100);
        let cfg = ScheduleConfig {
            warmup_epochs: 0,
            ..Default::default()
        };
        let mut c = PhaseController::new(cfg);
        for _ in 0..epoch_offset {
            c.end_epoch();
        }
        let (k, m) = cfg.ratio_at(epoch_offset);
        let mut gp = 0usize;
        for _ in 0..batches {
            if c.next_phase() == ada_gp::adagp::Phase::GP {
                gp += 1;
            }
        }
        let cycle = k + m;
        let full_cycles = batches / cycle;
        let rem = batches % cycle;
        let expected_gp = full_cycles * k + rem.min(k);
        assert_eq!(gp, expected_gp);
    });
}

/// Utilization is always within (0, 1] for any dataflow and layer.
#[test]
fn utilization_bounds() {
    cases(|rng| {
        let in_ch = draw(rng, 1, 512);
        let out_ch = draw(rng, 1, 512);
        let k = draw(rng, 1, 8);
        let out = draw(rng, 1, 64);
        let layer = LayerShape::conv("l", in_ch, out_ch, k, out);
        for df in [
            Dataflow::WeightStationary,
            Dataflow::OutputStationary,
            Dataflow::InputStationary,
            Dataflow::RowStationary,
        ] {
            let u = utilization(df, &layer, 180);
            assert!(u > 0.0 && u <= 1.0, "{:?}: {}", df, u);
        }
    });
}

/// For any cost vector: GP < baseline <= BP, and the design ordering
/// MAX <= Efficient <= LOW holds in GP.
#[test]
fn design_cycle_ordering() {
    cases(|rng| {
        let n = draw(rng, 1, 20);
        let costs: Vec<LayerCost> = (0..n)
            .map(|_| {
                let fw = 1 + rng.below(100_000) as u64;
                let alpha = 1 + rng.below(1_000) as u64;
                LayerCost {
                    fw,
                    bw: 2 * fw,
                    alpha,
                }
            })
            .collect();
        let b = baseline_batch_cycles(&costs);
        for d in AdaGpDesign::all() {
            assert!(bp_batch_cycles(d, &costs) >= b);
        }
        let max = gp_batch_cycles(AdaGpDesign::Max, &costs);
        let eff = gp_batch_cycles(AdaGpDesign::Efficient, &costs);
        let low = gp_batch_cycles(AdaGpDesign::Low, &costs);
        assert!(max <= eff && eff <= low);
        assert!(eff < b, "GP must beat the baseline when alpha < fw");
    });
}

/// GPipe simulation: makespan matches the closed form and all work is
/// scheduled, for arbitrary device/micro-batch counts.
#[test]
fn gpipe_simulation_consistent() {
    cases(|rng| {
        let d = draw(rng, 1, 8);
        let m = draw(rng, 1, 8);
        let fw = draw(rng, 1, 3);
        let bw = draw(rng, 1, 4);
        let g = simulate_gpipe(d, m, fw, bw);
        assert_eq!(g.makespan(), (d + m - 1) * fw + (d + m - 1) * bw);
        let busy: usize = g
            .grid
            .iter()
            .flat_map(|r| r.iter())
            .filter(|s| **s != ada_gp::pipeline::SlotKind::Idle)
            .count();
        assert_eq!(busy, d * m * (fw + bw));
    });
}

/// ADA-GP pipeline speed-up is bounded by (2·batch)/(batch + M·fw) and
/// decreases monotonically with the predictor latency.
#[test]
fn pipeline_speedup_bounds() {
    cases(|rng| {
        let alpha = rng.uniform_range(0.0, 0.5) as f64;
        let cfg = PipelineConfig::default();
        for scheme in PipelineScheme::all() {
            let s = scheme.adagp_speedup(&cfg, alpha);
            let ceiling =
                2.0 * scheme.batch_steps(&cfg) as f64 / scheme.adagp_pair_steps(&cfg) as f64;
            assert!(s > 1.0, "{}: {}", scheme.name(), s);
            assert!(s <= ceiling + 1e-12);
        }
    });
}

/// Tensor elementwise algebra: (a + b) - b == a within float tolerance.
#[test]
fn tensor_add_sub_inverse() {
    cases(|rng| {
        let len = draw(rng, 1, 64);
        let a = init::gaussian(&[len], 0.0, 10.0, rng);
        let b = init::gaussian(&[len], 0.0, 10.0, rng);
        let roundtrip = a.add(&b).sub(&b);
        assert!(roundtrip.allclose(&a, 1e-3));
    });
}

/// Softmax output is a probability distribution for any logits.
#[test]
fn softmax_is_distribution() {
    cases(|rng| {
        let rows = draw(rng, 1, 6);
        let cols = draw(rng, 1, 10);
        let logits = init::gaussian(&[rows, cols], 0.0, 5.0, rng);
        let p = ada_gp::tensor::softmax::softmax(&logits);
        for i in 0..rows {
            let s: f32 = p.data()[i * cols..(i + 1) * cols].iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
        assert!(p.min() >= 0.0);
    });
}

/// Conv output shape formula holds for arbitrary parameters.
#[test]
fn conv_shape_formula() {
    cases(|rng| {
        let n = draw(rng, 1, 3);
        let cin = draw(rng, 1, 4);
        let cout = draw(rng, 1, 4);
        let hw = draw(rng, 3, 10);
        let k = draw(rng, 1, 4);
        let stride = draw(rng, 1, 3);
        let pad = draw(rng, 0, 2);
        if hw + 2 * pad < k {
            return; // proptest's prop_assume! equivalent
        }
        let x = init::gaussian(&[n, cin, hw, hw], 0.0, 1.0, rng);
        let w = init::gaussian(&[cout, cin, k, k], 0.0, 1.0, rng);
        let p = ada_gp::tensor::conv::Conv2dParams::new(stride, pad);
        let y = ada_gp::tensor::conv::conv2d(&x, &w, None, &p);
        let expected = (hw + 2 * pad - k) / stride + 1;
        assert_eq!(y.shape(), &[n, cout, expected, expected]);
    });
}

/// Non-proptest sanity: Tensor equality/cloning semantics.
#[test]
fn tensor_clone_is_deep() {
    let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
    let mut b = a.clone();
    b.data_mut()[0] = 9.0;
    assert_eq!(a.data()[0], 1.0);
}
