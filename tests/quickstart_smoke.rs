//! Smoke test that the documented entry point — `cargo run --release
//! --example quickstart` — builds and runs to completion, so the README's
//! first command can never silently rot.
//!
//! The test shells out to the same `cargo` that is running the test suite
//! and reuses its target directory, so after a tier-1 `cargo build
//! --release` the example is an incremental rebuild, not a cold one.

use std::process::Command;

#[test]
fn quickstart_example_runs_to_completion() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "--release", "--example", "quickstart"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    // The example ends by reporting its phase statistics; their presence
    // means the full warm-up -> BP/GP training loop actually ran.
    assert!(
        stdout.contains("phase counts:"),
        "quickstart did not reach its final report\nstdout:\n{stdout}"
    );
}

#[test]
fn sweep_sim_subcommand_runs_the_smoke_grid() {
    // The documented simulator entry point — `sweep sim smoke` — must
    // keep running end to end, just like the quickstart example.
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args([
            "run",
            "--release",
            "-p",
            "adagp-bench",
            "--bin",
            "sweep",
            "--",
            "sim",
            "smoke",
        ])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "sweep sim exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    assert!(
        stdout.contains("simulated 4 cells"),
        "sweep sim did not report its cells\nstdout:\n{stdout}"
    );
    assert!(stdout.contains("Overlap eff"), "detail table missing");
}
