//! Integration tests over the model zoo: every CNN builds, runs forward +
//! backward, and works under ADA-GP end to end.

use ada_gp::adagp::{AdaGp, AdaGpConfig, ScheduleConfig};
use ada_gp::nn::models::{build_cnn, CnnModel, ModelConfig};
use ada_gp::nn::module::{count_sites, ForwardCtx, Module};
use ada_gp::nn::optim::Sgd;
use ada_gp::tensor::{Prng, Tensor};

/// Every one of the thirteen models trains one BP and one GP batch under
/// ADA-GP without panicking and with finite losses.
#[test]
fn all_thirteen_models_run_under_adagp() {
    let cfg = ModelConfig {
        width: 0.0625,
        depth_div: 8,
        classes: 4,
    };
    for model_kind in CnnModel::all() {
        let mut rng = Prng::seed_from_u64(11);
        let mut model = build_cnn(model_kind, &cfg, 3, 16, &mut rng);
        assert!(
            count_sites(&mut model) > 0,
            "{} has no prediction sites",
            model_kind.name()
        );
        let adagp_cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 0,
                ratios: [(1, 1); 4], // alternate GP/BP from the start
                ..Default::default()
            },
            track_metrics: false,
            ..Default::default()
        };
        let mut adagp = AdaGp::new(adagp_cfg, &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.9);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let s1 = adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        let s2 = adagp.train_batch(&mut model, &mut opt, &x, &[2, 3]);
        assert!(
            s1.loss.is_finite() && s2.loss.is_finite(),
            "{}: non-finite loss",
            model_kind.name()
        );
        assert_ne!(
            s1.phase,
            s2.phase,
            "{}: phases must alternate",
            model_kind.name()
        );
    }
}

/// Model outputs have the right shape and respond to input changes.
#[test]
fn models_forward_shapes_and_sensitivity() {
    let cfg = ModelConfig {
        width: 0.0625,
        depth_div: 8,
        classes: 7,
    };
    for model_kind in CnnModel::all() {
        let mut rng = Prng::seed_from_u64(13);
        let mut model = build_cnn(model_kind, &cfg, 3, 16, &mut rng);
        let a = model.forward(&Tensor::zeros(&[1, 3, 16, 16]), &mut ForwardCtx::eval());
        let b = model.forward(&Tensor::ones(&[1, 3, 16, 16]), &mut ForwardCtx::eval());
        assert_eq!(a.shape(), &[1, 7], "{}", model_kind.name());
        assert!(
            a.sub(&b).norm() > 0.0,
            "{}: output insensitive to input",
            model_kind.name()
        );
    }
}

/// Backward returns an input gradient of the input's shape for every model.
#[test]
fn models_backward_input_gradients() {
    let cfg = ModelConfig {
        width: 0.0625,
        depth_div: 8,
        classes: 3,
    };
    for model_kind in CnnModel::all() {
        let mut rng = Prng::seed_from_u64(17);
        let mut model = build_cnn(model_kind, &cfg, 3, 16, &mut rng);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = model.forward(&x, &mut ForwardCtx::train());
        let dx = model.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape(), "{}", model_kind.name());
        assert!(dx.norm().is_finite(), "{}", model_kind.name());
    }
}
