//! Cycle-level weight-stationary systolic-array simulation.
//!
//! The analytic model in [`crate::layer_cost`] charges
//! `MACs / (PEs · utilization) + ramp` cycles per layer. This module
//! *checks* that accounting from below: it steps a weight-stationary
//! systolic array (the §4.1 baseline: "Each PE is equipped with registers
//! for holding inputs, weights, and partial sums") through a tiled GEMM
//! cycle by cycle and reports the exact count, including pipeline
//! fill/drain and tile-reload bubbles.
//!
//! A conv layer lowers to GEMM via im2col — `(out_ch) × (in_ch·k²) @
//! (in_ch·k²) × (out_pixels)` — so validating GEMM cycles validates the
//! layer costs.

use serde::{Deserialize, Serialize};

/// Systolic array geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicConfig {
    /// PE rows (mapped to the reduction dimension K).
    pub rows: usize,
    /// PE columns (mapped to the output-channel dimension M).
    pub cols: usize,
    /// Cycles to load one weight tile into the array.
    pub weight_load_cycles: u64,
}

impl Default for SystolicConfig {
    /// A 12×15 = 180-PE array matching the paper's PE budget.
    fn default() -> Self {
        SystolicConfig {
            rows: 12,
            cols: 15,
            weight_load_cycles: 12,
        }
    }
}

impl SystolicConfig {
    /// Total PE count.
    pub fn pes(&self) -> usize {
        self.rows * self.cols
    }
}

/// Cycle count report of a simulated GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicReport {
    /// Total cycles.
    pub cycles: u64,
    /// Number of weight tiles processed.
    pub tiles: u64,
    /// Cycles spent loading weights (bubbles in a WS array).
    pub load_cycles: u64,
    /// MAC operations performed.
    pub macs: u64,
}

impl SystolicReport {
    /// Average MACs retired per cycle.
    pub fn throughput(&self, pes: usize) -> f64 {
        self.macs as f64 / (self.cycles as f64 * pes as f64)
    }
}

/// Simulates `C[M,N] = A[M,K] @ B[K,N]` on a weight-stationary array:
/// weights `A` are tiled `cols × rows`, each tile is loaded, then the `N`
/// input columns stream through with one column entering per cycle plus a
/// `rows + cols` fill/drain per tile.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn simulate_gemm(cfg: &SystolicConfig, m: usize, k: usize, n: usize) -> SystolicReport {
    assert!(m > 0 && k > 0 && n > 0, "GEMM dims must be positive");
    let m_tiles = m.div_ceil(cfg.cols) as u64;
    let k_tiles = k.div_ceil(cfg.rows) as u64;
    let tiles = m_tiles * k_tiles;
    // Per tile: load weights, then stream N columns; the wavefront needs
    // rows + cols cycles to fill and drain around the N-cycle stream.
    let stream = n as u64 + (cfg.rows + cfg.cols) as u64;
    let load_cycles = tiles * cfg.weight_load_cycles;
    let cycles = tiles * stream + load_cycles;
    SystolicReport {
        cycles,
        tiles,
        load_cycles,
        macs: (m * k * n) as u64,
    }
}

/// Analytic cycle estimate for the same GEMM using the
/// [`crate::layer_cost`]-style accounting (`MACs / (PEs · u)`), for
/// cross-validation.
pub fn analytic_gemm_cycles(cfg: &SystolicConfig, m: usize, k: usize, n: usize) -> f64 {
    // Utilization from the edge tiles: the array is fully busy only on
    // full tiles.
    let u_m = m as f64 / (m.div_ceil(cfg.cols) * cfg.cols) as f64;
    let u_k = k as f64 / (k.div_ceil(cfg.rows) * cfg.rows) as f64;
    (m * k * n) as f64 / (cfg.pes() as f64 * u_m * u_k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_pe_budget() {
        assert_eq!(SystolicConfig::default().pes(), 180);
    }

    #[test]
    fn simulation_close_to_analytic_for_large_gemm() {
        // For a streaming-dominated GEMM, fill/drain and loads amortize:
        // simulated cycles approach the analytic MACs/(PEs·u) floor.
        let cfg = SystolicConfig::default();
        let (m, k, n) = (120, 240, 4096);
        let sim = simulate_gemm(&cfg, m, k, n);
        let analytic = analytic_gemm_cycles(&cfg, m, k, n);
        let ratio = sim.cycles as f64 / analytic;
        assert!(
            (1.0..1.10).contains(&ratio),
            "simulated {} vs analytic {analytic} (ratio {ratio})",
            sim.cycles
        );
    }

    #[test]
    fn simulation_never_beats_the_analytic_floor() {
        let cfg = SystolicConfig::default();
        for (m, k, n) in [(7, 9, 50), (60, 60, 60), (256, 512, 784), (1, 1, 1)] {
            let sim = simulate_gemm(&cfg, m, k, n);
            let analytic = analytic_gemm_cycles(&cfg, m, k, n);
            assert!(
                sim.cycles as f64 >= analytic * 0.999,
                "({m},{k},{n}): sim {} < floor {analytic}",
                sim.cycles
            );
        }
    }

    #[test]
    fn small_gemms_pay_relatively_more_overhead() {
        let cfg = SystolicConfig::default();
        let small = simulate_gemm(&cfg, 12, 12, 8);
        let large = simulate_gemm(&cfg, 120, 120, 800);
        assert!(small.throughput(cfg.pes()) < large.throughput(cfg.pes()));
    }

    #[test]
    fn tile_count_is_exact() {
        let cfg = SystolicConfig::default(); // 15 cols, 12 rows
        let r = simulate_gemm(&cfg, 30, 24, 10);
        assert_eq!(r.tiles, 2 * 2);
        let r = simulate_gemm(&cfg, 31, 25, 10);
        assert_eq!(r.tiles, 3 * 3);
    }

    #[test]
    fn throughput_bounded_by_one_mac_per_pe_cycle() {
        let cfg = SystolicConfig::default();
        let r = simulate_gemm(&cfg, 120, 240, 4096);
        let t = r.throughput(cfg.pes());
        assert!(t > 0.0 && t <= 1.0, "throughput {t}");
    }

    #[test]
    fn conv_layer_as_gemm() {
        // VGG13 conv3_1 at CIFAR scale: (256) x (128*9) @ ... x (16*16)
        // output pixels, batch folded into N.
        let cfg = SystolicConfig::default();
        let (m, k, n) = (256, 128 * 9, 16 * 16 * 16);
        let sim = simulate_gemm(&cfg, m, k, n);
        // 1.2G MACs on 180 PEs: at least 6.7M cycles.
        assert!(sim.cycles >= (m * k * n) as u64 / 180);
        assert!(
            sim.throughput(cfg.pes()) > 0.8,
            "conv GEMM should use the array well"
        );
    }
}
