//! The three ADA-GP hardware designs (§4.2, Figure 14) and their
//! per-batch cycle costs.
//!
//! * **ADA-GP-MAX** — extra PE array + predictor memory: predictor work
//!   overlaps the original model's computation.
//! * **ADA-GP-Efficient** — predictor memory only: predictor runs after
//!   each layer on the shared array (cost adds up), but its weights never
//!   reload from DRAM.
//! * **ADA-GP-LOW** — no extra hardware: predictor weights load/store
//!   around every layer's prediction on the shared array.

use crate::layer_cost::LayerCost;
use serde::{Deserialize, Serialize};

/// Which hardware variant runs ADA-GP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdaGpDesign {
    /// Reuse everything; reload predictor weights per layer.
    Low,
    /// Dedicated predictor memory; shared PE array.
    Efficient,
    /// Dedicated predictor PE array and memory; fully overlapped.
    Max,
}

impl AdaGpDesign {
    /// The three designs in the figures' plotting order.
    pub fn all() -> [AdaGpDesign; 3] {
        [AdaGpDesign::Low, AdaGpDesign::Efficient, AdaGpDesign::Max]
    }

    /// Display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AdaGpDesign::Low => "ADA-GP-LOW",
            AdaGpDesign::Efficient => "ADA-GP-Efficient",
            AdaGpDesign::Max => "ADA-GP-MAX",
        }
    }

    /// Extra cycles ADA-GP-LOW pays per layer to load/store predictor
    /// weights on the shared array.
    pub fn reload_cycles(&self) -> u64 {
        match self {
            AdaGpDesign::Low => 96,
            _ => 0,
        }
    }
}

/// Per-batch cycles of the plain backpropagation baseline:
/// `Σ (FW + BW)`.
pub fn baseline_batch_cycles(costs: &[LayerCost]) -> u64 {
    costs.iter().map(|c| c.baseline()).sum()
}

/// Per-batch cycles of a warm-up / Phase BP batch (§3.3, Figure 8): the
/// full baseline plus predictor FW (α) during the forward pass and
/// predictor BW (2α) during the backward pass.
///
/// ADA-GP-MAX overlaps the predictor with the next layer's computation,
/// paying only the non-overlappable remainder `max(0, 3α − (FW+BW))` per
/// layer (≈ 0 in practice since α < FW).
pub fn bp_batch_cycles(design: AdaGpDesign, costs: &[LayerCost]) -> u64 {
    match design {
        AdaGpDesign::Max => costs
            .iter()
            .map(|c| c.baseline() + (3 * c.alpha).saturating_sub(c.baseline()))
            .sum(),
        AdaGpDesign::Efficient => costs.iter().map(|c| c.baseline() + 3 * c.alpha).sum(),
        AdaGpDesign::Low => costs
            .iter()
            .map(|c| c.baseline() + 3 * c.alpha + 2 * design.reload_cycles())
            .sum(),
    }
}

/// Per-batch cycles of a Phase GP batch (§3.4, Figure 9): backward is
/// skipped entirely; only the forward pass plus predictor inference α per
/// layer remains.
pub fn gp_batch_cycles(design: AdaGpDesign, costs: &[LayerCost]) -> u64 {
    match design {
        // Predictor of layer i overlaps FW of layer i+1: per layer the
        // cost is max(FW, α); one trailing α remains at the end.
        AdaGpDesign::Max => {
            let overlapped: u64 = costs.iter().map(|c| c.fw.max(c.alpha)).sum();
            overlapped + costs.last().map(|c| c.alpha).unwrap_or(0)
        }
        AdaGpDesign::Efficient => costs.iter().map(|c| c.fw + c.alpha).sum(),
        AdaGpDesign::Low => costs
            .iter()
            .map(|c| c.fw + c.alpha + design.reload_cycles())
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> Vec<LayerCost> {
        vec![
            LayerCost {
                fw: 1000,
                bw: 2000,
                alpha: 100,
            },
            LayerCost {
                fw: 500,
                bw: 1000,
                alpha: 80,
            },
            LayerCost {
                fw: 2000,
                bw: 4000,
                alpha: 150,
            },
        ]
    }

    #[test]
    fn baseline_is_3x_fw() {
        assert_eq!(baseline_batch_cycles(&costs()), 3 * (1000 + 500 + 2000));
    }

    #[test]
    fn gp_skips_backward() {
        let gp = gp_batch_cycles(AdaGpDesign::Efficient, &costs());
        let baseline = baseline_batch_cycles(&costs());
        // GP = ΣFW + Σα — far below baseline.
        assert_eq!(gp, 3500 + 330);
        assert!(gp * 2 < baseline);
    }

    #[test]
    fn design_ordering_in_gp() {
        // MAX ≤ Efficient ≤ LOW (more hardware, more speed).
        let max = gp_batch_cycles(AdaGpDesign::Max, &costs());
        let eff = gp_batch_cycles(AdaGpDesign::Efficient, &costs());
        let low = gp_batch_cycles(AdaGpDesign::Low, &costs());
        assert!(max <= eff);
        assert!(eff <= low);
    }

    #[test]
    fn max_gp_overlaps_alpha() {
        // alpha < fw everywhere, so MAX pays ΣFW + trailing alpha only.
        let max = gp_batch_cycles(AdaGpDesign::Max, &costs());
        assert_eq!(max, 3500 + 150);
    }

    #[test]
    fn bp_phase_costs_more_than_baseline() {
        // Phase BP adds predictor training work in all designs.
        let b = baseline_batch_cycles(&costs());
        for d in AdaGpDesign::all() {
            assert!(bp_batch_cycles(d, &costs()) >= b, "{}", d.name());
        }
    }

    #[test]
    fn max_bp_is_nearly_baseline() {
        // With alpha << fw, MAX's BP overhead vanishes.
        let b = baseline_batch_cycles(&costs());
        assert_eq!(bp_batch_cycles(AdaGpDesign::Max, &costs()), b);
    }

    #[test]
    fn low_pays_reload() {
        let eff = gp_batch_cycles(AdaGpDesign::Efficient, &costs());
        let low = gp_batch_cycles(AdaGpDesign::Low, &costs());
        assert_eq!(low - eff, 3 * AdaGpDesign::Low.reload_cycles());
    }
}
