//! Step-level timelines of §3.7 (Figures 7–9) and the per-layer
//! characterization of Figure 16.
//!
//! The paper defines a *step* as the forward-pass time of one layer and
//! assumes BW = 2 steps. A 4-layer model then takes 12 steps per batch in
//! the baseline, `12 + 12α` in Phase BP, and `4 + 4α` in Phase GP.

use crate::designs::AdaGpDesign;
use crate::layer_cost::LayerCost;

/// Timeline of a single batch in steps (one step = one layer's FW time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTimeline {
    /// Baseline steps (FW + BW for every layer).
    pub baseline: f64,
    /// Phase BP steps including predictor work (α per layer FW, 2α BW).
    pub phase_bp: f64,
    /// Phase GP steps (FW plus α per layer; no BW).
    pub phase_gp: f64,
}

/// Computes the §3.7 step timeline for an `n_layers` model with relative
/// predictor latency `alpha` (fraction of one FW step).
///
/// # Panics
///
/// Panics if `n_layers == 0` or `alpha < 0`.
pub fn step_timeline(n_layers: usize, alpha: f64) -> StepTimeline {
    assert!(n_layers > 0, "need at least one layer");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let n = n_layers as f64;
    StepTimeline {
        baseline: 3.0 * n,
        phase_bp: 3.0 * n + 3.0 * n * alpha,
        phase_gp: n + n * alpha,
    }
}

/// Per-layer cycle characterization for Figure 16: how a layer's training
/// cycles split across Warm-up, Phase BP and Phase GP under a given
/// epoch mix, versus the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCharacterization {
    /// Layer label.
    pub label: String,
    /// Baseline cycles over the whole run.
    pub baseline: f64,
    /// ADA-GP warm-up cycles.
    pub warmup: f64,
    /// ADA-GP Phase BP cycles.
    pub phase_bp: f64,
    /// ADA-GP Phase GP cycles.
    pub phase_gp: f64,
}

impl LayerCharacterization {
    /// Total ADA-GP cycles.
    pub fn adagp_total(&self) -> f64 {
        self.warmup + self.phase_bp + self.phase_gp
    }
}

/// Figure 16 characterization: per-layer costs under ADA-GP-Efficient.
///
/// `gp_fraction_post_warmup` is the average GP share after warm-up;
/// `warmup_share` is the fraction of epochs spent warming up.
pub fn characterize_layers(
    labels: &[String],
    costs: &[LayerCost],
    design: AdaGpDesign,
    warmup_share: f64,
    gp_fraction_post_warmup: f64,
) -> Vec<LayerCharacterization> {
    assert_eq!(labels.len(), costs.len(), "labels/costs length mismatch");
    let post = 1.0 - warmup_share;
    let g = gp_fraction_post_warmup;
    labels
        .iter()
        .zip(costs.iter())
        .map(|(label, c)| {
            let baseline_batch = c.baseline() as f64;
            let reload = design.reload_cycles() as f64;
            let bp_batch = baseline_batch + 3.0 * c.alpha as f64 + 2.0 * reload;
            let gp_batch = c.fw as f64 + c.alpha as f64 + reload;
            LayerCharacterization {
                label: label.clone(),
                baseline: baseline_batch,
                warmup: warmup_share * bp_batch,
                phase_bp: post * (1.0 - g) * bp_batch,
                phase_gp: post * g * gp_batch,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_layer_baseline_is_12_steps() {
        // Figure 7: "the baseline system requires 12 time steps ... for a
        // 4-layer model".
        let t = step_timeline(4, 0.1);
        assert_eq!(t.baseline, 12.0);
    }

    #[test]
    fn phase_bp_adds_12_alpha() {
        // Figure 8: "ADA-GP increases the model's training time by 12α".
        let alpha = 0.25;
        let t = step_timeline(4, alpha);
        assert!((t.phase_bp - (12.0 + 12.0 * alpha)).abs() < 1e-12);
    }

    #[test]
    fn phase_gp_is_4_plus_4_alpha() {
        // Figure 9: "ADA-GP can minimize the processing time to merely
        // 4 + 4α steps".
        let alpha = 0.25;
        let t = step_timeline(4, alpha);
        assert!((t.phase_gp - (4.0 + 4.0 * alpha)).abs() < 1e-12);
    }

    #[test]
    fn two_epoch_claim_16_plus_16_alpha() {
        // §3.7: two epochs drop from 24 steps to 16 + 16α (one BP batch +
        // one GP batch).
        let alpha = 0.0;
        let t = step_timeline(4, alpha);
        assert_eq!(t.phase_bp + t.phase_gp, 16.0);
        assert_eq!(2.0 * t.baseline, 24.0);
    }

    fn sample_costs() -> (Vec<String>, Vec<LayerCost>) {
        (
            vec!["l1".into(), "l2".into()],
            vec![
                LayerCost {
                    fw: 100,
                    bw: 200,
                    alpha: 10,
                },
                LayerCost {
                    fw: 300,
                    bw: 600,
                    alpha: 20,
                },
            ],
        )
    }

    #[test]
    fn characterization_sums_to_less_than_baseline() {
        let (labels, costs) = sample_costs();
        let chars = characterize_layers(&labels, &costs, AdaGpDesign::Efficient, 0.1, 0.55);
        for ch in &chars {
            assert!(ch.adagp_total() < ch.baseline, "{}", ch.label);
            assert!(ch.phase_gp > 0.0 && ch.warmup > 0.0 && ch.phase_bp > 0.0);
        }
    }

    #[test]
    fn zero_warmup_has_no_warmup_cycles() {
        let (labels, costs) = sample_costs();
        let chars = characterize_layers(&labels, &costs, AdaGpDesign::Efficient, 0.0, 0.5);
        assert!(chars.iter().all(|c| c.warmup == 0.0));
    }
}
