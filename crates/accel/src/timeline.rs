//! Per-layer characterization of Figure 16.
//!
//! The §3.7 step timeline (Figures 7–9) used to live here as a closed
//! form (`StepTimeline`/`step_timeline`); it is now *simulated* by
//! `adagp_sim::steps::step_timeline` so that exactly one place — the
//! discrete-event engine — computes overlap windows. This module keeps
//! only the epoch-mix cost characterization, which is a weighting of
//! per-batch cycle totals, not an overlap computation.

use crate::designs::AdaGpDesign;
use crate::layer_cost::LayerCost;

/// Per-layer cycle characterization for Figure 16: how a layer's training
/// cycles split across Warm-up, Phase BP and Phase GP under a given
/// epoch mix, versus the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCharacterization {
    /// Layer label.
    pub label: String,
    /// Baseline cycles over the whole run.
    pub baseline: f64,
    /// ADA-GP warm-up cycles.
    pub warmup: f64,
    /// ADA-GP Phase BP cycles.
    pub phase_bp: f64,
    /// ADA-GP Phase GP cycles.
    pub phase_gp: f64,
}

impl LayerCharacterization {
    /// Total ADA-GP cycles.
    pub fn adagp_total(&self) -> f64 {
        self.warmup + self.phase_bp + self.phase_gp
    }
}

/// Figure 16 characterization: per-layer costs under ADA-GP-Efficient.
///
/// `gp_fraction_post_warmup` is the average GP share after warm-up;
/// `warmup_share` is the fraction of epochs spent warming up.
pub fn characterize_layers(
    labels: &[String],
    costs: &[LayerCost],
    design: AdaGpDesign,
    warmup_share: f64,
    gp_fraction_post_warmup: f64,
) -> Vec<LayerCharacterization> {
    assert_eq!(labels.len(), costs.len(), "labels/costs length mismatch");
    let post = 1.0 - warmup_share;
    let g = gp_fraction_post_warmup;
    labels
        .iter()
        .zip(costs.iter())
        .map(|(label, c)| {
            let baseline_batch = c.baseline() as f64;
            let reload = design.reload_cycles() as f64;
            let bp_batch = baseline_batch + 3.0 * c.alpha as f64 + 2.0 * reload;
            let gp_batch = c.fw as f64 + c.alpha as f64 + reload;
            LayerCharacterization {
                label: label.clone(),
                baseline: baseline_batch,
                warmup: warmup_share * bp_batch,
                phase_bp: post * (1.0 - g) * bp_batch,
                phase_gp: post * g * gp_batch,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_costs() -> (Vec<String>, Vec<LayerCost>) {
        (
            vec!["l1".into(), "l2".into()],
            vec![
                LayerCost {
                    fw: 100,
                    bw: 200,
                    alpha: 10,
                },
                LayerCost {
                    fw: 300,
                    bw: 600,
                    alpha: 20,
                },
            ],
        )
    }

    #[test]
    fn characterization_sums_to_less_than_baseline() {
        let (labels, costs) = sample_costs();
        let chars = characterize_layers(&labels, &costs, AdaGpDesign::Efficient, 0.1, 0.55);
        for ch in &chars {
            assert!(ch.adagp_total() < ch.baseline, "{}", ch.label);
            assert!(ch.phase_gp > 0.0 && ch.warmup > 0.0 && ch.phase_bp > 0.0);
        }
    }

    #[test]
    fn zero_warmup_has_no_warmup_cycles() {
        let (labels, costs) = sample_costs();
        let chars = characterize_layers(&labels, &costs, AdaGpDesign::Efficient, 0.0, 0.5);
        assert!(chars.iter().all(|c| c.warmup == 0.0));
    }
}
