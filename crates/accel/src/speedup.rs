//! End-to-end training speed-up (Figures 17–19 and §6.6.1 iso-resource
//! comparisons).
//!
//! Total training cost combines the per-phase batch cycles with the
//! phase schedule: warm-up epochs are pure BP, then the GP fraction
//! anneals 4:1 → 3:1 → 2:1 → 1:1 (§3.5). The speed-up is
//! `baseline cycles / ADA-GP cycles` over the whole run.

use crate::dataflow::{AcceleratorConfig, Dataflow};
use crate::designs::{self, AdaGpDesign};
use crate::layer_cost::{model_costs, PredictorCostModel};
use adagp_nn::models::shapes::LayerShape;
use serde::{Deserialize, Serialize};

/// Mini-batch size assumed by the cycle model — the paper-standard 128.
/// (The predictor's cost is batch-independent thanks to the batch-mean
/// reorganization, so larger batches amortize α against more layer work.)
pub const MODEL_BATCH: usize = 128;

/// How many epochs the run spends in each schedule stage — mirrors
/// `adagp_core::ScheduleConfig` without depending on that crate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochMix {
    /// Warm-up epochs (pure backprop).
    pub warmup: usize,
    /// Epochs at GP:BP = 4:1.
    pub stage_4_1: usize,
    /// Epochs at 3:1.
    pub stage_3_1: usize,
    /// Epochs at 2:1.
    pub stage_2_1: usize,
    /// Epochs at the steady 1:1 ratio.
    pub stage_1_1: usize,
}

impl EpochMix {
    /// The paper's 90-epoch run: 10 warm-up + 4 + 4 + 4 + 68.
    pub fn paper() -> Self {
        EpochMix {
            warmup: 10,
            stage_4_1: 4,
            stage_3_1: 4,
            stage_2_1: 4,
            stage_1_1: 68,
        }
    }

    /// Total epochs.
    pub fn total(&self) -> usize {
        self.warmup + self.stage_4_1 + self.stage_3_1 + self.stage_2_1 + self.stage_1_1
    }

    /// `(gp_fraction, epochs)` pairs for each stage.
    pub fn stages(&self) -> [(f64, usize); 5] {
        [
            (0.0, self.warmup),
            (4.0 / 5.0, self.stage_4_1),
            (3.0 / 4.0, self.stage_3_1),
            (2.0 / 3.0, self.stage_2_1),
            (0.5, self.stage_1_1),
        ]
    }
}

/// Total ADA-GP training cycles per "epoch-batch unit" (one batch per
/// epoch; batch counts cancel in the speed-up ratio).
pub fn adagp_training_cycles(
    cfg: &AcceleratorConfig,
    df: Dataflow,
    design: AdaGpDesign,
    layers: &[LayerShape],
    mix: &EpochMix,
) -> f64 {
    let costs = model_costs(cfg, df, &PredictorCostModel::default(), layers, MODEL_BATCH);
    let bp = designs::bp_batch_cycles(design, &costs) as f64;
    let gp = designs::gp_batch_cycles(design, &costs) as f64;
    mix.stages()
        .iter()
        .map(|&(g, epochs)| epochs as f64 * (g * gp + (1.0 - g) * bp))
        .sum()
}

/// Total baseline training cycles for the same run length.
pub fn baseline_training_cycles(
    cfg: &AcceleratorConfig,
    df: Dataflow,
    layers: &[LayerShape],
    mix: &EpochMix,
) -> f64 {
    let costs = model_costs(cfg, df, &PredictorCostModel::default(), layers, MODEL_BATCH);
    let b = designs::baseline_batch_cycles(&costs) as f64;
    mix.total() as f64 * b
}

/// End-to-end speed-up of an ADA-GP design over the baseline.
pub fn training_speedup(
    cfg: &AcceleratorConfig,
    df: Dataflow,
    design: AdaGpDesign,
    layers: &[LayerShape],
    mix: &EpochMix,
) -> f64 {
    baseline_training_cycles(cfg, df, layers, mix)
        / adagp_training_cycles(cfg, df, design, layers, mix)
}

/// §6.6.1 iso-resource comparison: the baseline gets `pe_bonus` more PEs
/// (10% iso-power FPGA, 11% iso-area ASIC) while ADA-GP-MAX keeps the
/// original array. Returns ADA-GP-MAX's residual speed-up.
pub fn iso_resource_speedup(
    cfg: &AcceleratorConfig,
    df: Dataflow,
    layers: &[LayerShape],
    mix: &EpochMix,
    pe_bonus: f64,
) -> f64 {
    let boosted = cfg.scaled_pes(1.0 + pe_bonus);
    baseline_training_cycles(&boosted, df, layers, mix)
        / adagp_training_cycles(cfg, df, AdaGpDesign::Max, layers, mix)
}

/// Geometric mean helper for the figures' "Geomean" column.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_nn::models::shapes::{model_shapes, InputScale};
    use adagp_nn::models::CnnModel;

    fn vgg13() -> Vec<LayerShape> {
        model_shapes(CnnModel::Vgg13, InputScale::Cifar)
    }

    #[test]
    fn speedup_exceeds_one_for_all_designs() {
        let cfg = AcceleratorConfig::default();
        for design in AdaGpDesign::all() {
            let s = training_speedup(
                &cfg,
                Dataflow::WeightStationary,
                design,
                &vgg13(),
                &EpochMix::paper(),
            );
            assert!(s > 1.0, "{}: {s}", design.name());
            assert!(
                s < 3.0,
                "{}: {s} (3x is the theoretical ceiling)",
                design.name()
            );
        }
    }

    #[test]
    fn max_beats_efficient_beats_low() {
        let cfg = AcceleratorConfig::default();
        let mix = EpochMix::paper();
        let s = |d| training_speedup(&cfg, Dataflow::WeightStationary, d, &vgg13(), &mix);
        assert!(s(AdaGpDesign::Max) >= s(AdaGpDesign::Efficient));
        assert!(s(AdaGpDesign::Efficient) >= s(AdaGpDesign::Low));
    }

    #[test]
    fn paper_range_for_max_design() {
        // Figures 17–19 report ADA-GP-MAX averages of ≈1.46–1.48×.
        let cfg = AcceleratorConfig::default();
        let mix = EpochMix::paper();
        let speeds: Vec<f64> = CnnModel::all()
            .iter()
            .map(|&m| {
                training_speedup(
                    &cfg,
                    Dataflow::WeightStationary,
                    AdaGpDesign::Max,
                    &model_shapes(m, InputScale::Cifar),
                    &mix,
                )
            })
            .collect();
        let g = geomean(&speeds);
        assert!(
            (1.30..1.60).contains(&g),
            "geomean speed-up {g} outside the paper's ballpark"
        );
    }

    #[test]
    fn more_gp_epochs_more_speedup() {
        let cfg = AcceleratorConfig::default();
        let light = EpochMix {
            warmup: 50,
            stage_4_1: 0,
            stage_3_1: 0,
            stage_2_1: 0,
            stage_1_1: 40,
        };
        let heavy = EpochMix::paper();
        let s_light = training_speedup(
            &cfg,
            Dataflow::WeightStationary,
            AdaGpDesign::Max,
            &vgg13(),
            &light,
        );
        let s_heavy = training_speedup(
            &cfg,
            Dataflow::WeightStationary,
            AdaGpDesign::Max,
            &vgg13(),
            &heavy,
        );
        assert!(s_heavy > s_light);
    }

    #[test]
    fn iso_resource_still_wins() {
        // §6.6.1: with a +10% PE baseline, ADA-GP-MAX keeps a few percent.
        let cfg = AcceleratorConfig::default();
        let s = iso_resource_speedup(
            &cfg,
            Dataflow::WeightStationary,
            &vgg13(),
            &EpochMix::paper(),
            0.10,
        );
        assert!(s > 1.0, "iso-power speed-up {s}");
        let plain = training_speedup(
            &cfg,
            Dataflow::WeightStationary,
            AdaGpDesign::Max,
            &vgg13(),
            &EpochMix::paper(),
        );
        assert!(s < plain);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn epoch_mix_totals() {
        assert_eq!(EpochMix::paper().total(), 90);
    }
}
