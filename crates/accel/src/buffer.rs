//! Global-buffer tiling model (§4.1: "A global buffer stores input data,
//! weights, and intermediate results").
//!
//! The energy model in [`crate::energy`] assumes ideal reuse; this module
//! refines it: a layer whose working set exceeds the on-chip buffer must
//! stream some operand from DRAM multiple times. The tiling chooser mirrors
//! the dataflow: the *stationary* operand is pinned in the buffer and the
//! streaming operand determines the number of passes.

use crate::dataflow::Dataflow;
use adagp_nn::models::shapes::LayerShape;
use serde::{Deserialize, Serialize};

/// On-chip buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Capacity in 4-byte words (paper-class accelerators: 100s of KB;
    /// default 128K words = 512 KB).
    pub capacity_words: u64,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            capacity_words: 128 * 1024,
        }
    }
}

/// DRAM traffic of one layer's forward pass under tiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TiledTraffic {
    /// Words of weights read from DRAM (with re-reads if they don't fit).
    pub weight_reads: u64,
    /// Words of input activations read.
    pub input_reads: u64,
    /// Words of output activations written.
    pub output_writes: u64,
    /// Number of passes over the streamed operand.
    pub passes: u64,
}

impl TiledTraffic {
    /// Total DRAM words moved.
    pub fn total(&self) -> u64 {
        self.weight_reads + self.input_reads + self.output_writes
    }
}

/// Input activation footprint of a layer (per batch), in words.
fn input_words(layer: &LayerShape, batch: usize) -> u64 {
    // Approximate the input spatial size by the output size times the
    // stride-1 assumption used throughout the shape lists.
    let spatial = (layer.h_out * layer.w_out) as u64;
    batch as u64 * layer.in_ch as u64 * spatial
}

/// Computes the tiled forward-pass DRAM traffic of one layer.
///
/// Under a weight-stationary mapping the weights are pinned: if they fit in
/// the buffer they are read once; otherwise the *inputs* are re-read once
/// per weight tile. Output/input-stationary mappings pin the activations
/// and may re-read weights instead.
pub fn tiled_fw_traffic(
    cfg: &BufferConfig,
    df: Dataflow,
    layer: &LayerShape,
    batch: usize,
) -> TiledTraffic {
    let w = layer.weight_count();
    let inp = input_words(layer, batch);
    let out = batch as u64 * layer.out_activations();
    match df {
        Dataflow::WeightStationary | Dataflow::RowStationary => {
            // Weights pinned; number of weight tiles = ceil(W / capacity).
            let passes = w.div_ceil(cfg.capacity_words).max(1);
            TiledTraffic {
                weight_reads: w,
                input_reads: inp * passes,
                output_writes: out,
                passes,
            }
        }
        Dataflow::InputStationary => {
            let passes = inp.div_ceil(cfg.capacity_words).max(1);
            TiledTraffic {
                weight_reads: w * passes,
                input_reads: inp,
                output_writes: out,
                passes,
            }
        }
        Dataflow::OutputStationary => {
            let passes = out.div_ceil(cfg.capacity_words).max(1);
            TiledTraffic {
                weight_reads: w * passes,
                input_reads: inp * passes,
                output_writes: out,
                passes,
            }
        }
    }
}

/// Total tiled forward traffic of a model, in words.
pub fn model_fw_traffic(
    cfg: &BufferConfig,
    df: Dataflow,
    layers: &[LayerShape],
    batch: usize,
) -> u64 {
    layers
        .iter()
        .map(|l| tiled_fw_traffic(cfg, df, l, batch).total())
        .sum()
}

/// Ratio of tiled traffic to ideal (infinite-buffer) traffic — 1.0 means
/// the buffer is large enough for perfect reuse.
pub fn reuse_efficiency(
    cfg: &BufferConfig,
    df: Dataflow,
    layers: &[LayerShape],
    batch: usize,
) -> f64 {
    let infinite = BufferConfig {
        capacity_words: u64::MAX,
    };
    let ideal = model_fw_traffic(&infinite, df, layers, batch) as f64;
    let tiled = model_fw_traffic(cfg, df, layers, batch) as f64;
    ideal / tiled
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_nn::models::shapes::{model_shapes, InputScale};
    use adagp_nn::models::CnnModel;

    fn small_layer() -> LayerShape {
        LayerShape::conv("s", 8, 8, 3, 14) // 576 weights — fits anywhere
    }

    fn huge_layer() -> LayerShape {
        LayerShape::conv("h", 512, 512, 3, 14) // 2.36M weights
    }

    #[test]
    fn fitting_layer_reads_once() {
        let cfg = BufferConfig::default();
        let t = tiled_fw_traffic(&cfg, Dataflow::WeightStationary, &small_layer(), 8);
        assert_eq!(t.passes, 1);
        assert_eq!(t.weight_reads, small_layer().weight_count());
    }

    #[test]
    fn oversized_weights_cause_input_rereads() {
        let cfg = BufferConfig::default(); // 128K words < 2.36M weights
        let t = tiled_fw_traffic(&cfg, Dataflow::WeightStationary, &huge_layer(), 8);
        assert!(t.passes > 1, "expected multiple passes, got {}", t.passes);
        let ideal = input_words(&huge_layer(), 8);
        assert_eq!(t.input_reads, ideal * t.passes);
    }

    #[test]
    fn bigger_buffer_never_hurts() {
        let small = BufferConfig {
            capacity_words: 16 * 1024,
        };
        let big = BufferConfig {
            capacity_words: 1024 * 1024,
        };
        let layers = model_shapes(CnnModel::Vgg13, InputScale::Cifar);
        for df in [
            Dataflow::WeightStationary,
            Dataflow::OutputStationary,
            Dataflow::InputStationary,
        ] {
            let t_small = model_fw_traffic(&small, df, &layers, 16);
            let t_big = model_fw_traffic(&big, df, &layers, 16);
            assert!(t_big <= t_small, "{df:?}");
        }
    }

    #[test]
    fn reuse_efficiency_bounded() {
        let cfg = BufferConfig::default();
        let layers = model_shapes(CnnModel::ResNet50, InputScale::ImageNet);
        let e = reuse_efficiency(&cfg, Dataflow::WeightStationary, &layers, 16);
        assert!(e > 0.0 && e <= 1.0, "efficiency {e}");
    }

    #[test]
    fn dataflow_choice_changes_traffic() {
        let cfg = BufferConfig {
            capacity_words: 8 * 1024,
        };
        let ws = tiled_fw_traffic(&cfg, Dataflow::WeightStationary, &huge_layer(), 8);
        let is = tiled_fw_traffic(&cfg, Dataflow::InputStationary, &huge_layer(), 8);
        assert_ne!(ws.total(), is.total());
    }
}
