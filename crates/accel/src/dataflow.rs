//! PE-array configuration and dataflow utilization models (§4.1).
//!
//! The paper's baseline is a weight-stationary accelerator with 180 PEs;
//! Figures 17–19 repeat the evaluation for Row-Stationary and
//! Input-Stationary baselines. A dataflow determines which operand stays
//! pinned in the PE registers and therefore how well a given layer shape
//! utilizes the array.

use adagp_nn::models::shapes::{LayerKind, LayerShape};
use serde::{Deserialize, Serialize};

/// Which operand remains stationary in the PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weights pinned (paper baseline; e.g. TPU).
    WeightStationary,
    /// Partial sums pinned (e.g. ShiDianNao).
    OutputStationary,
    /// Inputs pinned.
    InputStationary,
    /// Eyeriss-style row stationary.
    RowStationary,
}

impl Dataflow {
    /// Every dataflow the cycle model understands, in a stable order —
    /// the enumeration the sweep grid axes build on.
    pub fn all() -> [Dataflow; 4] {
        [
            Dataflow::WeightStationary,
            Dataflow::OutputStationary,
            Dataflow::InputStationary,
            Dataflow::RowStationary,
        ]
    }

    /// The three dataflows evaluated in Figures 17–19 (OS is exercised in
    /// tests/ablations).
    pub fn figure_set() -> [Dataflow; 3] {
        [
            Dataflow::WeightStationary,
            Dataflow::RowStationary,
            Dataflow::InputStationary,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
            Dataflow::InputStationary => "IS",
            Dataflow::RowStationary => "RS",
        }
    }
}

/// Hardware configuration of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of processing elements (paper: 180).
    pub pes: usize,
    /// Pipeline fill/drain overhead per layer invocation, in cycles.
    pub ramp_cycles: u64,
    /// Backward-pass cost multiplier relative to forward (paper §3.7
    /// assumes 2×).
    pub bw_multiplier: f64,
}

impl Default for AcceleratorConfig {
    /// The paper's setup: 180 PEs, BW = 2×FW.
    fn default() -> Self {
        AcceleratorConfig {
            pes: 180,
            ramp_cycles: 64,
            bw_multiplier: 2.0,
        }
    }
}

impl AcceleratorConfig {
    /// Scales the PE count by `factor` (used by the iso-power/iso-area
    /// comparisons of §6.6.1, which grant the baseline +10%/+11% PEs).
    pub fn scaled_pes(&self, factor: f64) -> Self {
        AcceleratorConfig {
            pes: ((self.pes as f64 * factor).round() as usize).max(1),
            ..*self
        }
    }
}

/// Fraction of the PE array a layer keeps busy under a dataflow, in
/// `(0, 1]`.
///
/// The stationary operand must fill the array for full utilization: a
/// weight-stationary array idles when a layer has fewer weights than PEs,
/// an output-stationary array when it has few output activations, and so
/// on. Row-stationary's reuse makes it the most robust (Eyeriss), modeled
/// with a higher utilization floor.
pub fn utilization(df: Dataflow, layer: &LayerShape, pes: usize) -> f64 {
    let pes = pes as f64;
    let weights = layer.weight_count() as f64;
    let outs = layer.out_activations() as f64;
    let ins = match layer.kind {
        LayerKind::Linear => layer.in_ch as f64,
        _ => (layer.in_ch * layer.h_out * layer.w_out) as f64,
    };
    let raw = match df {
        Dataflow::WeightStationary => weights / pes,
        Dataflow::OutputStationary => outs / pes,
        Dataflow::InputStationary => ins / pes,
        Dataflow::RowStationary => {
            // Rows of the filter × output channels map onto the array.
            (layer.k as f64 * layer.out_ch as f64) / pes
        }
    };
    let floor = match df {
        Dataflow::RowStationary => 0.55,
        _ => 0.35,
    };
    raw.min(1.0).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_nn::models::shapes::LayerShape;

    #[test]
    fn default_is_paper_config() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.pes, 180);
        assert_eq!(c.bw_multiplier, 2.0);
    }

    #[test]
    fn scaled_pes_rounds() {
        let c = AcceleratorConfig::default().scaled_pes(1.10);
        assert_eq!(c.pes, 198);
    }

    #[test]
    fn big_layers_fully_utilize() {
        let big = LayerShape::conv("c", 128, 256, 3, 28);
        for df in [
            Dataflow::WeightStationary,
            Dataflow::OutputStationary,
            Dataflow::InputStationary,
            Dataflow::RowStationary,
        ] {
            assert_eq!(utilization(df, &big, 180), 1.0, "{}", df.name());
        }
    }

    #[test]
    fn tiny_layers_underutilize_ws() {
        // 1x1 conv with few weights starves a weight-stationary array.
        let tiny = LayerShape::conv("c", 4, 4, 1, 28);
        let u = utilization(Dataflow::WeightStationary, &tiny, 180);
        assert!(u < 1.0);
        assert!(u >= 0.35); // floor
    }

    #[test]
    fn rs_has_higher_floor() {
        let tiny = LayerShape::conv("c", 2, 2, 1, 2);
        let ws = utilization(Dataflow::WeightStationary, &tiny, 180);
        let rs = utilization(Dataflow::RowStationary, &tiny, 180);
        assert!(rs >= ws);
    }

    #[test]
    fn figure_set_is_ws_rs_is() {
        let names: Vec<_> = Dataflow::figure_set().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["WS", "RS", "IS"]);
    }

    #[test]
    fn all_covers_every_dataflow_once() {
        let all = Dataflow::all();
        assert_eq!(all.len(), 4);
        for df in Dataflow::figure_set() {
            assert!(all.contains(&df));
        }
        let names: std::collections::HashSet<_> = all.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 4, "duplicate dataflow names");
    }

    #[test]
    fn serde_round_trips_config_and_dataflow() {
        // The formerly inert derives are real now: values survive JSON.
        let cfg = AcceleratorConfig::default();
        let back: AcceleratorConfig =
            serde::json::from_str(&serde::json::to_string(&cfg)).expect("config round-trip");
        assert_eq!(back, cfg);
        for df in Dataflow::all() {
            let js = serde::json::to_string(&df);
            assert_eq!(
                js,
                format!("{:?}", format!("{df:?}")),
                "external tag is the variant name"
            );
            let back: Dataflow = serde::json::from_str(&js).expect("dataflow round-trip");
            assert_eq!(back, df);
        }
        assert!(serde::json::from_str::<Dataflow>("\"Diagonal\"").is_err());
    }
}
