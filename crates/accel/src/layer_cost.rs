//! Per-layer cycle costs: forward pass, backward pass and the predictor's
//! forward/backward latency α / 2α (§3.7).

use crate::dataflow::{utilization, AcceleratorConfig, Dataflow};
use adagp_nn::models::shapes::{LayerKind, LayerShape};

/// Cycle costs of one layer for one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCost {
    /// Forward-pass cycles.
    pub fw: u64,
    /// Backward-pass cycles (weight + data gradients).
    pub bw: u64,
    /// Predictor forward latency α for this layer.
    pub alpha: u64,
}

impl LayerCost {
    /// Baseline training cycles for the layer (FW + BW).
    pub fn baseline(&self) -> u64 {
        self.fw + self.bw
    }
}

use serde::{Deserialize, Serialize};

/// Cost model for the predictor model attached to a layer (§3.7: "This
/// value is directly linked to the predictor model's size and the number
/// of operations in its FW and BW pass").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorCostModel {
    /// Pooled spatial size of the predictor input (see
    /// `adagp_core::PredictorConfig`).
    pub pooled_size: usize,
    /// Conv channels of the predictor.
    pub conv_channels: usize,
}

impl Default for PredictorCostModel {
    fn default() -> Self {
        PredictorCostModel {
            pooled_size: 4,
            conv_channels: 8,
        }
    }
}

impl PredictorCostModel {
    /// Predictor MACs for one layer's gradient prediction: conv stage +
    /// FC stage over `out_ch` reorganized samples.
    ///
    /// Conv sites pool their activation map to `pooled_size²`; linear
    /// sites reorganize to a 1×1 map (one scalar per output feature, see
    /// `adagp_core::reorg`), so their per-row feature width is just
    /// `conv_channels` — without this the predictor would dwarf the FC
    /// layers it serves.
    pub fn macs(&self, layer: &LayerShape) -> u64 {
        let spatial = match layer.kind {
            LayerKind::Linear => 1u64,
            _ => (self.pooled_size * self.pooled_size) as u64,
        };
        let conv_macs = self.conv_channels as u64 * 9 * spatial; // 3x3 conv, 1 in-channel
        let feat = self.conv_channels as u64 * spatial;
        let row = layer.weight_count() / layer.out_ch.max(1) as u64;
        let fc_macs = feat * row;
        layer.out_ch as u64 * (conv_macs + fc_macs)
    }
}

/// Computes the per-layer cycle costs for a batch of `batch` samples.
///
/// Forward cycles = batch MACs / (PEs × utilization) + ramp; backward =
/// `bw_multiplier` × forward (the paper's assumption); α = predictor MACs
/// at full utilization (its GEMM shapes are dense) + ramp.
pub fn layer_cost(
    cfg: &AcceleratorConfig,
    df: Dataflow,
    pred: &PredictorCostModel,
    layer: &LayerShape,
    batch: usize,
) -> LayerCost {
    let u = utilization(df, layer, cfg.pes);
    let macs = layer.macs() * batch as u64;
    let fw = (macs as f64 / (cfg.pes as f64 * u)).ceil() as u64 + cfg.ramp_cycles;
    let bw = (fw as f64 * cfg.bw_multiplier).round() as u64;
    // Tensor reorganization averages over the batch, so predictor cost is
    // batch-independent.
    let alpha = (pred.macs(layer) as f64 / cfg.pes as f64).ceil() as u64 + cfg.ramp_cycles;
    LayerCost { fw, bw, alpha }
}

/// Costs for every layer of a model.
pub fn model_costs(
    cfg: &AcceleratorConfig,
    df: Dataflow,
    pred: &PredictorCostModel,
    layers: &[LayerShape],
    batch: usize,
) -> Vec<LayerCost> {
    layers
        .iter()
        .map(|l| layer_cost(cfg, df, pred, l, batch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_layer() -> LayerShape {
        LayerShape::conv("c", 128, 256, 3, 28)
    }

    #[test]
    fn bw_is_twice_fw() {
        let cfg = AcceleratorConfig::default();
        let c = layer_cost(
            &cfg,
            Dataflow::WeightStationary,
            &PredictorCostModel::default(),
            &big_layer(),
            16,
        );
        assert_eq!(c.bw, c.fw * 2);
        assert_eq!(c.baseline(), c.fw * 3);
    }

    #[test]
    fn alpha_is_smaller_than_fw() {
        // §3.7: "This latency is smaller than the FW pass latency of each
        // layer of the original model."
        let cfg = AcceleratorConfig::default();
        let c = layer_cost(
            &cfg,
            Dataflow::WeightStationary,
            &PredictorCostModel::default(),
            &big_layer(),
            16,
        );
        assert!(
            c.alpha < c.fw,
            "alpha {} should be below fw {}",
            c.alpha,
            c.fw
        );
    }

    #[test]
    fn cycles_scale_with_batch() {
        let cfg = AcceleratorConfig::default();
        let pred = PredictorCostModel::default();
        let c1 = layer_cost(&cfg, Dataflow::WeightStationary, &pred, &big_layer(), 1);
        let c16 = layer_cost(&cfg, Dataflow::WeightStationary, &pred, &big_layer(), 16);
        assert!(c16.fw > c1.fw * 10);
        // Predictor cost is batch-independent (batch-mean reorganization).
        assert_eq!(c1.alpha, c16.alpha);
    }

    #[test]
    fn more_pes_fewer_cycles() {
        let small = AcceleratorConfig::default();
        let big = AcceleratorConfig::default().scaled_pes(2.0);
        let pred = PredictorCostModel::default();
        let cs = layer_cost(&small, Dataflow::WeightStationary, &pred, &big_layer(), 8);
        let cb = layer_cost(&big, Dataflow::WeightStationary, &pred, &big_layer(), 8);
        assert!(cb.fw < cs.fw);
    }

    #[test]
    fn model_costs_covers_all_layers() {
        let cfg = AcceleratorConfig::default();
        let layers = vec![big_layer(), LayerShape::linear("fc", 512, 10)];
        let costs = model_costs(
            &cfg,
            Dataflow::RowStationary,
            &PredictorCostModel::default(),
            &layers,
            4,
        );
        assert_eq!(costs.len(), 2);
    }
}
