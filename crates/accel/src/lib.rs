//! # adagp-accel
//!
//! Analytic models of the DNN training accelerator used in the ADA-GP
//! paper's evaluation (MICRO 2023, §4–§6): a 180-PE weight-stationary
//! systolic baseline with WS/OS/IS/RS dataflows, the three ADA-GP hardware
//! designs (LOW / Efficient / MAX), per-layer cycle costs, DRAM-traffic
//! energy, and FPGA/ASIC resource/area/power models calibrated to the
//! paper's Tables 4–5.
//!
//! The paper itself reasons about performance with a step/cycle analytic
//! model (Figures 7–9: forward = 1 step per layer, backward = 2 steps,
//! predictor latency α); this crate implements that model quantitatively
//! over the *paper-scale* layer shapes from `adagp_nn::models::shapes`.
//!
//! ## Example
//!
//! ```
//! use adagp_accel::{AcceleratorConfig, Dataflow, designs::AdaGpDesign, speedup};
//! use adagp_nn::models::{shapes, CnnModel};
//!
//! let cfg = AcceleratorConfig::default();
//! let layers = shapes::model_shapes(CnnModel::Vgg13, shapes::InputScale::Cifar);
//! let s = speedup::training_speedup(
//!     &cfg, Dataflow::WeightStationary, AdaGpDesign::Max, &layers, &speedup::EpochMix::paper(),
//! );
//! assert!(s > 1.0);
//! ```

pub mod buffer;
pub mod dataflow;
pub mod designs;
pub mod energy;
pub mod layer_cost;
pub mod speedup;
pub mod synthesis;
pub mod systolic;
pub mod timeline;

pub use dataflow::{AcceleratorConfig, Dataflow};
pub use designs::AdaGpDesign;
pub use layer_cost::{LayerCost, PredictorCostModel};
