//! FPGA resource/power and ASIC area/power models (§6.6.1, Tables 4–5).
//!
//! The paper synthesizes its designs with Vivado (Virtex-7) and the
//! Synopsys Design Compiler. Those toolchains are not reproducible here;
//! instead this module provides an additive component model — baseline
//! accelerator + predictor memory + extra PE array — whose component
//! constants are calibrated so the composed totals match the paper's
//! published tables. The comparisons the paper draws (overhead percents,
//! iso-power/iso-area baselines) are derived from the model, not
//! hard-coded.

use crate::designs::AdaGpDesign;
use serde::{Deserialize, Serialize};

/// One row of the FPGA resource-utilization table (Table 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaResources {
    /// CLB look-up tables.
    pub clb_luts: u64,
    /// CLB registers.
    pub clb_registers: u64,
    /// 36 Kb block RAMs.
    pub bram36: u64,
    /// 18 Kb block RAMs.
    pub bram18: u64,
    /// DSP48E1 slices.
    pub dsp48: u64,
}

/// One row of the FPGA on-chip power table (Table 4b), in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaPower {
    /// Clock tree power.
    pub clocks: f64,
    /// CLB logic power.
    pub logic: f64,
    /// Signal/net power.
    pub signals: f64,
    /// Block RAM power.
    pub bram: f64,
    /// DSP power.
    pub dsps: f64,
    /// Static power.
    pub static_power: f64,
}

impl FpgaPower {
    /// Total on-chip power in watts.
    pub fn total(&self) -> f64 {
        self.clocks + self.logic + self.signals + self.bram + self.dsps + self.static_power
    }
}

/// FPGA component model calibrated to the paper's Virtex-7 numbers.
#[derive(Debug, Clone, Copy)]
pub struct FpgaModel {
    baseline: FpgaResources,
    baseline_power: FpgaPower,
}

impl Default for FpgaModel {
    fn default() -> Self {
        FpgaModel {
            // Table 4a baseline row.
            baseline: FpgaResources {
                clb_luts: 472_004,
                clb_registers: 31_402,
                bram36: 1_327,
                bram18: 514,
                dsp48: 166,
            },
            // Table 4b baseline row.
            baseline_power: FpgaPower {
                clocks: 0.046,
                logic: 0.420,
                signals: 0.842,
                bram: 0.244,
                dsps: 0.009,
                static_power: 2.032,
            },
        }
    }
}

impl FpgaModel {
    /// Resources of the baseline accelerator.
    pub fn baseline(&self) -> FpgaResources {
        self.baseline
    }

    /// Resources of an ADA-GP design: baseline + control logic (LUTs) +
    /// predictor memory (BRAM, Efficient/MAX) + predictor PE array
    /// (registers + DSPs, MAX only).
    pub fn design(&self, d: AdaGpDesign) -> FpgaResources {
        let mut r = self.baseline;
        // Phase-control and gradient-routing logic (all designs).
        r.clb_luts += 17_282;
        r.clb_registers += 454;
        match d {
            AdaGpDesign::Low => {}
            AdaGpDesign::Efficient => {
                r.clb_luts += 3_885;
                r.clb_registers += 60;
                r.bram36 += 1_080; // predictor weight memory
            }
            AdaGpDesign::Max => {
                r.clb_luts += 4_794;
                r.clb_registers += 5_596; // extra PE array registers
                r.bram36 += 1_080;
                r.dsp48 += 80; // predictor PE array multipliers
            }
        }
        r
    }

    /// Power of the baseline accelerator.
    pub fn baseline_power(&self) -> FpgaPower {
        self.baseline_power
    }

    /// Power of an ADA-GP design, composed from the added components.
    pub fn design_power(&self, d: AdaGpDesign) -> FpgaPower {
        let mut p = self.baseline_power;
        match d {
            AdaGpDesign::Low => {
                p.clocks += 0.001;
                p.logic += 0.026;
                p.signals += 0.015;
                p.bram -= 0.001; // fewer concurrent banks active
                p.dsps = 0.001;
            }
            AdaGpDesign::Efficient => {
                p.clocks += 0.006;
                p.logic += 0.001;
                p.signals += 0.010;
                p.bram += 0.095; // predictor memory
                p.dsps = 0.001;
                p.static_power += 0.028;
            }
            AdaGpDesign::Max => {
                p.clocks += 0.009;
                p.logic += 0.006;
                p.signals += 0.015;
                p.bram += 0.095;
                p.dsps = 0.001;
                p.static_power += 0.027;
            }
        }
        p
    }

    /// Power overhead of a design vs baseline, in percent.
    pub fn power_overhead_percent(&self, d: AdaGpDesign) -> f64 {
        100.0 * (self.design_power(d).total() / self.baseline_power.total() - 1.0)
    }
}

/// One row of the ASIC area table (Table 5a), in µm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsicArea {
    /// Combinational cell area.
    pub combinational: f64,
    /// Buffer/inverter area.
    pub buf_inv: f64,
    /// Net interconnect area.
    pub interconnect: f64,
    /// Total cell area.
    pub total_cell: f64,
}

impl AsicArea {
    /// Total area (cell + interconnect).
    pub fn total(&self) -> f64 {
        self.total_cell + self.interconnect
    }
}

/// One row of the ASIC power table (Table 5b), in µW.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsicPower {
    /// Internal (cell) power.
    pub internal: f64,
    /// Switching power.
    pub switching: f64,
    /// Leakage power.
    pub leakage: f64,
}

impl AsicPower {
    /// Total power in µW.
    pub fn total(&self) -> f64 {
        self.internal + self.switching + self.leakage
    }
}

/// ASIC component model calibrated to the paper's Design Compiler numbers.
#[derive(Debug, Clone, Copy)]
pub struct AsicModel {
    baseline_area: AsicArea,
    baseline_power: AsicPower,
}

impl Default for AsicModel {
    fn default() -> Self {
        AsicModel {
            // Table 5a baseline row.
            baseline_area: AsicArea {
                combinational: 2_331_250.0,
                buf_inv: 272_483.0,
                interconnect: 436_615.0,
                total_cell: 2_546_076.0,
            },
            // Table 5b baseline row.
            baseline_power: AsicPower {
                internal: 2.26e4,
                switching: 1.72e3,
                leakage: 1.99e5,
            },
        }
    }
}

impl AsicModel {
    /// Baseline area.
    pub fn baseline_area(&self) -> AsicArea {
        self.baseline_area
    }

    /// Area of an ADA-GP design.
    pub fn design_area(&self, d: AdaGpDesign) -> AsicArea {
        let mut a = self.baseline_area;
        let (comb, bi, net, cell) = match d {
            AdaGpDesign::Low => (43_938.0, 4_778.0, 8_756.0, 44_507.0),
            AdaGpDesign::Efficient => (74_631.0, 3_300.0, 3_416.0, 76_782.0),
            AdaGpDesign::Max => (180_807.0, 14_593.0, 23_542.0, 224_903.0),
        };
        a.combinational += comb;
        a.buf_inv += bi;
        a.interconnect += net;
        a.total_cell += cell;
        a
    }

    /// Baseline power.
    pub fn baseline_power(&self) -> AsicPower {
        self.baseline_power
    }

    /// Power of an ADA-GP design.
    pub fn design_power(&self, d: AdaGpDesign) -> AsicPower {
        let mut p = self.baseline_power;
        match d {
            AdaGpDesign::Low => {
                p.internal -= 1.0e2;
                p.switching -= 5.0e1;
                p.leakage += 3.0e3;
            }
            AdaGpDesign::Efficient => {
                p.internal += 1.0e2;
                p.switching += 8.0e1;
                p.leakage += 1.0e3;
            }
            AdaGpDesign::Max => {
                p.internal += 5.4e3;
                p.switching += 7.0e2;
                p.leakage += 2.4e4;
            }
        }
        p
    }

    /// Area overhead of a design vs baseline, in percent.
    pub fn area_overhead_percent(&self, d: AdaGpDesign) -> f64 {
        100.0 * (self.design_area(d).total() / self.baseline_area.total() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_baseline_matches_table4() {
        let m = FpgaModel::default();
        let b = m.baseline();
        assert_eq!(b.clb_luts, 472_004);
        assert_eq!(b.dsp48, 166);
        assert!((m.baseline_power().total() - 3.712).abs() < 0.12);
    }

    #[test]
    fn fpga_designs_match_table4_rows() {
        let m = FpgaModel::default();
        let low = m.design(AdaGpDesign::Low);
        assert_eq!(low.clb_luts, 489_286);
        assert_eq!(low.bram36, 1_327);
        let eff = m.design(AdaGpDesign::Efficient);
        assert_eq!(eff.clb_luts, 493_171);
        assert_eq!(eff.bram36, 2_407);
        let max = m.design(AdaGpDesign::Max);
        assert_eq!(max.clb_luts, 494_080);
        assert_eq!(max.dsp48, 246);
        assert_eq!(max.clb_registers, 37_452);
    }

    #[test]
    fn fpga_power_overheads_match_paper() {
        // §6.6.1: "power increase of only 0.8%, 3.5%, and 3.8%".
        let m = FpgaModel::default();
        assert!((m.power_overhead_percent(AdaGpDesign::Low) - 0.8).abs() < 0.5);
        assert!((m.power_overhead_percent(AdaGpDesign::Efficient) - 3.5).abs() < 0.6);
        assert!((m.power_overhead_percent(AdaGpDesign::Max) - 3.8).abs() < 0.6);
    }

    #[test]
    fn asic_area_overheads_match_paper() {
        // §6.6.1: "increase in the final design area by 1.7%, 2.6%, and
        // 8.3%".
        let m = AsicModel::default();
        assert!((m.area_overhead_percent(AdaGpDesign::Low) - 1.7).abs() < 0.4);
        assert!((m.area_overhead_percent(AdaGpDesign::Efficient) - 2.6).abs() < 0.4);
        assert!((m.area_overhead_percent(AdaGpDesign::Max) - 8.3).abs() < 0.5);
    }

    #[test]
    fn asic_baseline_matches_table5() {
        let m = AsicModel::default();
        assert_eq!(m.baseline_area().combinational, 2_331_250.0);
        let p = m.baseline_power();
        assert!((p.total() - 2.24e5).abs() / 2.24e5 < 0.01);
    }

    #[test]
    fn design_ordering_max_costs_most() {
        let fm = FpgaModel::default();
        let am = AsicModel::default();
        for pair in [
            (AdaGpDesign::Low, AdaGpDesign::Efficient),
            (AdaGpDesign::Efficient, AdaGpDesign::Max),
        ] {
            assert!(fm.design(pair.0).clb_luts <= fm.design(pair.1).clb_luts);
            assert!(am.design_area(pair.0).total() <= am.design_area(pair.1).total());
        }
    }
}
