//! Off-chip memory-access energy model (§6.6.2, Figure 21).
//!
//! Phase GP's key side effect: "Since the weights are updated as the FW
//! pass proceeds, ADA-GP does not need to load the weights and activations
//! from off-chip memory as is traditionally done in the case of BW pass."
//! The model counts DRAM words moved per batch in each phase and applies a
//! CACTI-style per-access energy constant.

use crate::designs::AdaGpDesign;
use crate::speedup::EpochMix;
use adagp_nn::models::shapes::LayerShape;
use serde::{Deserialize, Serialize};

/// Energy constants (CACTI-derived magnitudes; Figure 21 depends only on
/// the traffic ratios).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Picojoules per 4-byte DRAM word access.
    pub dram_pj_per_word: f64,
    /// Batch size of the modelled training run.
    pub batch: usize,
    /// Batches per epoch of the modelled training run.
    pub batches_per_epoch: usize,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            dram_pj_per_word: 640.0,
            batch: 16,
            batches_per_epoch: 512,
        }
    }
}

/// DRAM words moved by one **forward** pass of a batch: weights in,
/// activations in and out.
pub fn fw_traffic_words(layers: &[LayerShape], batch: usize) -> u64 {
    layers
        .iter()
        .map(|l| l.weight_count() + batch as u64 * 2 * l.out_activations())
        .sum()
}

/// DRAM words moved by one **backward** pass of a batch: weights re-read,
/// stored activations re-read, activation gradients read and written
/// (spilled between layers), weight gradients and updated weights written.
pub fn bw_traffic_words(layers: &[LayerShape], batch: usize) -> u64 {
    layers
        .iter()
        .map(|l| 3 * l.weight_count() + batch as u64 * 3 * l.out_activations())
        .sum()
}

/// DRAM words of a Phase GP batch. With no backward pass pending, the
/// forward pass streams activations through the on-chip buffer instead of
/// spilling them for later reuse ("ADA-GP does not need to load the
/// weights and activations from off-chip memory as is traditionally done
/// in the case of BW pass"): weights in, updated weights out, activations
/// touched once. ADA-GP-LOW additionally reloads predictor weights per
/// layer.
pub fn gp_traffic_words(
    layers: &[LayerShape],
    batch: usize,
    design: AdaGpDesign,
    predictor_words: u64,
) -> u64 {
    let base: u64 = layers
        .iter()
        .map(|l| 2 * l.weight_count() + batch as u64 * l.out_activations())
        .sum();
    match design {
        AdaGpDesign::Low => base + layers.len() as u64 * predictor_words,
        _ => base,
    }
}

/// Total training memory energy in joules for the baseline.
pub fn baseline_energy_joules(cfg: &EnergyConfig, layers: &[LayerShape], mix: &EpochMix) -> f64 {
    let per_batch =
        (fw_traffic_words(layers, cfg.batch) + bw_traffic_words(layers, cfg.batch)) as f64;
    let batches = (mix.total() * cfg.batches_per_epoch) as f64;
    per_batch * batches * cfg.dram_pj_per_word * 1e-12
}

/// Total training memory energy in joules for an ADA-GP design.
pub fn adagp_energy_joules(
    cfg: &EnergyConfig,
    layers: &[LayerShape],
    mix: &EpochMix,
    design: AdaGpDesign,
) -> f64 {
    let fw = fw_traffic_words(layers, cfg.batch) as f64;
    let bw = bw_traffic_words(layers, cfg.batch) as f64;
    // Predictor footprint: a few KW; only LOW re-reads it per layer.
    let predictor_words = 4096u64;
    let gp = gp_traffic_words(layers, cfg.batch, design, predictor_words) as f64;
    let bp = fw + bw + predictor_words as f64; // BP phases also touch predictor weights once
    let mut total_words = 0.0;
    for (g, epochs) in mix.stages() {
        let per_batch = g * gp + (1.0 - g) * bp;
        total_words += epochs as f64 * cfg.batches_per_epoch as f64 * per_batch;
    }
    total_words * cfg.dram_pj_per_word * 1e-12
}

/// Relative energy saving of a design vs the baseline, in percent.
pub fn energy_saving_percent(
    cfg: &EnergyConfig,
    layers: &[LayerShape],
    mix: &EpochMix,
    design: AdaGpDesign,
) -> f64 {
    let b = baseline_energy_joules(cfg, layers, mix);
    let a = adagp_energy_joules(cfg, layers, mix, design);
    100.0 * (1.0 - a / b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_nn::models::shapes::{model_shapes, InputScale};
    use adagp_nn::models::CnnModel;

    fn vgg13() -> Vec<LayerShape> {
        model_shapes(CnnModel::Vgg13, InputScale::Cifar)
    }

    #[test]
    fn bw_moves_more_than_fw() {
        let layers = vgg13();
        assert!(bw_traffic_words(&layers, 16) > fw_traffic_words(&layers, 16));
    }

    #[test]
    fn gp_moves_less_than_fw_plus_bw() {
        let layers = vgg13();
        let gp = gp_traffic_words(&layers, 16, AdaGpDesign::Efficient, 4096);
        assert!(gp < fw_traffic_words(&layers, 16) + bw_traffic_words(&layers, 16));
    }

    #[test]
    fn adagp_saves_energy_in_paper_ballpark() {
        // The paper reports an average 34% reduction; the model should land
        // in the same neighbourhood for the CNN zoo.
        let cfg = EnergyConfig::default();
        let mix = EpochMix::paper();
        let savings: Vec<f64> = CnnModel::all()
            .iter()
            .map(|&m| {
                energy_saving_percent(
                    &cfg,
                    &model_shapes(m, InputScale::Cifar),
                    &mix,
                    AdaGpDesign::Efficient,
                )
            })
            .collect();
        let mean = savings.iter().sum::<f64>() / savings.len() as f64;
        assert!(
            (20.0..45.0).contains(&mean),
            "mean saving {mean}% outside the paper's ballpark"
        );
    }

    #[test]
    fn low_design_saves_less_than_efficient() {
        let cfg = EnergyConfig::default();
        let mix = EpochMix::paper();
        let layers = vgg13();
        let eff = energy_saving_percent(&cfg, &layers, &mix, AdaGpDesign::Efficient);
        let low = energy_saving_percent(&cfg, &layers, &mix, AdaGpDesign::Low);
        assert!(low <= eff);
    }

    #[test]
    fn energy_scales_with_run_length() {
        let cfg = EnergyConfig::default();
        let layers = vgg13();
        let short = EpochMix {
            warmup: 1,
            stage_4_1: 1,
            stage_3_1: 1,
            stage_2_1: 1,
            stage_1_1: 1,
        };
        let long = EpochMix::paper();
        assert!(
            baseline_energy_joules(&cfg, &layers, &long)
                > baseline_energy_joules(&cfg, &layers, &short)
        );
    }
}
