//! # adagp-sweep
//!
//! The declarative experiment-grid engine behind the paper's evaluation
//! surface. Every headline result of ADA-GP (Figures 17–21, Tables 1–5)
//! is a point on one grid — {model × dataset × accelerator design ×
//! dataflow × phase schedule} — and this crate makes that grid a value
//! instead of a convention scattered across `adagp-bench` binaries:
//!
//! * [`grid`] — a [`GridSpec`](grid::GridSpec) declares axes; expansion
//!   yields [`CellSpec`](grid::CellSpec)s with **stable, content-derived
//!   IDs** (FNV-1a over the cell's canonical key), so the same cell keeps
//!   the same identity across runs, machines and PRs.
//! * [`shapes`] — the single, memoized source of paper-scale layer shapes
//!   per (model, input scale); the bench harness shares it instead of
//!   re-deriving shapes per figure.
//! * [`runner`] — executes cells in parallel on the shared
//!   `adagp-runtime` pool (`parallel_map`, so result order is the
//!   deterministic expansion order) with per-cell wall timing.
//! * [`simeval`] — the sim-backed evaluator: each cell also runs through
//!   the `adagp-sim` discrete-event simulator, contributing the
//!   `sim_cycles` / `pe_utilization` / `overlap_efficiency` metrics and
//!   the batch-level detail view behind the `sweep sim` subcommand.
//! * [`store`] — serializes runs to byte-stable CSV (fixed-precision
//!   floats, no timing columns) and JSON (full precision + timing, via
//!   the now-activated vendored serde derives), and loads either back —
//!   including streaming bounded-memory writers whose output is
//!   byte-identical to the whole-file forms.
//! * [`shardlog`] — append-only, shard-per-worker NDJSON result logs
//!   with fsync'd record boundaries: crash-safe resumable execution
//!   (`--shard k/n`), a torn-tail-tolerant loader, and a deterministic
//!   last-write-wins merge that reconstructs the byte-stable CSV/JSON
//!   of an uninterrupted run.
//! * [`diff`] — compares two stored runs cell-by-cell with configurable
//!   tolerances and classifies regressions/improvements — the cross-PR
//!   trajectory tracker ROADMAP asked for.
//! * [`roofline`] — the bandwidth-roofline analysis: per cell, the
//!   smallest DRAM bandwidth within 1% of the contention-free training
//!   cycles (the *knee*), found by binary search on the simulator's
//!   monotone bandwidth→makespan curve and memoized across bandwidth-axis
//!   siblings.
//! * [`presets`] — the named grids the `sweep` CLI exposes (`fig17-ws`,
//!   `fig18-rs`, `fig19-is`, `energy`, `dataflows`, `schedules`,
//!   `bandwidth`, `bandwidth-smoke`, `roofline`, `smoke`).
//!
//! ## Example
//!
//! ```
//! use adagp_sweep::{diff, presets, runner, store};
//!
//! let grid = presets::by_name("smoke").expect("known preset");
//! let run = runner::run_grid(&grid);
//! assert_eq!(run.cells.len(), grid.cell_count());
//!
//! // Two identical runs diff clean.
//! let a = store::StoredRun::from_run(&run);
//! let b = store::StoredRun::from_run(&runner::run_grid(&grid));
//! let report = diff::diff_runs(&a, &b, &diff::DiffConfig::default());
//! assert!(!report.has_regressions());
//! ```

pub mod diff;
pub mod grid;
pub mod presets;
pub mod roofline;
pub mod runner;
pub mod shapes;
pub mod shardlog;
pub mod simeval;
pub mod store;

pub use diff::{diff_runs, DiffConfig, DiffReport};
pub use grid::{CellSpec, DatasetScale, GridSpec, PhaseSchedule, Shard};
pub use roofline::{
    cell_knee, cell_roofline, roofline_csv, run_roofline_grid, KneeMemoKey, RooflinePoint,
};
pub use runner::{evaluate_cell, evaluate_cells, run_grid, CellMetrics, CellResult, SweepRun};
pub use shardlog::{
    load_shard, merge_dir, merge_to_run, run_sharded, shard_file_name, MergedRun, ShardLoad,
    ShardRunStats, ShardWriter, SkippedSpan,
};
pub use simeval::{cell_sim_config, run_sim_grid, sim_detail_csv, simulate_cell, SimCellDetail};
pub use store::{
    metrics_from_array, metrics_to_array, stored_csv_string, stored_json_string, RunRecord,
    StoredCell, StoredRun, StreamingCsvWriter, StreamingJsonWriter,
};
