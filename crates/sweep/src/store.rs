//! Persisting sweep runs: byte-stable CSV and full-fidelity JSON.
//!
//! Two formats, two jobs:
//!
//! * **CSV** — the diffable artifact. Metric floats are formatted at a
//!   fixed precision ([`CSV_FLOAT_DECIMALS`] decimals, never
//!   shortest-round-trip `Display`) and timing columns are excluded, so
//!   two runs of the same code produce byte-identical files — `git diff`
//!   on a committed run file means something changed in the *model*, not
//!   in float formatting or scheduling noise.
//! * **JSON** — the run record. Full-precision metrics plus per-cell and
//!   total wall time, serialized through the activated vendored serde
//!   derives on [`RunRecord`]/[`CellRecord`].
//!
//! [`StoredRun`] is the format-agnostic view the [`diff`](crate::diff)
//! engine consumes; it loads from either format (by extension) or
//! directly from an in-memory [`SweepRun`].

use crate::runner::SweepRun;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Fixed decimal places for every metric float in CSV output.
pub const CSV_FLOAT_DECIMALS: usize = 6;

/// Schema version embedded in JSON run records. v2 added the
/// discrete-event simulator metrics (`sim_cycles`, `pe_utilization`,
/// `overlap_efficiency`).
pub const RUN_SCHEMA_VERSION: u32 = 2;

/// The CSV column layout: identity, axis values, then the metrics of
/// [`METRICS`] in order.
pub const CSV_HEADER: [&str; 14] = [
    "id",
    "dataflow",
    "dataset",
    "model",
    "design",
    "schedule",
    "speedup",
    "baseline_cycles",
    "adagp_cycles",
    "baseline_energy_j",
    "adagp_energy_j",
    "sim_cycles",
    "pe_utilization",
    "overlap_efficiency",
];

/// Number of leading non-metric (identity + axis) columns in the CSV.
pub const CSV_META_COLUMNS: usize = 6;

/// One metric column: its name and which direction is an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metric {
    /// Column name (matches [`CSV_HEADER`]).
    pub name: &'static str,
    /// `true` if larger values are better (speed-up); `false` if smaller
    /// values are better (cycles, energy).
    pub higher_is_better: bool,
}

/// The eight metric columns every cell produces, in CSV order.
pub const METRICS: [Metric; 8] = [
    Metric {
        name: "speedup",
        higher_is_better: true,
    },
    Metric {
        name: "baseline_cycles",
        higher_is_better: false,
    },
    Metric {
        name: "adagp_cycles",
        higher_is_better: false,
    },
    Metric {
        name: "baseline_energy_j",
        higher_is_better: false,
    },
    Metric {
        name: "adagp_energy_j",
        higher_is_better: false,
    },
    Metric {
        name: "sim_cycles",
        higher_is_better: false,
    },
    Metric {
        name: "pe_utilization",
        higher_is_better: true,
    },
    Metric {
        name: "overlap_efficiency",
        higher_is_better: true,
    },
];

/// JSON run record (schema, grid name, timing, cells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Record schema version ([`RUN_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Name of the grid that ran.
    pub grid: String,
    /// Total sweep wall time in microseconds.
    pub total_wall_micros: u64,
    /// Every cell, in expansion order.
    pub cells: Vec<CellRecord>,
}

/// JSON cell record: axis names as strings (stable display names), full
/// precision metrics, per-cell timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Content-derived cell ID.
    pub id: String,
    /// Dataflow display name.
    pub dataflow: String,
    /// Dataset display name.
    pub dataset: String,
    /// Model display name.
    pub model: String,
    /// Design display name.
    pub design: String,
    /// Schedule name.
    pub schedule: String,
    /// End-to-end speed-up.
    pub speedup: f64,
    /// Baseline training cycles.
    pub baseline_cycles: f64,
    /// ADA-GP training cycles.
    pub adagp_cycles: f64,
    /// Baseline memory energy (J).
    pub baseline_energy_j: f64,
    /// ADA-GP memory energy (J).
    pub adagp_energy_j: f64,
    /// Simulated ADA-GP training cycles (with contention).
    pub sim_cycles: f64,
    /// Simulated PE-array utilization.
    pub pe_utilization: f64,
    /// Simulated predictor-overlap efficiency.
    pub overlap_efficiency: f64,
    /// Wall-clock microseconds for this cell.
    pub wall_micros: u64,
}

/// The PR 3 (schema v1) run record shape — loaded for backward
/// compatibility, never written.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RunRecordV1 {
    schema: u32,
    grid: String,
    total_wall_micros: u64,
    cells: Vec<CellRecordV1>,
}

/// A schema-v1 cell record: the five analytic metrics only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CellRecordV1 {
    id: String,
    dataflow: String,
    dataset: String,
    model: String,
    design: String,
    schedule: String,
    speedup: f64,
    baseline_cycles: f64,
    adagp_cycles: f64,
    baseline_energy_j: f64,
    adagp_energy_j: f64,
    wall_micros: u64,
}

impl RunRecord {
    /// Builds the JSON record of a completed run.
    pub fn from_run(run: &SweepRun) -> RunRecord {
        RunRecord {
            schema: RUN_SCHEMA_VERSION,
            grid: run.grid.clone(),
            total_wall_micros: run.total_wall_micros,
            cells: run
                .cells
                .iter()
                .map(|c| CellRecord {
                    id: c.spec.id.clone(),
                    dataflow: c.spec.dataflow.name().to_string(),
                    dataset: c.spec.dataset.name().to_string(),
                    model: c.spec.model.name().to_string(),
                    design: c.spec.design.name().to_string(),
                    schedule: c.spec.schedule.name().to_string(),
                    speedup: c.metrics.speedup,
                    baseline_cycles: c.metrics.baseline_cycles,
                    adagp_cycles: c.metrics.adagp_cycles,
                    baseline_energy_j: c.metrics.baseline_energy_j,
                    adagp_energy_j: c.metrics.adagp_energy_j,
                    sim_cycles: c.metrics.sim_cycles,
                    pe_utilization: c.metrics.pe_utilization,
                    overlap_efficiency: c.metrics.overlap_efficiency,
                    wall_micros: c.wall_micros,
                })
                .collect(),
        }
    }
}

/// Formats a metric float exactly as the CSV stores it.
pub fn csv_float(v: f64) -> String {
    format!("{v:.prec$}", prec = CSV_FLOAT_DECIMALS)
}

/// Renders a run as byte-stable CSV (header + one row per cell).
pub fn to_csv_string(run: &SweepRun) -> String {
    let mut out = String::new();
    out.push_str(&CSV_HEADER.join(","));
    out.push('\n');
    for c in &run.cells {
        let m = c.metrics;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.spec.id,
            c.spec.dataflow.name(),
            c.spec.dataset.name(),
            c.spec.model.name(),
            c.spec.design.name(),
            c.spec.schedule.name(),
            csv_float(m.speedup),
            csv_float(m.baseline_cycles),
            csv_float(m.adagp_cycles),
            csv_float(m.baseline_energy_j),
            csv_float(m.adagp_energy_j),
            csv_float(m.sim_cycles),
            csv_float(m.pe_utilization),
            csv_float(m.overlap_efficiency),
        ));
    }
    out
}

/// Renders a run as a pretty-printed JSON record.
pub fn to_json_string(run: &SweepRun) -> String {
    let mut s = serde::json::to_string_pretty(&RunRecord::from_run(run));
    s.push('\n');
    s
}

/// Writes the CSV form of `run` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(path: &Path, run: &SweepRun) -> std::io::Result<()> {
    std::fs::write(path, to_csv_string(run))
}

/// Writes the JSON record of `run` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_json(path: &Path, run: &SweepRun) -> std::io::Result<()> {
    std::fs::write(path, to_json_string(run))
}

/// One stored cell: identity, axis values, metric values in
/// [`METRICS`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCell {
    /// Content-derived cell ID.
    pub id: String,
    /// Axis display values: dataflow, dataset, model, design, schedule.
    pub axes: [String; 5],
    /// Metric values, aligned with [`METRICS`].
    pub metrics: [f64; METRICS.len()],
}

impl StoredCell {
    /// `dataflow/dataset/model/design/schedule` — the cell's readable key.
    pub fn key(&self) -> String {
        self.axes.join("/")
    }
}

/// Number of metric columns a schema-v1 (PR 3) CSV carried — the first
/// five of [`METRICS`]; v2 appended the sim metrics, so v1 files parse as
/// a prefix.
pub const V1_METRIC_COUNT: usize = 5;

/// A format-agnostic stored run: what the diff engine consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRun {
    /// Stored cells, in file order.
    pub cells: Vec<StoredCell>,
    /// How many leading entries of each cell's `metrics` the source file
    /// actually carried ([`METRICS`]`.len()` for current files,
    /// [`V1_METRIC_COUNT`] for legacy ones; the rest are zero-filled).
    /// The diff engine only compares metrics both runs carry.
    pub metric_count: usize,
}

impl Default for StoredRun {
    fn default() -> Self {
        StoredRun {
            cells: Vec::new(),
            metric_count: METRICS.len(),
        }
    }
}

impl StoredRun {
    /// Views an in-memory run as a stored run (quantized exactly like the
    /// CSV would be, so in-memory and on-disk diffs agree).
    pub fn from_run(run: &SweepRun) -> StoredRun {
        Self::from_csv_str(&to_csv_string(run)).expect("self-generated CSV parses")
    }

    /// Loads a stored run from `path`, dispatching on the extension
    /// (`.json` → JSON record, anything else → CSV).
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: &Path) -> Result<StoredRun, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let parsed = if path.extension().is_some_and(|e| e == "json") {
            Self::from_json_str(&text)
        } else {
            Self::from_csv_str(&text)
        };
        parsed.map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Parses the CSV form. Accepts the current header and the schema-v1
    /// (PR 3) 11-column header, whose metrics are a prefix of today's —
    /// old committed runs stay diffable against fresh ones.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_csv_str(text: &str) -> Result<StoredRun, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let expected = CSV_HEADER.join(",");
        let v1_expected = CSV_HEADER[..CSV_META_COLUMNS + V1_METRIC_COUNT].join(",");
        let metric_count = if header == expected {
            METRICS.len()
        } else if header == v1_expected {
            V1_METRIC_COUNT
        } else {
            return Err(format!(
                "unexpected CSV header `{header}` (expected `{expected}`)"
            ));
        };
        let columns = CSV_META_COLUMNS + metric_count;
        let mut cells = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != columns {
                return Err(format!(
                    "line {}: {} fields (expected {columns})",
                    lineno + 2,
                    fields.len(),
                ));
            }
            let mut metrics = [0.0f64; METRICS.len()];
            for (i, m) in metrics.iter_mut().take(metric_count).enumerate() {
                let raw = fields[CSV_META_COLUMNS + i];
                *m = raw.parse::<f64>().map_err(|_| {
                    format!("line {}: bad {} value `{raw}`", lineno + 2, METRICS[i].name)
                })?;
            }
            cells.push(StoredCell {
                id: fields[0].to_string(),
                axes: [
                    fields[1].to_string(),
                    fields[2].to_string(),
                    fields[3].to_string(),
                    fields[4].to_string(),
                    fields[5].to_string(),
                ],
                metrics,
            });
        }
        Ok(StoredRun {
            cells,
            metric_count,
        })
    }

    /// Parses the JSON record form — the current schema or the v1 (PR 3)
    /// one, whose metrics are a prefix of today's.
    ///
    /// # Errors
    ///
    /// Returns a description of the syntax or schema mismatch.
    pub fn from_json_str(text: &str) -> Result<StoredRun, String> {
        let value = serde::json::parse_value(text).map_err(|e| e.to_string())?;
        let schema = match &value {
            serde::Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == "schema")
                .and_then(|(_, v)| u32::from_value(v).ok()),
            _ => None,
        }
        .ok_or("run record has no schema field")?;
        match schema {
            RUN_SCHEMA_VERSION => {
                let record = RunRecord::from_value(&value).map_err(|e| e.to_string())?;
                Ok(StoredRun {
                    cells: record
                        .cells
                        .into_iter()
                        .map(|c| StoredCell {
                            id: c.id,
                            axes: [c.dataflow, c.dataset, c.model, c.design, c.schedule],
                            metrics: [
                                c.speedup,
                                c.baseline_cycles,
                                c.adagp_cycles,
                                c.baseline_energy_j,
                                c.adagp_energy_j,
                                c.sim_cycles,
                                c.pe_utilization,
                                c.overlap_efficiency,
                            ],
                        })
                        .collect(),
                    metric_count: METRICS.len(),
                })
            }
            1 => {
                let record = RunRecordV1::from_value(&value).map_err(|e| e.to_string())?;
                Ok(StoredRun {
                    cells: record
                        .cells
                        .into_iter()
                        .map(|c| StoredCell {
                            id: c.id,
                            axes: [c.dataflow, c.dataset, c.model, c.design, c.schedule],
                            metrics: [
                                c.speedup,
                                c.baseline_cycles,
                                c.adagp_cycles,
                                c.baseline_energy_j,
                                c.adagp_energy_j,
                                0.0,
                                0.0,
                                0.0,
                            ],
                        })
                        .collect(),
                    metric_count: V1_METRIC_COUNT,
                })
            }
            other => Err(format!(
                "unsupported run schema {other} (expected {RUN_SCHEMA_VERSION} or 1)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{DatasetScale, GridSpec, PhaseSchedule};
    use crate::runner::run_grid;
    use adagp_accel::{AdaGpDesign, Dataflow};
    use adagp_nn::models::CnnModel;

    fn small_run() -> SweepRun {
        run_grid(&GridSpec {
            name: "store-test".to_string(),
            models: vec![CnnModel::Vgg13],
            datasets: vec![DatasetScale::Cifar10],
            designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
            dataflows: vec![Dataflow::WeightStationary],
            schedules: vec![PhaseSchedule::Paper],
        })
    }

    #[test]
    fn csv_is_byte_stable_across_runs() {
        // Same grid, two executions (different wall times!) → same bytes.
        assert_eq!(to_csv_string(&small_run()), to_csv_string(&small_run()));
    }

    #[test]
    fn csv_round_trips_through_stored_run() {
        let run = small_run();
        let stored = StoredRun::from_csv_str(&to_csv_string(&run)).unwrap();
        assert_eq!(stored.cells.len(), run.cells.len());
        for (s, c) in stored.cells.iter().zip(&run.cells) {
            assert_eq!(s.id, c.spec.id);
            assert_eq!(s.key(), c.spec.key());
            // CSV quantizes to CSV_FLOAT_DECIMALS decimals.
            assert!((s.metrics[0] - c.metrics.speedup).abs() < 1e-6);
        }
    }

    #[test]
    fn json_round_trips_at_full_precision() {
        let run = small_run();
        let record = RunRecord::from_run(&run);
        let back: RunRecord = serde::json::from_str(&to_json_string(&run)).unwrap();
        assert_eq!(back, record);
        // Bit-exact metrics (no quantization in JSON).
        assert_eq!(
            back.cells[0].speedup.to_bits(),
            run.cells[0].metrics.speedup.to_bits()
        );
        let stored = StoredRun::from_json_str(&to_json_string(&run)).unwrap();
        assert_eq!(
            stored.cells[0].metrics[0].to_bits(),
            run.cells[0].metrics.speedup.to_bits()
        );
    }

    #[test]
    fn load_dispatches_on_extension() {
        let run = small_run();
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("adagp-sweep-{}.csv", std::process::id()));
        let json = dir.join(format!("adagp-sweep-{}.json", std::process::id()));
        write_csv(&csv, &run).unwrap();
        write_json(&json, &run).unwrap();
        let from_csv = StoredRun::load(&csv).unwrap();
        let from_json = StoredRun::load(&json).unwrap();
        assert_eq!(from_csv.cells.len(), from_json.cells.len());
        assert_eq!(from_csv.cells[0].id, from_json.cells[0].id);
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn malformed_csv_is_rejected_with_context() {
        assert!(StoredRun::from_csv_str("").is_err());
        let bad_header = "id,nope\nx,y";
        assert!(StoredRun::from_csv_str(bad_header)
            .unwrap_err()
            .contains("header"));
        let good = to_csv_string(&small_run());
        let truncated = good.replace(",paper,", ",paper");
        let err = StoredRun::from_csv_str(&truncated).unwrap_err();
        assert!(err.contains("fields"), "{err}");
    }

    #[test]
    fn legacy_v1_files_still_load_and_diff_against_fresh_runs() {
        // A PR 3-era CSV (11 columns, no sim metrics) and JSON (schema 1)
        // must load, report the smaller metric count, and diff cleanly
        // against a fresh run over the shared analytic metrics.
        let run = small_run();
        let v1_columns = CSV_META_COLUMNS + V1_METRIC_COUNT;
        let v1_csv: String = to_csv_string(&run)
            .lines()
            .map(|line| {
                line.split(',')
                    .take(v1_columns)
                    .collect::<Vec<_>>()
                    .join(",")
                    + "\n"
            })
            .collect();
        let legacy = StoredRun::from_csv_str(&v1_csv).expect("v1 CSV parses");
        assert_eq!(legacy.metric_count, V1_METRIC_COUNT);
        assert_eq!(legacy.cells.len(), run.cells.len());

        let fresh = StoredRun::from_run(&run);
        assert_eq!(fresh.metric_count, METRICS.len());
        let report = crate::diff::diff_runs(&legacy, &fresh, &crate::diff::DiffConfig::default());
        assert_eq!(report.matched_cells, run.cells.len());
        assert!(!report.has_regressions(), "{}", report.render());
        assert!(report.improvements.is_empty(), "{}", report.render());

        let mut v1_json = to_json_string(&run);
        v1_json = v1_json.replace("\"schema\": 2", "\"schema\": 1");
        for key in ["sim_cycles", "pe_utilization", "overlap_efficiency"] {
            let mut out = String::new();
            for line in v1_json.lines() {
                if !line.contains(&format!("\"{key}\"")) {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            v1_json = out;
        }
        let legacy_json = StoredRun::from_json_str(&v1_json).expect("v1 JSON parses");
        assert_eq!(legacy_json.metric_count, V1_METRIC_COUNT);
        // JSON keeps full precision; the fresh view is CSV-quantized.
        assert_eq!(
            legacy_json.cells[0].metrics[0].to_bits(),
            run.cells[0].metrics.speedup.to_bits()
        );
        // Unknown future schemas still fail loudly.
        assert!(StoredRun::from_json_str(
            &to_json_string(&run).replace("\"schema\": 2", "\"schema\": 9")
        )
        .unwrap_err()
        .contains("unsupported run schema 9"));
    }

    #[test]
    fn csv_float_is_fixed_precision() {
        assert_eq!(csv_float(1.5), "1.500000");
        assert_eq!(csv_float(0.1), "0.100000");
        // Shortest-round-trip Display would print 1234567890123.4568…-style
        // noise; fixed precision keeps it stable.
        assert_eq!(csv_float(1e12), "1000000000000.000000");
    }
}
