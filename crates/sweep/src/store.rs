//! Persisting sweep runs: byte-stable CSV and full-fidelity JSON.
//!
//! Two formats, two jobs:
//!
//! * **CSV** — the diffable artifact. Metric floats are formatted at a
//!   fixed precision ([`CSV_FLOAT_DECIMALS`] decimals, never
//!   shortest-round-trip `Display`) and timing columns are excluded, so
//!   two runs of the same code produce byte-identical files — `git diff`
//!   on a committed run file means something changed in the *model*, not
//!   in float formatting or scheduling noise.
//! * **JSON** — the run record. Full-precision metrics plus per-cell and
//!   total wall time, serialized through the activated vendored serde
//!   derives on [`RunRecord`]/[`CellRecord`].
//!
//! [`StoredRun`] is the format-agnostic view the [`diff`](crate::diff)
//! engine consumes; it loads from either format (by extension) or
//! directly from an in-memory [`SweepRun`].

use crate::grid::CellSpec;
use crate::runner::{CellMetrics, SweepRun};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Fixed decimal places for every metric float in CSV output.
pub const CSV_FLOAT_DECIMALS: usize = 6;

/// Schema version embedded in JSON run records. v2 added the
/// discrete-event simulator metrics (`sim_cycles`, `pe_utilization`,
/// `overlap_efficiency`); v3 added the contention axes (`dram_bw`,
/// `buffer_words` columns) and the contention-study metrics
/// (`spill_cycles`, `dram_stall_frac`, `knee_words_per_cycle`).
pub const RUN_SCHEMA_VERSION: u32 = 3;

/// The CSV column layout: identity, axis values (the two contention
/// columns read `default` when a cell does not override the simulator
/// knobs), then the metrics of [`METRICS`] in order.
pub const CSV_HEADER: [&str; 19] = [
    "id",
    "dataflow",
    "dataset",
    "model",
    "design",
    "schedule",
    "dram_bw",
    "buffer_words",
    "speedup",
    "baseline_cycles",
    "adagp_cycles",
    "baseline_energy_j",
    "adagp_energy_j",
    "sim_cycles",
    "pe_utilization",
    "overlap_efficiency",
    "spill_cycles",
    "dram_stall_frac",
    "knee_words_per_cycle",
];

/// Number of leading non-metric (identity + axis) columns in the CSV.
pub const CSV_META_COLUMNS: usize = 8;

/// Number of leading non-metric columns a schema-v1/v2 CSV carried
/// (before the contention-axis columns existed).
pub const LEGACY_META_COLUMNS: usize = 6;

/// One metric column: its name and which direction is an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metric {
    /// Column name (matches [`CSV_HEADER`]).
    pub name: &'static str,
    /// `true` if larger values are better (speed-up); `false` if smaller
    /// values are better (cycles, energy).
    pub higher_is_better: bool,
}

/// The eleven metric columns every cell produces, in CSV order.
pub const METRICS: [Metric; 11] = [
    Metric {
        name: "speedup",
        higher_is_better: true,
    },
    Metric {
        name: "baseline_cycles",
        higher_is_better: false,
    },
    Metric {
        name: "adagp_cycles",
        higher_is_better: false,
    },
    Metric {
        name: "baseline_energy_j",
        higher_is_better: false,
    },
    Metric {
        name: "adagp_energy_j",
        higher_is_better: false,
    },
    Metric {
        name: "sim_cycles",
        higher_is_better: false,
    },
    Metric {
        name: "pe_utilization",
        higher_is_better: true,
    },
    Metric {
        name: "overlap_efficiency",
        higher_is_better: true,
    },
    Metric {
        name: "spill_cycles",
        higher_is_better: false,
    },
    Metric {
        name: "dram_stall_frac",
        higher_is_better: false,
    },
    Metric {
        name: "knee_words_per_cycle",
        higher_is_better: false,
    },
];

/// JSON run record (schema, grid name, timing, cells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Record schema version ([`RUN_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Name of the grid that ran.
    pub grid: String,
    /// Total sweep wall time in microseconds.
    pub total_wall_micros: u64,
    /// Every cell, in expansion order.
    pub cells: Vec<CellRecord>,
}

/// JSON cell record: axis names as strings (stable display names), full
/// precision metrics, per-cell timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Content-derived cell ID.
    pub id: String,
    /// Dataflow display name.
    pub dataflow: String,
    /// Dataset display name.
    pub dataset: String,
    /// Model display name.
    pub model: String,
    /// Design display name.
    pub design: String,
    /// Schedule name.
    pub schedule: String,
    /// Simulator bandwidth override (`"default"` or words/cycle).
    pub dram_bw: String,
    /// Simulator buffer-capacity override (`"default"` or words).
    pub buffer_words: String,
    /// End-to-end speed-up.
    pub speedup: f64,
    /// Baseline training cycles.
    pub baseline_cycles: f64,
    /// ADA-GP training cycles.
    pub adagp_cycles: f64,
    /// Baseline memory energy (J).
    pub baseline_energy_j: f64,
    /// ADA-GP memory energy (J).
    pub adagp_energy_j: f64,
    /// Simulated ADA-GP training cycles (with contention).
    pub sim_cycles: f64,
    /// Simulated PE-array utilization.
    pub pe_utilization: f64,
    /// Simulated predictor-overlap efficiency.
    pub overlap_efficiency: f64,
    /// Epoch-weighted buffer-spill cycles.
    pub spill_cycles: f64,
    /// Memory-stall fraction of the simulated cycles.
    pub dram_stall_frac: f64,
    /// Bandwidth-roofline knee (words/cycle).
    pub knee_words_per_cycle: f64,
    /// Wall-clock microseconds for this cell.
    pub wall_micros: u64,
}

/// The PR 4 (schema v2) run record shape — loaded for backward
/// compatibility, never written.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RunRecordV2 {
    schema: u32,
    grid: String,
    total_wall_micros: u64,
    cells: Vec<CellRecordV2>,
}

/// A schema-v2 cell record: five analytic plus three sim metrics, no
/// contention axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CellRecordV2 {
    id: String,
    dataflow: String,
    dataset: String,
    model: String,
    design: String,
    schedule: String,
    speedup: f64,
    baseline_cycles: f64,
    adagp_cycles: f64,
    baseline_energy_j: f64,
    adagp_energy_j: f64,
    sim_cycles: f64,
    pe_utilization: f64,
    overlap_efficiency: f64,
    wall_micros: u64,
}

/// The PR 3 (schema v1) run record shape — loaded for backward
/// compatibility, never written.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RunRecordV1 {
    schema: u32,
    grid: String,
    total_wall_micros: u64,
    cells: Vec<CellRecordV1>,
}

/// A schema-v1 cell record: the five analytic metrics only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CellRecordV1 {
    id: String,
    dataflow: String,
    dataset: String,
    model: String,
    design: String,
    schedule: String,
    speedup: f64,
    baseline_cycles: f64,
    adagp_cycles: f64,
    baseline_energy_j: f64,
    adagp_energy_j: f64,
    wall_micros: u64,
}

impl RunRecord {
    /// Builds the JSON record of a completed run.
    pub fn from_run(run: &SweepRun) -> RunRecord {
        RunRecord {
            schema: RUN_SCHEMA_VERSION,
            grid: run.grid.clone(),
            total_wall_micros: run.total_wall_micros,
            cells: run
                .cells
                .iter()
                .map(|c| CellRecord {
                    id: c.spec.id.clone(),
                    dataflow: c.spec.dataflow.name().to_string(),
                    dataset: c.spec.dataset.name().to_string(),
                    model: c.spec.model.name().to_string(),
                    design: c.spec.design.name().to_string(),
                    schedule: c.spec.schedule.name().to_string(),
                    dram_bw: c.spec.dram_bw_name(),
                    buffer_words: c.spec.buffer_words_name(),
                    speedup: c.metrics.speedup,
                    baseline_cycles: c.metrics.baseline_cycles,
                    adagp_cycles: c.metrics.adagp_cycles,
                    baseline_energy_j: c.metrics.baseline_energy_j,
                    adagp_energy_j: c.metrics.adagp_energy_j,
                    sim_cycles: c.metrics.sim_cycles,
                    pe_utilization: c.metrics.pe_utilization,
                    overlap_efficiency: c.metrics.overlap_efficiency,
                    spill_cycles: c.metrics.spill_cycles,
                    dram_stall_frac: c.metrics.dram_stall_frac,
                    knee_words_per_cycle: c.metrics.knee_words_per_cycle,
                    wall_micros: c.wall_micros,
                })
                .collect(),
        }
    }

    /// Builds a current-schema record from stored cells — the serve-side
    /// cache flush format. Timing fields are zeroed: a cache snapshot has
    /// no meaningful wall clock, and zeroing keeps repeated
    /// flush → reload → flush cycles byte-identical. Metrics pass through
    /// at full precision (the vendored JSON float writer is
    /// shortest-round-trip, so reloading recovers the exact bits).
    pub fn from_stored_cells(grid: &str, cells: &[StoredCell]) -> RunRecord {
        RunRecord {
            schema: RUN_SCHEMA_VERSION,
            grid: grid.to_string(),
            total_wall_micros: 0,
            cells: cells
                .iter()
                .map(|c| CellRecord {
                    id: c.id.clone(),
                    dataflow: c.axes[0].clone(),
                    dataset: c.axes[1].clone(),
                    model: c.axes[2].clone(),
                    design: c.axes[3].clone(),
                    schedule: c.axes[4].clone(),
                    dram_bw: c.axes[5].clone(),
                    buffer_words: c.axes[6].clone(),
                    speedup: c.metrics[0],
                    baseline_cycles: c.metrics[1],
                    adagp_cycles: c.metrics[2],
                    baseline_energy_j: c.metrics[3],
                    adagp_energy_j: c.metrics[4],
                    sim_cycles: c.metrics[5],
                    pe_utilization: c.metrics[6],
                    overlap_efficiency: c.metrics[7],
                    spill_cycles: c.metrics[8],
                    dram_stall_frac: c.metrics[9],
                    knee_words_per_cycle: c.metrics[10],
                    wall_micros: 0,
                })
                .collect(),
        }
    }
}

/// Flattens typed cell metrics into [`METRICS`]-column order — the array
/// view [`StoredCell`] and the serve-side cell cache share.
pub fn metrics_to_array(m: &CellMetrics) -> [f64; METRICS.len()] {
    [
        m.speedup,
        m.baseline_cycles,
        m.adagp_cycles,
        m.baseline_energy_j,
        m.adagp_energy_j,
        m.sim_cycles,
        m.pe_utilization,
        m.overlap_efficiency,
        m.spill_cycles,
        m.dram_stall_frac,
        m.knee_words_per_cycle,
    ]
}

/// Rebuilds typed cell metrics from a [`METRICS`]-ordered array.
pub fn metrics_from_array(a: &[f64; METRICS.len()]) -> CellMetrics {
    CellMetrics {
        speedup: a[0],
        baseline_cycles: a[1],
        adagp_cycles: a[2],
        baseline_energy_j: a[3],
        adagp_energy_j: a[4],
        sim_cycles: a[5],
        pe_utilization: a[6],
        overlap_efficiency: a[7],
        spill_cycles: a[8],
        dram_stall_frac: a[9],
        knee_words_per_cycle: a[10],
    }
}

/// Formats a metric float exactly as the CSV stores it.
pub fn csv_float(v: f64) -> String {
    format!("{v:.prec$}", prec = CSV_FLOAT_DECIMALS)
}

/// Renders a run as byte-stable CSV (header + one row per cell).
pub fn to_csv_string(run: &SweepRun) -> String {
    let mut out = String::new();
    out.push_str(&CSV_HEADER.join(","));
    out.push('\n');
    for c in &run.cells {
        let m = c.metrics;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.spec.id,
            c.spec.dataflow.name(),
            c.spec.dataset.name(),
            c.spec.model.name(),
            c.spec.design.name(),
            c.spec.schedule.name(),
            c.spec.dram_bw_name(),
            c.spec.buffer_words_name(),
            csv_float(m.speedup),
            csv_float(m.baseline_cycles),
            csv_float(m.adagp_cycles),
            csv_float(m.baseline_energy_j),
            csv_float(m.adagp_energy_j),
            csv_float(m.sim_cycles),
            csv_float(m.pe_utilization),
            csv_float(m.overlap_efficiency),
            csv_float(m.spill_cycles),
            csv_float(m.dram_stall_frac),
            csv_float(m.knee_words_per_cycle),
        ));
    }
    out
}

/// Renders a run as a pretty-printed JSON record.
pub fn to_json_string(run: &SweepRun) -> String {
    let mut s = serde::json::to_string_pretty(&RunRecord::from_run(run));
    s.push('\n');
    s
}

/// Writes the CSV form of `run` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(path: &Path, run: &SweepRun) -> std::io::Result<()> {
    std::fs::write(path, to_csv_string(run))
}

/// Writes the JSON record of `run` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_json(path: &Path, run: &SweepRun) -> std::io::Result<()> {
    std::fs::write(path, to_json_string(run))
}

/// One stored cell: identity, axis values, metric values in
/// [`METRICS`] order.
///
/// The serde derives double as the shard-log record format: one compact
/// JSON object per log line (`{"id": …, "axes": […], "metrics": […]}`),
/// full-precision floats (the shortest-round-trip writer recovers the
/// exact bits on reload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCell {
    /// Content-derived cell ID.
    pub id: String,
    /// Axis display values: dataflow, dataset, model, design, schedule,
    /// dram_bw, buffer_words (the last two read `default` for cells
    /// without overrides — including every cell of a legacy file).
    pub axes: [String; 7],
    /// Metric values, aligned with [`METRICS`].
    pub metrics: [f64; METRICS.len()],
}

impl StoredCell {
    /// Builds the stored view of one freshly evaluated cell — the shape
    /// the serve-side cell cache keeps and flushes.
    pub fn from_evaluation(spec: &CellSpec, metrics: &CellMetrics) -> StoredCell {
        StoredCell {
            id: spec.id.clone(),
            axes: [
                spec.dataflow.name().to_string(),
                spec.dataset.name().to_string(),
                spec.model.name().to_string(),
                spec.design.name().to_string(),
                spec.schedule.name().to_string(),
                spec.dram_bw_name(),
                spec.buffer_words_name(),
            ],
            metrics: metrics_to_array(metrics),
        }
    }

    /// The cell's readable key, matching
    /// [`CellSpec::key`](crate::grid::CellSpec::key):
    /// `dataflow/dataset/model/design/schedule[/bw<n>][/buf<n>]` — the
    /// contention segments appear only for overriding cells.
    pub fn key(&self) -> String {
        let mut key = self.axes[..5].join("/");
        if self.axes[5] != "default" {
            key.push_str(&format!("/bw{}", self.axes[5]));
        }
        if self.axes[6] != "default" {
            key.push_str(&format!("/buf{}", self.axes[6]));
        }
        key
    }
}

/// Renders stored cells as the byte-stable CSV form — identical, byte
/// for byte, to [`to_csv_string`] over the run the cells came from:
/// the quantization to [`CSV_FLOAT_DECIMALS`] decimals happens here, at
/// format time, from the full-precision metrics the cells carry.
pub fn stored_csv_string(cells: &[StoredCell]) -> String {
    let mut out = String::new();
    out.push_str(&CSV_HEADER.join(","));
    out.push('\n');
    for c in cells {
        out.push_str(&stored_csv_row(c));
    }
    out
}

/// One CSV row (newline-terminated) of a stored cell.
fn stored_csv_row(c: &StoredCell) -> String {
    let mut row = String::new();
    row.push_str(&c.id);
    for axis in &c.axes {
        row.push(',');
        row.push_str(axis);
    }
    for &m in &c.metrics {
        row.push(',');
        row.push_str(&csv_float(m));
    }
    row.push('\n');
    row
}

/// Renders stored cells as the full-precision, zero-timing JSON run
/// record (the [`RunRecord::from_stored_cells`] form, trailing newline
/// included) — the byte-stable format the shard-log merge and the serve
/// cache snapshot share.
pub fn stored_json_string(grid: &str, cells: &[StoredCell]) -> String {
    let mut text = serde::json::to_string_pretty(&RunRecord::from_stored_cells(grid, cells));
    text.push('\n');
    text
}

/// Bounded-memory CSV writer: header up front, one row per
/// [`write_cell`](StreamingCsvWriter::write_cell), rows never buffered.
/// Writes to `<path>.tmp` and renames into place on
/// [`finish`](StreamingCsvWriter::finish), so a crash mid-write never
/// leaves a truncated file at the destination. The finished bytes are
/// identical to [`stored_csv_string`] over the same cells (asserted in
/// tests), so streaming and whole-file outputs stay interchangeable.
#[derive(Debug)]
pub struct StreamingCsvWriter {
    out: std::io::BufWriter<std::fs::File>,
    tmp: std::path::PathBuf,
    path: std::path::PathBuf,
}

/// The temp-file sibling a streaming writer stages its output in.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "out".into());
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

impl StreamingCsvWriter {
    /// Opens the temp file and writes the header.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the temp file.
    pub fn create(path: &Path) -> std::io::Result<StreamingCsvWriter> {
        use std::io::Write;
        let tmp = tmp_sibling(path);
        let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        out.write_all(CSV_HEADER.join(",").as_bytes())?;
        out.write_all(b"\n")?;
        Ok(StreamingCsvWriter {
            out,
            tmp,
            path: path.to_path_buf(),
        })
    }

    /// Appends one cell row.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write.
    pub fn write_cell(&mut self, cell: &StoredCell) -> std::io::Result<()> {
        use std::io::Write;
        self.out.write_all(stored_csv_row(cell).as_bytes())
    }

    /// Flushes, fsyncs and atomically renames the temp file into place.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the flush, sync or rename.
    pub fn finish(mut self) -> std::io::Result<()> {
        use std::io::Write;
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        std::fs::rename(&self.tmp, &self.path)
    }
}

impl Drop for StreamingCsvWriter {
    fn drop(&mut self) {
        // An unfinished writer leaves no debris: the destination was
        // never touched, and the temp file is best-effort removed.
        let _ = std::fs::remove_file(&self.tmp);
    }
}

/// Bounded-memory JSON run-record writer: the [`stored_json_string`]
/// bytes, produced one cell at a time (each cell is serialized and
/// re-indented individually; the whole record is never held in memory).
/// Same temp-file + atomic-rename discipline as [`StreamingCsvWriter`].
#[derive(Debug)]
pub struct StreamingJsonWriter {
    out: std::io::BufWriter<std::fs::File>,
    tmp: std::path::PathBuf,
    path: std::path::PathBuf,
    cells: usize,
}

impl StreamingJsonWriter {
    /// Opens the temp file and writes the record prelude (schema, grid
    /// name, zeroed total wall time, the opening of the cell array).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the temp file.
    pub fn create(path: &Path, grid: &str) -> std::io::Result<StreamingJsonWriter> {
        use std::io::Write;
        let tmp = tmp_sibling(path);
        let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        // The prelude is carved out of the pretty form of an empty
        // record, so its bytes (grid-name escaping included) can never
        // drift from the whole-string writer.
        let empty = serde::json::to_string_pretty(&RunRecord::from_stored_cells(grid, &[]));
        let open = empty
            .rfind("[]")
            .expect("empty record renders an empty cell array");
        out.write_all(&empty.as_bytes()[..open + 1])?;
        Ok(StreamingJsonWriter {
            out,
            tmp,
            path: path.to_path_buf(),
            cells: 0,
        })
    }

    /// Appends one cell record object.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write.
    pub fn write_cell(&mut self, cell: &StoredCell) -> std::io::Result<()> {
        use std::io::Write;
        if self.cells > 0 {
            self.out.write_all(b",")?;
        }
        self.out.write_all(b"\n")?;
        let record = RunRecord::from_stored_cells("", std::slice::from_ref(cell));
        let pretty = serde::json::to_string_pretty(&record.cells[0]);
        // The cell object sits at array-item depth: four leading spaces
        // on every line (two levels of the writer's two-space indent).
        let mut first = true;
        for line in pretty.lines() {
            if !first {
                self.out.write_all(b"\n")?;
            }
            first = false;
            self.out.write_all(b"    ")?;
            self.out.write_all(line.as_bytes())?;
        }
        self.cells += 1;
        Ok(())
    }

    /// Closes the array and record, fsyncs and atomically renames the
    /// temp file into place.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write, flush, sync or rename.
    pub fn finish(mut self) -> std::io::Result<()> {
        use std::io::Write;
        if self.cells > 0 {
            self.out.write_all(b"\n  ")?;
        }
        self.out.write_all(b"]\n}\n")?;
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        std::fs::rename(&self.tmp, &self.path)
    }
}

impl Drop for StreamingJsonWriter {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.tmp);
    }
}

/// Number of metric columns a schema-v1 (PR 3) CSV carried — the first
/// five of [`METRICS`]; later schemas append, so older files parse as a
/// prefix.
pub const V1_METRIC_COUNT: usize = 5;

/// Number of metric columns a schema-v2 (PR 4) CSV carried — the first
/// eight of [`METRICS`].
pub const V2_METRIC_COUNT: usize = 8;

/// A format-agnostic stored run: what the diff engine consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRun {
    /// Stored cells, in file order.
    pub cells: Vec<StoredCell>,
    /// How many leading entries of each cell's `metrics` the source file
    /// actually carried ([`METRICS`]`.len()` for current files,
    /// [`V1_METRIC_COUNT`] for legacy ones; the rest are zero-filled).
    /// The diff engine only compares metrics both runs carry.
    pub metric_count: usize,
}

impl Default for StoredRun {
    fn default() -> Self {
        StoredRun {
            cells: Vec::new(),
            metric_count: METRICS.len(),
        }
    }
}

impl StoredRun {
    /// Views an in-memory run as a stored run (quantized exactly like the
    /// CSV would be, so in-memory and on-disk diffs agree).
    pub fn from_run(run: &SweepRun) -> StoredRun {
        Self::from_csv_str(&to_csv_string(run)).expect("self-generated CSV parses")
    }

    /// Loads a stored run from `path`, dispatching on the extension
    /// (`.json` → JSON record, anything else → CSV).
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: &Path) -> Result<StoredRun, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let parsed = if path.extension().is_some_and(|e| e == "json") {
            Self::from_json_str(&text)
        } else {
            Self::from_csv_str(&text)
        };
        parsed.map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Parses the CSV form. Accepts the current header, the schema-v2
    /// (PR 4) 14-column header and the schema-v1 (PR 3) 11-column header
    /// — legacy metrics are a prefix of today's and legacy cells carry no
    /// contention columns (loaded as `default`), so old committed runs
    /// stay diffable against fresh ones.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_csv_str(text: &str) -> Result<StoredRun, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let expected = CSV_HEADER.join(",");
        let legacy_header = |metrics: usize| {
            let mut cols: Vec<&str> = CSV_HEADER[..LEGACY_META_COLUMNS].to_vec();
            cols.extend(METRICS[..metrics].iter().map(|m| m.name));
            cols.join(",")
        };
        let (meta_columns, metric_count) = if header == expected {
            (CSV_META_COLUMNS, METRICS.len())
        } else if header == legacy_header(V2_METRIC_COUNT) {
            (LEGACY_META_COLUMNS, V2_METRIC_COUNT)
        } else if header == legacy_header(V1_METRIC_COUNT) {
            (LEGACY_META_COLUMNS, V1_METRIC_COUNT)
        } else {
            return Err(format!(
                "unexpected CSV header `{header}` (expected `{expected}`)"
            ));
        };
        let columns = meta_columns + metric_count;
        let mut cells = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != columns {
                return Err(format!(
                    "line {}: {} fields (expected {columns})",
                    lineno + 2,
                    fields.len(),
                ));
            }
            let mut metrics = [0.0f64; METRICS.len()];
            for (i, m) in metrics.iter_mut().take(metric_count).enumerate() {
                let raw = fields[meta_columns + i];
                *m = raw.parse::<f64>().map_err(|_| {
                    format!("line {}: bad {} value `{raw}`", lineno + 2, METRICS[i].name)
                })?;
            }
            let contention = |idx: usize| {
                if meta_columns == CSV_META_COLUMNS {
                    fields[idx].to_string()
                } else {
                    "default".to_string()
                }
            };
            cells.push(StoredCell {
                id: fields[0].to_string(),
                axes: [
                    fields[1].to_string(),
                    fields[2].to_string(),
                    fields[3].to_string(),
                    fields[4].to_string(),
                    fields[5].to_string(),
                    contention(6),
                    contention(7),
                ],
                metrics,
            });
        }
        Ok(StoredRun {
            cells,
            metric_count,
        })
    }

    /// Parses the JSON record form — the current schema or the v2 (PR 4)
    /// / v1 (PR 3) ones, whose metrics are a prefix of today's.
    ///
    /// # Errors
    ///
    /// Returns a description of the syntax or schema mismatch.
    pub fn from_json_str(text: &str) -> Result<StoredRun, String> {
        let value = serde::json::parse_value(text).map_err(|e| e.to_string())?;
        let schema = match &value {
            serde::Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == "schema")
                .and_then(|(_, v)| u32::from_value(v).ok()),
            _ => None,
        }
        .ok_or("run record has no schema field")?;
        let default = || "default".to_string();
        match schema {
            RUN_SCHEMA_VERSION => {
                let record = RunRecord::from_value(&value).map_err(|e| e.to_string())?;
                Ok(StoredRun {
                    cells: record
                        .cells
                        .into_iter()
                        .map(|c| StoredCell {
                            id: c.id,
                            axes: [
                                c.dataflow,
                                c.dataset,
                                c.model,
                                c.design,
                                c.schedule,
                                c.dram_bw,
                                c.buffer_words,
                            ],
                            metrics: [
                                c.speedup,
                                c.baseline_cycles,
                                c.adagp_cycles,
                                c.baseline_energy_j,
                                c.adagp_energy_j,
                                c.sim_cycles,
                                c.pe_utilization,
                                c.overlap_efficiency,
                                c.spill_cycles,
                                c.dram_stall_frac,
                                c.knee_words_per_cycle,
                            ],
                        })
                        .collect(),
                    metric_count: METRICS.len(),
                })
            }
            2 => {
                let record = RunRecordV2::from_value(&value).map_err(|e| e.to_string())?;
                Ok(StoredRun {
                    cells: record
                        .cells
                        .into_iter()
                        .map(|c| StoredCell {
                            id: c.id,
                            axes: [
                                c.dataflow,
                                c.dataset,
                                c.model,
                                c.design,
                                c.schedule,
                                default(),
                                default(),
                            ],
                            metrics: [
                                c.speedup,
                                c.baseline_cycles,
                                c.adagp_cycles,
                                c.baseline_energy_j,
                                c.adagp_energy_j,
                                c.sim_cycles,
                                c.pe_utilization,
                                c.overlap_efficiency,
                                0.0,
                                0.0,
                                0.0,
                            ],
                        })
                        .collect(),
                    metric_count: V2_METRIC_COUNT,
                })
            }
            1 => {
                let record = RunRecordV1::from_value(&value).map_err(|e| e.to_string())?;
                Ok(StoredRun {
                    cells: record
                        .cells
                        .into_iter()
                        .map(|c| StoredCell {
                            id: c.id,
                            axes: [
                                c.dataflow,
                                c.dataset,
                                c.model,
                                c.design,
                                c.schedule,
                                default(),
                                default(),
                            ],
                            metrics: [
                                c.speedup,
                                c.baseline_cycles,
                                c.adagp_cycles,
                                c.baseline_energy_j,
                                c.adagp_energy_j,
                                0.0,
                                0.0,
                                0.0,
                                0.0,
                                0.0,
                                0.0,
                            ],
                        })
                        .collect(),
                    metric_count: V1_METRIC_COUNT,
                })
            }
            other => Err(format!(
                "unsupported run schema {other} (expected {RUN_SCHEMA_VERSION}, 2 or 1)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{DatasetScale, GridSpec, PhaseSchedule};
    use crate::runner::run_grid;
    use adagp_accel::{AdaGpDesign, Dataflow};
    use adagp_nn::models::CnnModel;

    fn small_run() -> SweepRun {
        run_grid(&GridSpec {
            name: "store-test".to_string(),
            models: vec![CnnModel::Vgg13],
            datasets: vec![DatasetScale::Cifar10],
            designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
            dataflows: vec![Dataflow::WeightStationary],
            schedules: vec![PhaseSchedule::Paper],
            bandwidths: vec![None],
            buffers: vec![None],
        })
    }

    /// Rewrites a current CSV into its legacy form: drops the contention
    /// meta columns and keeps the first `metric_count` metric columns.
    fn legacy_csv(current: &str, metric_count: usize) -> String {
        current
            .lines()
            .map(|line| {
                let fields: Vec<&str> = line.split(',').collect();
                let mut kept: Vec<&str> = fields[..LEGACY_META_COLUMNS].to_vec();
                kept.extend(&fields[CSV_META_COLUMNS..CSV_META_COLUMNS + metric_count]);
                kept.join(",") + "\n"
            })
            .collect()
    }

    /// Rewrites a current JSON record into a legacy schema: patches the
    /// schema number and strips the named per-cell fields.
    fn legacy_json(current: &str, schema: u32, dropped: &[&str]) -> String {
        let mut text = current.replace(
            &format!("\"schema\": {RUN_SCHEMA_VERSION}"),
            &format!("\"schema\": {schema}"),
        );
        for key in dropped {
            let mut out = String::new();
            for line in text.lines() {
                if !line.contains(&format!("\"{key}\"")) {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            text = out;
        }
        text
    }

    #[test]
    fn csv_is_byte_stable_across_runs() {
        // Same grid, two executions (different wall times!) → same bytes.
        assert_eq!(to_csv_string(&small_run()), to_csv_string(&small_run()));
    }

    #[test]
    fn csv_round_trips_through_stored_run() {
        let run = small_run();
        let stored = StoredRun::from_csv_str(&to_csv_string(&run)).unwrap();
        assert_eq!(stored.cells.len(), run.cells.len());
        for (s, c) in stored.cells.iter().zip(&run.cells) {
            assert_eq!(s.id, c.spec.id);
            assert_eq!(s.key(), c.spec.key());
            // CSV quantizes to CSV_FLOAT_DECIMALS decimals.
            assert!((s.metrics[0] - c.metrics.speedup).abs() < 1e-6);
        }
    }

    #[test]
    fn json_round_trips_at_full_precision() {
        let run = small_run();
        let record = RunRecord::from_run(&run);
        let back: RunRecord = serde::json::from_str(&to_json_string(&run)).unwrap();
        assert_eq!(back, record);
        // Bit-exact metrics (no quantization in JSON).
        assert_eq!(
            back.cells[0].speedup.to_bits(),
            run.cells[0].metrics.speedup.to_bits()
        );
        let stored = StoredRun::from_json_str(&to_json_string(&run)).unwrap();
        assert_eq!(
            stored.cells[0].metrics[0].to_bits(),
            run.cells[0].metrics.speedup.to_bits()
        );
    }

    #[test]
    fn load_dispatches_on_extension() {
        let run = small_run();
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("adagp-sweep-{}.csv", std::process::id()));
        let json = dir.join(format!("adagp-sweep-{}.json", std::process::id()));
        write_csv(&csv, &run).unwrap();
        write_json(&json, &run).unwrap();
        let from_csv = StoredRun::load(&csv).unwrap();
        let from_json = StoredRun::load(&json).unwrap();
        assert_eq!(from_csv.cells.len(), from_json.cells.len());
        assert_eq!(from_csv.cells[0].id, from_json.cells[0].id);
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn malformed_csv_is_rejected_with_context() {
        assert!(StoredRun::from_csv_str("").is_err());
        let bad_header = "id,nope\nx,y";
        assert!(StoredRun::from_csv_str(bad_header)
            .unwrap_err()
            .contains("header"));
        let good = to_csv_string(&small_run());
        let truncated = good.replace(",paper,", ",paper");
        let err = StoredRun::from_csv_str(&truncated).unwrap_err();
        assert!(err.contains("fields"), "{err}");
    }

    #[test]
    fn legacy_v2_files_still_load_and_diff_against_fresh_v3_runs() {
        // A PR 4-era CSV (14 columns: no contention axes, no spill/stall/
        // knee metrics) and JSON (schema 2) must load, report the smaller
        // metric count, and diff cleanly against a fresh v3 run over the
        // shared eight metrics.
        let run = small_run();
        let v2_csv = legacy_csv(&to_csv_string(&run), V2_METRIC_COUNT);
        let legacy = StoredRun::from_csv_str(&v2_csv).expect("v2 CSV parses");
        assert_eq!(legacy.metric_count, V2_METRIC_COUNT);
        assert_eq!(legacy.cells.len(), run.cells.len());
        // Legacy cells read `default` contention axes, so their keys (and
        // content-derived IDs) line up with fresh default-knob cells.
        assert_eq!(legacy.cells[0].key(), run.cells[0].spec.key());

        let fresh = StoredRun::from_run(&run);
        assert_eq!(fresh.metric_count, METRICS.len());
        let report = crate::diff::diff_runs(&legacy, &fresh, &crate::diff::DiffConfig::default());
        assert_eq!(report.matched_cells, run.cells.len());
        assert!(!report.has_regressions(), "{}", report.render());
        assert!(report.improvements.is_empty(), "{}", report.render());

        let v2_json = legacy_json(
            &to_json_string(&run),
            2,
            &[
                "dram_bw",
                "buffer_words",
                "spill_cycles",
                "dram_stall_frac",
                "knee_words_per_cycle",
            ],
        );
        let legacy_json_run = StoredRun::from_json_str(&v2_json).expect("v2 JSON parses");
        assert_eq!(legacy_json_run.metric_count, V2_METRIC_COUNT);
        // JSON keeps full precision; sim metrics are present in v2.
        assert_eq!(
            legacy_json_run.cells[0].metrics[5].to_bits(),
            run.cells[0].metrics.sim_cycles.to_bits()
        );
        let report = crate::diff::diff_runs(
            &legacy_json_run,
            &fresh,
            &crate::diff::DiffConfig::default(),
        );
        assert_eq!(report.matched_cells, run.cells.len());
        assert!(!report.has_regressions(), "{}", report.render());
    }

    #[test]
    fn legacy_v1_files_still_load_and_diff_against_fresh_runs() {
        // A PR 3-era CSV (11 columns, no sim metrics) and JSON (schema 1)
        // must load, report the smaller metric count, and diff cleanly
        // against a fresh run over the shared analytic metrics.
        let run = small_run();
        let v1_csv = legacy_csv(&to_csv_string(&run), V1_METRIC_COUNT);
        let legacy = StoredRun::from_csv_str(&v1_csv).expect("v1 CSV parses");
        assert_eq!(legacy.metric_count, V1_METRIC_COUNT);
        assert_eq!(legacy.cells.len(), run.cells.len());

        let fresh = StoredRun::from_run(&run);
        assert_eq!(fresh.metric_count, METRICS.len());
        let report = crate::diff::diff_runs(&legacy, &fresh, &crate::diff::DiffConfig::default());
        assert_eq!(report.matched_cells, run.cells.len());
        assert!(!report.has_regressions(), "{}", report.render());
        assert!(report.improvements.is_empty(), "{}", report.render());

        let v1_json = legacy_json(
            &to_json_string(&run),
            1,
            &[
                "dram_bw",
                "buffer_words",
                "sim_cycles",
                "pe_utilization",
                "overlap_efficiency",
                "spill_cycles",
                "dram_stall_frac",
                "knee_words_per_cycle",
            ],
        );
        let legacy_json_run = StoredRun::from_json_str(&v1_json).expect("v1 JSON parses");
        assert_eq!(legacy_json_run.metric_count, V1_METRIC_COUNT);
        // JSON keeps full precision; the fresh view is CSV-quantized.
        assert_eq!(
            legacy_json_run.cells[0].metrics[0].to_bits(),
            run.cells[0].metrics.speedup.to_bits()
        );
        // Unknown future schemas still fail loudly.
        assert!(StoredRun::from_json_str(
            &to_json_string(&run).replace("\"schema\": 3", "\"schema\": 9")
        )
        .unwrap_err()
        .contains("unsupported run schema 9"));
    }

    #[test]
    fn metric_array_round_trips_and_matches_stored_layout() {
        let run = small_run();
        let cell = &run.cells[0];
        let arr = metrics_to_array(&cell.metrics);
        assert_eq!(metrics_from_array(&arr), cell.metrics);
        // The array layout is exactly the stored/CSV column order.
        let stored = StoredCell::from_evaluation(&cell.spec, &cell.metrics);
        assert_eq!(stored.metrics, arr);
        assert_eq!(stored.id, cell.spec.id);
        assert_eq!(stored.key(), cell.spec.key());
        // And exactly what RunRecord::from_run writes per cell.
        let record = RunRecord::from_run(&run);
        assert_eq!(record.cells[0].speedup.to_bits(), arr[0].to_bits());
        assert_eq!(
            record.cells[0].knee_words_per_cycle.to_bits(),
            arr[10].to_bits()
        );
    }

    #[test]
    fn stored_cell_snapshot_round_trips_byte_stable() {
        // The serve-cache flush path: evaluated cells → RunRecord JSON →
        // StoredRun → RunRecord JSON must be byte-identical, including
        // huge cycle counts whose CSV quantization would not be.
        let run = small_run();
        let stored: Vec<StoredCell> = run
            .cells
            .iter()
            .map(|c| StoredCell::from_evaluation(&c.spec, &c.metrics))
            .collect();
        let record = RunRecord::from_stored_cells("cache", &stored);
        let text = serde::json::to_string_pretty(&record);
        let reloaded = StoredRun::from_json_str(&text).unwrap();
        assert_eq!(reloaded.metric_count, METRICS.len());
        let again = RunRecord::from_stored_cells("cache", &reloaded.cells);
        assert_eq!(serde::json::to_string_pretty(&again), text);
        for (a, b) in stored.iter().zip(&reloaded.cells) {
            for (x, y) in a.metrics.iter().zip(&b.metrics) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn stored_csv_matches_run_csv_byte_for_byte() {
        let run = small_run();
        let stored: Vec<StoredCell> = run
            .cells
            .iter()
            .map(|c| StoredCell::from_evaluation(&c.spec, &c.metrics))
            .collect();
        assert_eq!(stored_csv_string(&stored), to_csv_string(&run));
    }

    #[test]
    fn streaming_writers_reproduce_whole_file_bytes_exactly() {
        let run = small_run();
        let stored: Vec<StoredCell> = run
            .cells
            .iter()
            .map(|c| StoredCell::from_evaluation(&c.spec, &c.metrics))
            .collect();
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        // Non-trivial grid name: exercises JSON string escaping in the
        // carved prelude.
        for (label, cells) in [("all", stored.as_slice()), ("none", &[])] {
            let csv_path = dir.join(format!("adagp-stream-{pid}-{label}.csv"));
            let json_path = dir.join(format!("adagp-stream-{pid}-{label}.json"));
            let mut cw = StreamingCsvWriter::create(&csv_path).unwrap();
            let mut jw = StreamingJsonWriter::create(&json_path, "grid \"x\"").unwrap();
            for c in cells {
                cw.write_cell(c).unwrap();
                jw.write_cell(c).unwrap();
            }
            cw.finish().unwrap();
            jw.finish().unwrap();
            assert_eq!(
                std::fs::read_to_string(&csv_path).unwrap(),
                stored_csv_string(cells),
                "CSV ({label})"
            );
            assert_eq!(
                std::fs::read_to_string(&json_path).unwrap(),
                stored_json_string("grid \"x\"", cells),
                "JSON ({label})"
            );
            std::fs::remove_file(&csv_path).ok();
            std::fs::remove_file(&json_path).ok();
        }
    }

    #[test]
    fn unfinished_streaming_writer_leaves_no_file_behind() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("adagp-stream-drop-{}.csv", std::process::id()));
        {
            let _w = StreamingCsvWriter::create(&path).unwrap();
            // Dropped without finish(): a simulated crash mid-write.
        }
        assert!(!path.exists(), "destination must not exist");
        assert!(
            !tmp_sibling(&path).exists(),
            "temp staging file must be cleaned up"
        );
    }

    #[test]
    fn csv_float_is_fixed_precision() {
        assert_eq!(csv_float(1.5), "1.500000");
        assert_eq!(csv_float(0.1), "0.100000");
        // Shortest-round-trip Display would print 1234567890123.4568…-style
        // noise; fixed precision keeps it stable.
        assert_eq!(csv_float(1e12), "1000000000000.000000");
    }
}
