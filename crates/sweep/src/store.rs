//! Persisting sweep runs: byte-stable CSV and full-fidelity JSON.
//!
//! Two formats, two jobs:
//!
//! * **CSV** — the diffable artifact. Metric floats are formatted at a
//!   fixed precision ([`CSV_FLOAT_DECIMALS`] decimals, never
//!   shortest-round-trip `Display`) and timing columns are excluded, so
//!   two runs of the same code produce byte-identical files — `git diff`
//!   on a committed run file means something changed in the *model*, not
//!   in float formatting or scheduling noise.
//! * **JSON** — the run record. Full-precision metrics plus per-cell and
//!   total wall time, serialized through the activated vendored serde
//!   derives on [`RunRecord`]/[`CellRecord`].
//!
//! [`StoredRun`] is the format-agnostic view the [`diff`](crate::diff)
//! engine consumes; it loads from either format (by extension) or
//! directly from an in-memory [`SweepRun`].

use crate::runner::SweepRun;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Fixed decimal places for every metric float in CSV output.
pub const CSV_FLOAT_DECIMALS: usize = 6;

/// Schema version embedded in JSON run records.
pub const RUN_SCHEMA_VERSION: u32 = 1;

/// The CSV column layout: identity, axis values, then the metrics of
/// [`METRICS`] in order.
pub const CSV_HEADER: [&str; 11] = [
    "id",
    "dataflow",
    "dataset",
    "model",
    "design",
    "schedule",
    "speedup",
    "baseline_cycles",
    "adagp_cycles",
    "baseline_energy_j",
    "adagp_energy_j",
];

/// Number of leading non-metric (identity + axis) columns in the CSV.
pub const CSV_META_COLUMNS: usize = 6;

/// One metric column: its name and which direction is an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metric {
    /// Column name (matches [`CSV_HEADER`]).
    pub name: &'static str,
    /// `true` if larger values are better (speed-up); `false` if smaller
    /// values are better (cycles, energy).
    pub higher_is_better: bool,
}

/// The five metric columns every cell produces, in CSV order.
pub const METRICS: [Metric; 5] = [
    Metric {
        name: "speedup",
        higher_is_better: true,
    },
    Metric {
        name: "baseline_cycles",
        higher_is_better: false,
    },
    Metric {
        name: "adagp_cycles",
        higher_is_better: false,
    },
    Metric {
        name: "baseline_energy_j",
        higher_is_better: false,
    },
    Metric {
        name: "adagp_energy_j",
        higher_is_better: false,
    },
];

/// JSON run record (schema, grid name, timing, cells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Record schema version ([`RUN_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Name of the grid that ran.
    pub grid: String,
    /// Total sweep wall time in microseconds.
    pub total_wall_micros: u64,
    /// Every cell, in expansion order.
    pub cells: Vec<CellRecord>,
}

/// JSON cell record: axis names as strings (stable display names), full
/// precision metrics, per-cell timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Content-derived cell ID.
    pub id: String,
    /// Dataflow display name.
    pub dataflow: String,
    /// Dataset display name.
    pub dataset: String,
    /// Model display name.
    pub model: String,
    /// Design display name.
    pub design: String,
    /// Schedule name.
    pub schedule: String,
    /// End-to-end speed-up.
    pub speedup: f64,
    /// Baseline training cycles.
    pub baseline_cycles: f64,
    /// ADA-GP training cycles.
    pub adagp_cycles: f64,
    /// Baseline memory energy (J).
    pub baseline_energy_j: f64,
    /// ADA-GP memory energy (J).
    pub adagp_energy_j: f64,
    /// Wall-clock microseconds for this cell.
    pub wall_micros: u64,
}

impl RunRecord {
    /// Builds the JSON record of a completed run.
    pub fn from_run(run: &SweepRun) -> RunRecord {
        RunRecord {
            schema: RUN_SCHEMA_VERSION,
            grid: run.grid.clone(),
            total_wall_micros: run.total_wall_micros,
            cells: run
                .cells
                .iter()
                .map(|c| CellRecord {
                    id: c.spec.id.clone(),
                    dataflow: c.spec.dataflow.name().to_string(),
                    dataset: c.spec.dataset.name().to_string(),
                    model: c.spec.model.name().to_string(),
                    design: c.spec.design.name().to_string(),
                    schedule: c.spec.schedule.name().to_string(),
                    speedup: c.metrics.speedup,
                    baseline_cycles: c.metrics.baseline_cycles,
                    adagp_cycles: c.metrics.adagp_cycles,
                    baseline_energy_j: c.metrics.baseline_energy_j,
                    adagp_energy_j: c.metrics.adagp_energy_j,
                    wall_micros: c.wall_micros,
                })
                .collect(),
        }
    }
}

/// Formats a metric float exactly as the CSV stores it.
pub fn csv_float(v: f64) -> String {
    format!("{v:.prec$}", prec = CSV_FLOAT_DECIMALS)
}

/// Renders a run as byte-stable CSV (header + one row per cell).
pub fn to_csv_string(run: &SweepRun) -> String {
    let mut out = String::new();
    out.push_str(&CSV_HEADER.join(","));
    out.push('\n');
    for c in &run.cells {
        let m = c.metrics;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            c.spec.id,
            c.spec.dataflow.name(),
            c.spec.dataset.name(),
            c.spec.model.name(),
            c.spec.design.name(),
            c.spec.schedule.name(),
            csv_float(m.speedup),
            csv_float(m.baseline_cycles),
            csv_float(m.adagp_cycles),
            csv_float(m.baseline_energy_j),
            csv_float(m.adagp_energy_j),
        ));
    }
    out
}

/// Renders a run as a pretty-printed JSON record.
pub fn to_json_string(run: &SweepRun) -> String {
    let mut s = serde::json::to_string_pretty(&RunRecord::from_run(run));
    s.push('\n');
    s
}

/// Writes the CSV form of `run` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(path: &Path, run: &SweepRun) -> std::io::Result<()> {
    std::fs::write(path, to_csv_string(run))
}

/// Writes the JSON record of `run` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_json(path: &Path, run: &SweepRun) -> std::io::Result<()> {
    std::fs::write(path, to_json_string(run))
}

/// One stored cell: identity, axis values, metric values in
/// [`METRICS`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCell {
    /// Content-derived cell ID.
    pub id: String,
    /// Axis display values: dataflow, dataset, model, design, schedule.
    pub axes: [String; 5],
    /// Metric values, aligned with [`METRICS`].
    pub metrics: [f64; 5],
}

impl StoredCell {
    /// `dataflow/dataset/model/design/schedule` — the cell's readable key.
    pub fn key(&self) -> String {
        self.axes.join("/")
    }
}

/// A format-agnostic stored run: what the diff engine consumes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoredRun {
    /// Stored cells, in file order.
    pub cells: Vec<StoredCell>,
}

impl StoredRun {
    /// Views an in-memory run as a stored run (quantized exactly like the
    /// CSV would be, so in-memory and on-disk diffs agree).
    pub fn from_run(run: &SweepRun) -> StoredRun {
        Self::from_csv_str(&to_csv_string(run)).expect("self-generated CSV parses")
    }

    /// Loads a stored run from `path`, dispatching on the extension
    /// (`.json` → JSON record, anything else → CSV).
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: &Path) -> Result<StoredRun, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let parsed = if path.extension().is_some_and(|e| e == "json") {
            Self::from_json_str(&text)
        } else {
            Self::from_csv_str(&text)
        };
        parsed.map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Parses the CSV form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_csv_str(text: &str) -> Result<StoredRun, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let expected = CSV_HEADER.join(",");
        if header != expected {
            return Err(format!(
                "unexpected CSV header `{header}` (expected `{expected}`)"
            ));
        }
        let mut cells = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != CSV_HEADER.len() {
                return Err(format!(
                    "line {}: {} fields (expected {})",
                    lineno + 2,
                    fields.len(),
                    CSV_HEADER.len()
                ));
            }
            let mut metrics = [0.0f64; METRICS.len()];
            for (i, m) in metrics.iter_mut().enumerate() {
                let raw = fields[CSV_META_COLUMNS + i];
                *m = raw.parse::<f64>().map_err(|_| {
                    format!("line {}: bad {} value `{raw}`", lineno + 2, METRICS[i].name)
                })?;
            }
            cells.push(StoredCell {
                id: fields[0].to_string(),
                axes: [
                    fields[1].to_string(),
                    fields[2].to_string(),
                    fields[3].to_string(),
                    fields[4].to_string(),
                    fields[5].to_string(),
                ],
                metrics,
            });
        }
        Ok(StoredRun { cells })
    }

    /// Parses the JSON record form.
    ///
    /// # Errors
    ///
    /// Returns a description of the syntax or schema mismatch.
    pub fn from_json_str(text: &str) -> Result<StoredRun, String> {
        let record: RunRecord = serde::json::from_str(text).map_err(|e| e.to_string())?;
        if record.schema != RUN_SCHEMA_VERSION {
            return Err(format!(
                "unsupported run schema {} (expected {RUN_SCHEMA_VERSION})",
                record.schema
            ));
        }
        Ok(StoredRun {
            cells: record
                .cells
                .into_iter()
                .map(|c| StoredCell {
                    id: c.id,
                    axes: [c.dataflow, c.dataset, c.model, c.design, c.schedule],
                    metrics: [
                        c.speedup,
                        c.baseline_cycles,
                        c.adagp_cycles,
                        c.baseline_energy_j,
                        c.adagp_energy_j,
                    ],
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{DatasetScale, GridSpec, PhaseSchedule};
    use crate::runner::run_grid;
    use adagp_accel::{AdaGpDesign, Dataflow};
    use adagp_nn::models::CnnModel;

    fn small_run() -> SweepRun {
        run_grid(&GridSpec {
            name: "store-test".to_string(),
            models: vec![CnnModel::Vgg13],
            datasets: vec![DatasetScale::Cifar10],
            designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
            dataflows: vec![Dataflow::WeightStationary],
            schedules: vec![PhaseSchedule::Paper],
        })
    }

    #[test]
    fn csv_is_byte_stable_across_runs() {
        // Same grid, two executions (different wall times!) → same bytes.
        assert_eq!(to_csv_string(&small_run()), to_csv_string(&small_run()));
    }

    #[test]
    fn csv_round_trips_through_stored_run() {
        let run = small_run();
        let stored = StoredRun::from_csv_str(&to_csv_string(&run)).unwrap();
        assert_eq!(stored.cells.len(), run.cells.len());
        for (s, c) in stored.cells.iter().zip(&run.cells) {
            assert_eq!(s.id, c.spec.id);
            assert_eq!(s.key(), c.spec.key());
            // CSV quantizes to CSV_FLOAT_DECIMALS decimals.
            assert!((s.metrics[0] - c.metrics.speedup).abs() < 1e-6);
        }
    }

    #[test]
    fn json_round_trips_at_full_precision() {
        let run = small_run();
        let record = RunRecord::from_run(&run);
        let back: RunRecord = serde::json::from_str(&to_json_string(&run)).unwrap();
        assert_eq!(back, record);
        // Bit-exact metrics (no quantization in JSON).
        assert_eq!(
            back.cells[0].speedup.to_bits(),
            run.cells[0].metrics.speedup.to_bits()
        );
        let stored = StoredRun::from_json_str(&to_json_string(&run)).unwrap();
        assert_eq!(
            stored.cells[0].metrics[0].to_bits(),
            run.cells[0].metrics.speedup.to_bits()
        );
    }

    #[test]
    fn load_dispatches_on_extension() {
        let run = small_run();
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("adagp-sweep-{}.csv", std::process::id()));
        let json = dir.join(format!("adagp-sweep-{}.json", std::process::id()));
        write_csv(&csv, &run).unwrap();
        write_json(&json, &run).unwrap();
        let from_csv = StoredRun::load(&csv).unwrap();
        let from_json = StoredRun::load(&json).unwrap();
        assert_eq!(from_csv.cells.len(), from_json.cells.len());
        assert_eq!(from_csv.cells[0].id, from_json.cells[0].id);
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn malformed_csv_is_rejected_with_context() {
        assert!(StoredRun::from_csv_str("").is_err());
        let bad_header = "id,nope\nx,y";
        assert!(StoredRun::from_csv_str(bad_header)
            .unwrap_err()
            .contains("header"));
        let good = to_csv_string(&small_run());
        let truncated = good.replace(",paper,", ",paper");
        let err = StoredRun::from_csv_str(&truncated).unwrap_err();
        assert!(err.contains("fields"), "{err}");
    }

    #[test]
    fn csv_float_is_fixed_precision() {
        assert_eq!(csv_float(1.5), "1.500000");
        assert_eq!(csv_float(0.1), "0.100000");
        // Shortest-round-trip Display would print 1234567890123.4568…-style
        // noise; fixed precision keeps it stable.
        assert_eq!(csv_float(1e12), "1000000000000.000000");
    }
}
