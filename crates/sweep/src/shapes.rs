//! The single, memoized source of paper-scale layer shapes.
//!
//! Before this module, every bench experiment re-derived its per-model
//! layer-shape tables independently (`speedup_rows`, `energy_rows`,
//! `pipeline_speedup_rows`, fig16 …) — the "re-derive per-model layer
//! shapes independently" note in ROADMAP. Now there is exactly one
//! derivation per (model, input scale), cached for the process lifetime
//! and shared by the sweep runner and the whole bench harness.

use adagp_nn::models::shapes::{model_shapes, InputScale, LayerShape};
use adagp_nn::models::CnnModel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

type ShapeCache = Mutex<HashMap<(CnnModel, InputScale), Arc<Vec<LayerShape>>>>;

fn cache() -> &'static ShapeCache {
    static CACHE: OnceLock<ShapeCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Paper-scale shapes for `model` at `scale`, derived once per process
/// and shared thereafter (cheap to clone: `Arc`).
pub fn cached_shapes(model: CnnModel, scale: InputScale) -> Arc<Vec<LayerShape>> {
    let mut map = cache().lock().expect("shape cache poisoned");
    Arc::clone(
        map.entry((model, scale))
            .or_insert_with(|| Arc::new(model_shapes(model, scale))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_the_same_allocation() {
        let a = cached_shapes(CnnModel::Vgg13, InputScale::Cifar);
        let b = cached_shapes(CnnModel::Vgg13, InputScale::Cifar);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(*a, model_shapes(CnnModel::Vgg13, InputScale::Cifar));
    }

    #[test]
    fn scales_are_cached_separately() {
        let cifar = cached_shapes(CnnModel::ResNet50, InputScale::Cifar);
        let imagenet = cached_shapes(CnnModel::ResNet50, InputScale::ImageNet);
        assert!(!Arc::ptr_eq(&cifar, &imagenet));
        assert_ne!(*cifar, *imagenet);
    }
}
