//! Declarative grid axes and deterministic expansion into identified
//! cells.
//!
//! A [`GridSpec`] lists the values of each experiment axis; [`expand`]
//! (`GridSpec::expand`) takes their cartesian product in a fixed nesting
//! order (dataflow → dataset → model → design → schedule — the grouping
//! order of the paper's figure panels). Each cell's identity is derived
//! from its *content* (the canonical axis-value key), never from its
//! position, so inserting an axis value reorders nothing retroactively:
//! existing cells keep their IDs and stay diffable across PRs.

use adagp_accel::speedup::EpochMix;
use adagp_accel::{AdaGpDesign, Dataflow};
use adagp_nn::models::shapes::InputScale;
use adagp_nn::models::CnnModel;

/// The dataset column of Figures 17–19 (model input scale differs).
/// Moved here from `adagp_bench::speedup_tables` so the grid axes and the
/// figure harness share one definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetScale {
    /// CIFAR10 (32² inputs).
    Cifar10,
    /// CIFAR100 (32² inputs).
    Cifar100,
    /// ImageNet (224² inputs).
    ImageNet,
}

impl DatasetScale {
    /// All three dataset columns.
    pub fn all() -> [DatasetScale; 3] {
        [
            DatasetScale::Cifar10,
            DatasetScale::Cifar100,
            DatasetScale::ImageNet,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetScale::Cifar10 => "Cifar10",
            DatasetScale::Cifar100 => "Cifar100",
            DatasetScale::ImageNet => "ImageNet",
        }
    }

    /// Input scale of this dataset.
    pub fn input_scale(&self) -> InputScale {
        match self {
            DatasetScale::ImageNet => InputScale::ImageNet,
            _ => InputScale::Cifar,
        }
    }
}

/// A named phase schedule — the {warm-up, annealing, steady-state} epoch
/// mix axis of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseSchedule {
    /// The paper's 90-epoch run: 10 warm-up + 4+4+4 annealing + 68 steady.
    Paper,
    /// A conservative mix: long warm-up, then straight to 1:1 (no
    /// annealing ramp). Lower speed-up, higher fidelity.
    WarmupHeavy,
    /// An aggressive mix: minimal warm-up, steady 1:1 for the rest.
    SteadyOnly,
}

impl PhaseSchedule {
    /// Every named schedule, in a stable order.
    pub fn all() -> [PhaseSchedule; 3] {
        [
            PhaseSchedule::Paper,
            PhaseSchedule::WarmupHeavy,
            PhaseSchedule::SteadyOnly,
        ]
    }

    /// Stable name used in cell keys, CSV and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseSchedule::Paper => "paper",
            PhaseSchedule::WarmupHeavy => "warmup-heavy",
            PhaseSchedule::SteadyOnly => "steady-only",
        }
    }

    /// The epoch mix this schedule denotes.
    pub fn mix(&self) -> EpochMix {
        match self {
            PhaseSchedule::Paper => EpochMix::paper(),
            PhaseSchedule::WarmupHeavy => EpochMix {
                warmup: 50,
                stage_4_1: 0,
                stage_3_1: 0,
                stage_2_1: 0,
                stage_1_1: 40,
            },
            PhaseSchedule::SteadyOnly => EpochMix {
                warmup: 10,
                stage_4_1: 0,
                stage_3_1: 0,
                stage_2_1: 0,
                stage_1_1: 80,
            },
        }
    }
}

/// One expanded grid point with its stable content-derived ID.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Content-derived cell identity: 16 lowercase hex digits of
    /// FNV-1a-64 over [`CellSpec::key`].
    pub id: String,
    /// Baseline dataflow the speed-up is measured against.
    pub dataflow: Dataflow,
    /// Dataset (sets the input scale of the layer shapes).
    pub dataset: DatasetScale,
    /// Model whose paper-scale layer shapes feed the cycle model.
    pub model: CnnModel,
    /// ADA-GP hardware design.
    pub design: AdaGpDesign,
    /// Phase schedule (epoch mix).
    pub schedule: PhaseSchedule,
    /// Simulator DRAM bandwidth override (words/cycle); `None` means the
    /// evaluator's default. Default-valued cells keep the pre-axis key
    /// (and therefore their PR 3/4 IDs); overridden cells append `bw<n>`.
    pub dram_words_per_cycle: Option<u64>,
    /// Simulator buffer-capacity override (words); `None` means the
    /// evaluator's default. Overridden cells append `buf<n>` to the key.
    pub buffer_words: Option<u64>,
}

impl CellSpec {
    /// Builds the cell for one combination of the five primary axis
    /// values (ID included, simulator knobs at their defaults).
    pub fn new(
        dataflow: Dataflow,
        dataset: DatasetScale,
        model: CnnModel,
        design: AdaGpDesign,
        schedule: PhaseSchedule,
    ) -> Self {
        Self::with_contention(dataflow, dataset, model, design, schedule, None, None)
    }

    /// Builds a cell with explicit simulator contention knobs.
    pub fn with_contention(
        dataflow: Dataflow,
        dataset: DatasetScale,
        model: CnnModel,
        design: AdaGpDesign,
        schedule: PhaseSchedule,
        dram_words_per_cycle: Option<u64>,
        buffer_words: Option<u64>,
    ) -> Self {
        let mut cell = CellSpec {
            id: String::new(),
            dataflow,
            dataset,
            model,
            design,
            schedule,
            dram_words_per_cycle,
            buffer_words,
        };
        cell.id = format!("{:016x}", fnv1a64(cell.key().as_bytes()));
        cell
    }

    /// Canonical human-readable key:
    /// `dataflow/dataset/model/design/schedule[/bw<n>][/buf<n>]` — the
    /// contention segments appear only when the cell overrides the
    /// evaluator defaults, so every pre-contention-axis cell keeps the
    /// exact key (and content-derived ID) it has had since PR 3.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}/{}/{}/{}/{}",
            self.dataflow.name(),
            self.dataset.name(),
            self.model.name(),
            self.design.name(),
            self.schedule.name()
        );
        if let Some(bw) = self.dram_words_per_cycle {
            key.push_str(&format!("/bw{bw}"));
        }
        if let Some(buf) = self.buffer_words {
            key.push_str(&format!("/buf{buf}"));
        }
        key
    }

    /// CSV/JSON display value of the bandwidth override column.
    pub fn dram_bw_name(&self) -> String {
        self.dram_words_per_cycle
            .map_or_else(|| "default".to_string(), |v| v.to_string())
    }

    /// CSV/JSON display value of the buffer-capacity override column.
    pub fn buffer_words_name(&self) -> String {
        self.buffer_words
            .map_or_else(|| "default".to_string(), |v| v.to_string())
    }
}

/// One slice of a sharded sweep: this invocation owns every cell whose
/// expansion index `i` satisfies `i % n == k - 1`. Index-based (not
/// ID-hash-based) assignment keeps the per-shard cell sets contiguous in
/// workload terms and — more importantly — deterministic for any grid,
/// so `k/n` invocations never overlap and together cover the grid
/// exactly once (property-tested in `shardlog`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// 1-based shard index (`1 ..= n`).
    pub k: u32,
    /// Total shard count.
    pub n: u32,
}

impl Default for Shard {
    /// The whole grid: shard 1 of 1.
    fn default() -> Self {
        Shard { k: 1, n: 1 }
    }
}

impl Shard {
    /// Parses the CLI form `k/n` (e.g. `2/4`).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec (`k` and `n` must be
    /// positive integers with `k <= n`).
    pub fn parse(text: &str) -> Result<Shard, String> {
        let err = || format!("bad shard spec `{text}` (expected k/n with 1 <= k <= n)");
        let (k, n) = text.split_once('/').ok_or_else(err)?;
        let k: u32 = k.trim().parse().map_err(|_| err())?;
        let n: u32 = n.trim().parse().map_err(|_| err())?;
        if k == 0 || n == 0 || k > n {
            return Err(err());
        }
        Ok(Shard { k, n })
    }

    /// Whether this shard owns the cell at expansion index `index`.
    pub fn owns(&self, index: usize) -> bool {
        index % self.n as usize == (self.k - 1) as usize
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.k, self.n)
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms;
/// collisions over the few-hundred-cell grid space are not a concern
/// (and the expansion test asserts uniqueness anyway).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A declarative experiment grid: the cartesian product of its axes.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Grid name (used in run records and the CLI).
    pub name: String,
    /// Model axis.
    pub models: Vec<CnnModel>,
    /// Dataset axis.
    pub datasets: Vec<DatasetScale>,
    /// Hardware-design axis.
    pub designs: Vec<AdaGpDesign>,
    /// Baseline-dataflow axis.
    pub dataflows: Vec<Dataflow>,
    /// Phase-schedule axis.
    pub schedules: Vec<PhaseSchedule>,
    /// Simulator DRAM-bandwidth axis (words/cycle); `None` = evaluator
    /// default. Standard grids use `vec![None]`.
    pub bandwidths: Vec<Option<u64>>,
    /// Simulator buffer-capacity axis (words); `None` = evaluator
    /// default. Standard grids use `vec![None]`.
    pub buffers: Vec<Option<u64>>,
}

impl GridSpec {
    /// Number of cells the grid expands into.
    pub fn cell_count(&self) -> usize {
        self.models.len()
            * self.datasets.len()
            * self.designs.len()
            * self.dataflows.len()
            * self.schedules.len()
            * self.bandwidths.len()
            * self.buffers.len()
    }

    /// Expands the axes into cells, in the deterministic nesting order
    /// dataflow → dataset → model → design → schedule → bandwidth →
    /// buffer.
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for &df in &self.dataflows {
            for &ds in &self.datasets {
                for &m in &self.models {
                    for &d in &self.designs {
                        for &s in &self.schedules {
                            for &bw in &self.bandwidths {
                                for &buf in &self.buffers {
                                    cells.push(CellSpec::with_contention(df, ds, m, d, s, bw, buf));
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// One-line summary of the axis sizes, e.g. `13m × 3ds × 3d × 1df ×
    /// 1s` (the contention axes are appended only when swept).
    pub fn axes_summary(&self) -> String {
        let mut out = format!(
            "{}m × {}ds × {}d × {}df × {}s",
            self.models.len(),
            self.datasets.len(),
            self.designs.len(),
            self.dataflows.len(),
            self.schedules.len()
        );
        if self.bandwidths.len() > 1 {
            out.push_str(&format!(" × {}bw", self.bandwidths.len()));
        }
        if self.buffers.len() > 1 {
            out.push_str(&format!(" × {}buf", self.buffers.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> GridSpec {
        GridSpec {
            name: "tiny".to_string(),
            models: vec![CnnModel::Vgg13, CnnModel::ResNet50],
            datasets: vec![DatasetScale::Cifar10],
            designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
            dataflows: vec![Dataflow::WeightStationary],
            schedules: vec![PhaseSchedule::Paper],
            bandwidths: vec![None],
            buffers: vec![None],
        }
    }

    #[test]
    fn expansion_matches_cell_count_and_order() {
        let g = tiny_grid();
        let cells = g.expand();
        assert_eq!(cells.len(), g.cell_count());
        assert_eq!(cells.len(), 4);
        // model-major over designs: Vgg13/Eff, Vgg13/Max, ResNet50/Eff, ...
        assert_eq!(cells[0].model, CnnModel::Vgg13);
        assert_eq!(cells[0].design, AdaGpDesign::Efficient);
        assert_eq!(cells[1].model, CnnModel::Vgg13);
        assert_eq!(cells[1].design, AdaGpDesign::Max);
        assert_eq!(cells[2].model, CnnModel::ResNet50);
    }

    #[test]
    fn ids_are_stable_and_content_derived() {
        // Golden values: these must never change across PRs — the whole
        // point of content-derived IDs is that stored runs stay diffable.
        let cell = CellSpec::new(
            Dataflow::WeightStationary,
            DatasetScale::Cifar10,
            CnnModel::Vgg13,
            AdaGpDesign::Efficient,
            PhaseSchedule::Paper,
        );
        assert_eq!(cell.key(), "WS/Cifar10/VGG13/ADA-GP-Efficient/paper");
        assert_eq!(
            cell.id,
            format!("{:016x}", super::fnv1a64(cell.key().as_bytes()))
        );
        // Same content → same id, regardless of grid or position.
        let again = tiny_grid()
            .expand()
            .into_iter()
            .find(|c| c.key() == cell.key())
            .expect("cell present");
        assert_eq!(again.id, cell.id);
    }

    #[test]
    fn ids_are_unique_across_the_full_grid() {
        let g = GridSpec {
            name: "full".to_string(),
            models: CnnModel::all().to_vec(),
            datasets: DatasetScale::all().to_vec(),
            designs: AdaGpDesign::all().to_vec(),
            dataflows: Dataflow::all().to_vec(),
            schedules: PhaseSchedule::all().to_vec(),
            bandwidths: vec![None, Some(16), Some(64)],
            buffers: vec![None, Some(1 << 15)],
        };
        let cells = g.expand();
        assert_eq!(cells.len(), 13 * 3 * 3 * 4 * 3 * 3 * 2);
        let ids: std::collections::HashSet<_> = cells.iter().map(|c| c.id.clone()).collect();
        assert_eq!(ids.len(), cells.len(), "cell ID collision");
    }

    #[test]
    fn contention_axes_extend_the_key_only_when_overridden() {
        // Golden: a default-knob cell keeps its PR 3 key and ID...
        let plain = CellSpec::new(
            Dataflow::WeightStationary,
            DatasetScale::Cifar10,
            CnnModel::Vgg13,
            AdaGpDesign::Efficient,
            PhaseSchedule::Paper,
        );
        assert_eq!(plain.key(), "WS/Cifar10/VGG13/ADA-GP-Efficient/paper");
        // ...while overridden knobs append stable, value-bearing segments.
        let swept = CellSpec::with_contention(
            Dataflow::WeightStationary,
            DatasetScale::Cifar10,
            CnnModel::Vgg13,
            AdaGpDesign::Efficient,
            PhaseSchedule::Paper,
            Some(32),
            Some(65536),
        );
        assert_eq!(
            swept.key(),
            "WS/Cifar10/VGG13/ADA-GP-Efficient/paper/bw32/buf65536"
        );
        assert_ne!(swept.id, plain.id);
        assert_eq!(swept.dram_bw_name(), "32");
        assert_eq!(swept.buffer_words_name(), "65536");
        assert_eq!(plain.dram_bw_name(), "default");
        assert_eq!(plain.buffer_words_name(), "default");
    }

    #[test]
    fn schedules_have_distinct_mixes_of_equal_length() {
        let totals: Vec<usize> = PhaseSchedule::all()
            .iter()
            .map(|s| s.mix().total())
            .collect();
        assert_eq!(totals, vec![90, 90, 90]);
        assert_ne!(PhaseSchedule::Paper.mix(), PhaseSchedule::WarmupHeavy.mix());
    }

    #[test]
    fn shard_parse_accepts_valid_and_rejects_malformed_specs() {
        assert_eq!(Shard::parse("1/1").unwrap(), Shard { k: 1, n: 1 });
        assert_eq!(Shard::parse("3/7").unwrap(), Shard { k: 3, n: 7 });
        assert_eq!(Shard::default(), Shard { k: 1, n: 1 });
        for bad in ["", "1", "0/2", "3/2", "2/0", "a/b", "1/2/3", "-1/2"] {
            assert!(Shard::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn shards_partition_every_index_exactly_once() {
        for n in [1u32, 2, 4, 7] {
            for index in 0..100usize {
                let owners: Vec<u32> = (1..=n).filter(|&k| Shard { k, n }.owns(index)).collect();
                assert_eq!(owners.len(), 1, "index {index} under n={n}: {owners:?}");
            }
        }
    }

    #[test]
    fn fnv_reference_vector() {
        // Published FNV-1a test vector: "a" → 0xaf63dc4c8601ec8c.
        assert_eq!(super::fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
