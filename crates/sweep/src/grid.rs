//! Declarative grid axes and deterministic expansion into identified
//! cells.
//!
//! A [`GridSpec`] lists the values of each experiment axis; [`expand`]
//! (`GridSpec::expand`) takes their cartesian product in a fixed nesting
//! order (dataflow → dataset → model → design → schedule — the grouping
//! order of the paper's figure panels). Each cell's identity is derived
//! from its *content* (the canonical axis-value key), never from its
//! position, so inserting an axis value reorders nothing retroactively:
//! existing cells keep their IDs and stay diffable across PRs.

use adagp_accel::speedup::EpochMix;
use adagp_accel::{AdaGpDesign, Dataflow};
use adagp_nn::models::shapes::InputScale;
use adagp_nn::models::CnnModel;

/// The dataset column of Figures 17–19 (model input scale differs).
/// Moved here from `adagp_bench::speedup_tables` so the grid axes and the
/// figure harness share one definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetScale {
    /// CIFAR10 (32² inputs).
    Cifar10,
    /// CIFAR100 (32² inputs).
    Cifar100,
    /// ImageNet (224² inputs).
    ImageNet,
}

impl DatasetScale {
    /// All three dataset columns.
    pub fn all() -> [DatasetScale; 3] {
        [
            DatasetScale::Cifar10,
            DatasetScale::Cifar100,
            DatasetScale::ImageNet,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetScale::Cifar10 => "Cifar10",
            DatasetScale::Cifar100 => "Cifar100",
            DatasetScale::ImageNet => "ImageNet",
        }
    }

    /// Input scale of this dataset.
    pub fn input_scale(&self) -> InputScale {
        match self {
            DatasetScale::ImageNet => InputScale::ImageNet,
            _ => InputScale::Cifar,
        }
    }
}

/// A named phase schedule — the {warm-up, annealing, steady-state} epoch
/// mix axis of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseSchedule {
    /// The paper's 90-epoch run: 10 warm-up + 4+4+4 annealing + 68 steady.
    Paper,
    /// A conservative mix: long warm-up, then straight to 1:1 (no
    /// annealing ramp). Lower speed-up, higher fidelity.
    WarmupHeavy,
    /// An aggressive mix: minimal warm-up, steady 1:1 for the rest.
    SteadyOnly,
}

impl PhaseSchedule {
    /// Every named schedule, in a stable order.
    pub fn all() -> [PhaseSchedule; 3] {
        [
            PhaseSchedule::Paper,
            PhaseSchedule::WarmupHeavy,
            PhaseSchedule::SteadyOnly,
        ]
    }

    /// Stable name used in cell keys, CSV and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseSchedule::Paper => "paper",
            PhaseSchedule::WarmupHeavy => "warmup-heavy",
            PhaseSchedule::SteadyOnly => "steady-only",
        }
    }

    /// The epoch mix this schedule denotes.
    pub fn mix(&self) -> EpochMix {
        match self {
            PhaseSchedule::Paper => EpochMix::paper(),
            PhaseSchedule::WarmupHeavy => EpochMix {
                warmup: 50,
                stage_4_1: 0,
                stage_3_1: 0,
                stage_2_1: 0,
                stage_1_1: 40,
            },
            PhaseSchedule::SteadyOnly => EpochMix {
                warmup: 10,
                stage_4_1: 0,
                stage_3_1: 0,
                stage_2_1: 0,
                stage_1_1: 80,
            },
        }
    }
}

/// One expanded grid point with its stable content-derived ID.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Content-derived cell identity: 16 lowercase hex digits of
    /// FNV-1a-64 over [`CellSpec::key`].
    pub id: String,
    /// Baseline dataflow the speed-up is measured against.
    pub dataflow: Dataflow,
    /// Dataset (sets the input scale of the layer shapes).
    pub dataset: DatasetScale,
    /// Model whose paper-scale layer shapes feed the cycle model.
    pub model: CnnModel,
    /// ADA-GP hardware design.
    pub design: AdaGpDesign,
    /// Phase schedule (epoch mix).
    pub schedule: PhaseSchedule,
}

impl CellSpec {
    /// Builds the cell for one combination of axis values (ID included).
    pub fn new(
        dataflow: Dataflow,
        dataset: DatasetScale,
        model: CnnModel,
        design: AdaGpDesign,
        schedule: PhaseSchedule,
    ) -> Self {
        let key = Self::key_of(dataflow, dataset, model, design, schedule);
        CellSpec {
            id: format!("{:016x}", fnv1a64(key.as_bytes())),
            dataflow,
            dataset,
            model,
            design,
            schedule,
        }
    }

    /// Canonical human-readable key: `dataflow/dataset/model/design/schedule`.
    pub fn key(&self) -> String {
        Self::key_of(
            self.dataflow,
            self.dataset,
            self.model,
            self.design,
            self.schedule,
        )
    }

    fn key_of(
        dataflow: Dataflow,
        dataset: DatasetScale,
        model: CnnModel,
        design: AdaGpDesign,
        schedule: PhaseSchedule,
    ) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            dataflow.name(),
            dataset.name(),
            model.name(),
            design.name(),
            schedule.name()
        )
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms;
/// collisions over the few-hundred-cell grid space are not a concern
/// (and the expansion test asserts uniqueness anyway).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A declarative experiment grid: the cartesian product of its axes.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Grid name (used in run records and the CLI).
    pub name: String,
    /// Model axis.
    pub models: Vec<CnnModel>,
    /// Dataset axis.
    pub datasets: Vec<DatasetScale>,
    /// Hardware-design axis.
    pub designs: Vec<AdaGpDesign>,
    /// Baseline-dataflow axis.
    pub dataflows: Vec<Dataflow>,
    /// Phase-schedule axis.
    pub schedules: Vec<PhaseSchedule>,
}

impl GridSpec {
    /// Number of cells the grid expands into.
    pub fn cell_count(&self) -> usize {
        self.models.len()
            * self.datasets.len()
            * self.designs.len()
            * self.dataflows.len()
            * self.schedules.len()
    }

    /// Expands the axes into cells, in the deterministic nesting order
    /// dataflow → dataset → model → design → schedule.
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for &df in &self.dataflows {
            for &ds in &self.datasets {
                for &m in &self.models {
                    for &d in &self.designs {
                        for &s in &self.schedules {
                            cells.push(CellSpec::new(df, ds, m, d, s));
                        }
                    }
                }
            }
        }
        cells
    }

    /// One-line summary of the axis sizes, e.g. `13m × 3ds × 3d × 1df × 1s`.
    pub fn axes_summary(&self) -> String {
        format!(
            "{}m × {}ds × {}d × {}df × {}s",
            self.models.len(),
            self.datasets.len(),
            self.designs.len(),
            self.dataflows.len(),
            self.schedules.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> GridSpec {
        GridSpec {
            name: "tiny".to_string(),
            models: vec![CnnModel::Vgg13, CnnModel::ResNet50],
            datasets: vec![DatasetScale::Cifar10],
            designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
            dataflows: vec![Dataflow::WeightStationary],
            schedules: vec![PhaseSchedule::Paper],
        }
    }

    #[test]
    fn expansion_matches_cell_count_and_order() {
        let g = tiny_grid();
        let cells = g.expand();
        assert_eq!(cells.len(), g.cell_count());
        assert_eq!(cells.len(), 4);
        // model-major over designs: Vgg13/Eff, Vgg13/Max, ResNet50/Eff, ...
        assert_eq!(cells[0].model, CnnModel::Vgg13);
        assert_eq!(cells[0].design, AdaGpDesign::Efficient);
        assert_eq!(cells[1].model, CnnModel::Vgg13);
        assert_eq!(cells[1].design, AdaGpDesign::Max);
        assert_eq!(cells[2].model, CnnModel::ResNet50);
    }

    #[test]
    fn ids_are_stable_and_content_derived() {
        // Golden values: these must never change across PRs — the whole
        // point of content-derived IDs is that stored runs stay diffable.
        let cell = CellSpec::new(
            Dataflow::WeightStationary,
            DatasetScale::Cifar10,
            CnnModel::Vgg13,
            AdaGpDesign::Efficient,
            PhaseSchedule::Paper,
        );
        assert_eq!(cell.key(), "WS/Cifar10/VGG13/ADA-GP-Efficient/paper");
        assert_eq!(
            cell.id,
            format!("{:016x}", super::fnv1a64(cell.key().as_bytes()))
        );
        // Same content → same id, regardless of grid or position.
        let again = tiny_grid()
            .expand()
            .into_iter()
            .find(|c| c.key() == cell.key())
            .expect("cell present");
        assert_eq!(again.id, cell.id);
    }

    #[test]
    fn ids_are_unique_across_the_full_grid() {
        let g = GridSpec {
            name: "full".to_string(),
            models: CnnModel::all().to_vec(),
            datasets: DatasetScale::all().to_vec(),
            designs: AdaGpDesign::all().to_vec(),
            dataflows: Dataflow::all().to_vec(),
            schedules: PhaseSchedule::all().to_vec(),
        };
        let cells = g.expand();
        assert_eq!(cells.len(), 13 * 3 * 3 * 4 * 3);
        let ids: std::collections::HashSet<_> = cells.iter().map(|c| c.id.clone()).collect();
        assert_eq!(ids.len(), cells.len(), "cell ID collision");
    }

    #[test]
    fn schedules_have_distinct_mixes_of_equal_length() {
        let totals: Vec<usize> = PhaseSchedule::all()
            .iter()
            .map(|s| s.mix().total())
            .collect();
        assert_eq!(totals, vec![90, 90, 90]);
        assert_ne!(PhaseSchedule::Paper.mix(), PhaseSchedule::WarmupHeavy.mix());
    }

    #[test]
    fn fnv_reference_vector() {
        // Published FNV-1a test vector: "a" → 0xaf63dc4c8601ec8c.
        assert_eq!(super::fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
