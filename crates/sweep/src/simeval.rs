//! The sim-backed cell evaluator: every grid cell run through the
//! `adagp-sim` discrete-event simulator.
//!
//! Two consumers share this module:
//!
//! * [`crate::runner::evaluate_cell`] pulls the three sim metrics
//!   (`sim_cycles`, `pe_utilization`, `overlap_efficiency`) computed with
//!   the *default* contention-enabled [`SimConfig`], so they flow through
//!   the regular store/diff/golden machinery next to the analytic
//!   metrics.
//! * The `sweep sim` CLI subcommand runs [`run_sim_grid`] for the
//!   batch-level detail view — per-phase makespans, the simulated
//!   speed-up and the peak buffer occupancy — and writes it as a
//!   byte-stable CSV ([`sim_detail_csv`]) that CI byte-compares against a
//!   committed golden, exactly like the analytic smoke grid.
//!
//! With [`SimConfig::no_contention`] the simulated speed-up is
//! bit-identical to the analytic `training_speedup` (the sim crate's
//! contract); the golden test in `adagp-bench` asserts that over the full
//! fig17 grid.

use crate::grid::{CellSpec, GridSpec};
use crate::shapes::cached_shapes;
use adagp_accel::layer_cost::PredictorCostModel;
use adagp_accel::AcceleratorConfig;
use adagp_sim::{model_sim_layers, SimConfig, StepSim};

/// One simulated cell: batch-level makespans plus derived training-level
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCellDetail {
    /// The grid point that was simulated.
    pub spec: CellSpec,
    /// Simulated baseline batch makespan (cycles).
    pub baseline_batch_cycles: u64,
    /// Simulated Phase-BP batch makespan (cycles).
    pub bp_batch_cycles: u64,
    /// Simulated Phase-GP batch makespan (cycles).
    pub gp_batch_cycles: u64,
    /// Simulated end-to-end training speed-up.
    pub sim_speedup: f64,
    /// Simulated ADA-GP training cycles (epoch-mix weighted).
    pub sim_cycles: f64,
    /// Epoch-weighted main PE-array utilization.
    pub pe_utilization: f64,
    /// Epoch-weighted predictor-overlap efficiency.
    pub overlap_efficiency: f64,
    /// Epoch-weighted buffer-spill cycles of the ADA-GP run (exactly 0
    /// with contention off or an unbounded buffer).
    pub spill_cycles: f64,
    /// Peak buffer occupancy across the three batch schedules (words).
    pub peak_buffer_words: i64,
}

/// Resolves the simulator configuration one cell runs under: the cell's
/// bandwidth/buffer overrides applied on top of `base`. When `base` has
/// the DRAM channel disabled (`--no-contention`), the overrides are
/// ignored entirely — contention off *composes* with the contention axes
/// by winning, so the analytic-equality contract holds for every cell of
/// every grid.
pub fn cell_sim_config(spec: &CellSpec, base: &SimConfig) -> SimConfig {
    let mut cfg = *base;
    if cfg.dram_words_per_cycle.is_none() {
        return cfg;
    }
    if let Some(bw) = spec.dram_words_per_cycle {
        cfg.dram_words_per_cycle = Some(bw);
    }
    if let Some(buf) = spec.buffer_words {
        cfg.buffer_words = Some(buf);
    }
    cfg
}

/// Simulates one cell under [`cell_sim_config`]`(spec, base)`: the same
/// shapes, accelerator config and epoch mix the analytic evaluator uses,
/// executed on the event engine.
pub fn simulate_cell(spec: &CellSpec, base: &SimConfig) -> SimCellDetail {
    let cfg = cell_sim_config(spec, base);
    let shapes = cached_shapes(spec.model, spec.dataset.input_scale());
    let layers = model_sim_layers(
        &AcceleratorConfig::default(),
        spec.dataflow,
        &PredictorCostModel::default(),
        &shapes,
        &cfg,
    );
    let mix = spec.schedule.mix();
    let step = StepSim::run(spec.design, &layers, &mix, &cfg);
    SimCellDetail {
        spec: spec.clone(),
        baseline_batch_cycles: step.baseline.makespan(),
        bp_batch_cycles: step.bp.makespan(),
        gp_batch_cycles: step.gp.makespan(),
        sim_speedup: step.training_speedup(),
        sim_cycles: step.adagp_training_cycles(),
        pe_utilization: step.pe_utilization(),
        overlap_efficiency: step.overlap_efficiency(),
        spill_cycles: step.adagp_spill_cycles(),
        peak_buffer_words: step.peak_buffer_words(),
    }
}

/// Simulates every cell of `grid` in parallel on the shared runtime pool
/// (expansion order, thread-count invariant — the same contract as
/// [`crate::runner::run_grid`]).
pub fn run_sim_grid(grid: &GridSpec, cfg: &SimConfig) -> Vec<SimCellDetail> {
    adagp_runtime::pool().parallel_map(grid.expand(), |spec| simulate_cell(&spec, cfg))
}

/// Column layout of the sim-detail CSV.
pub const SIM_CSV_HEADER: [&str; 16] = [
    "id",
    "dataflow",
    "dataset",
    "model",
    "design",
    "schedule",
    "dram_bw",
    "buffer_words",
    "baseline_batch_cycles",
    "bp_batch_cycles",
    "gp_batch_cycles",
    "sim_speedup",
    "pe_utilization",
    "overlap_efficiency",
    "spill_cycles",
    "peak_buffer_words",
];

/// Renders simulated cells as byte-stable CSV (integers verbatim, floats
/// at the store's fixed precision).
pub fn sim_detail_csv(details: &[SimCellDetail]) -> String {
    use crate::store::csv_float;
    let mut out = String::new();
    out.push_str(&SIM_CSV_HEADER.join(","));
    out.push('\n');
    for d in details {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            d.spec.id,
            d.spec.dataflow.name(),
            d.spec.dataset.name(),
            d.spec.model.name(),
            d.spec.design.name(),
            d.spec.schedule.name(),
            d.spec.dram_bw_name(),
            d.spec.buffer_words_name(),
            d.baseline_batch_cycles,
            d.bp_batch_cycles,
            d.gp_batch_cycles,
            csv_float(d.sim_speedup),
            csv_float(d.pe_utilization),
            csv_float(d.overlap_efficiency),
            csv_float(d.spill_cycles),
            d.peak_buffer_words,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{DatasetScale, PhaseSchedule};
    use crate::presets;
    use adagp_accel::speedup::training_speedup;
    use adagp_accel::{AcceleratorConfig, AdaGpDesign, Dataflow};
    use adagp_nn::models::CnnModel;

    fn cell() -> CellSpec {
        CellSpec::new(
            Dataflow::WeightStationary,
            DatasetScale::Cifar10,
            CnnModel::Vgg13,
            AdaGpDesign::Max,
            PhaseSchedule::Paper,
        )
    }

    #[test]
    fn no_contention_speedup_is_bit_exact_vs_analytic() {
        let d = simulate_cell(&cell(), &SimConfig::no_contention());
        let shapes = cached_shapes(CnnModel::Vgg13, DatasetScale::Cifar10.input_scale());
        let direct = training_speedup(
            &AcceleratorConfig::default(),
            Dataflow::WeightStationary,
            AdaGpDesign::Max,
            &shapes,
            &PhaseSchedule::Paper.mix(),
        );
        assert_eq!(d.sim_speedup.to_bits(), direct.to_bits());
    }

    #[test]
    fn no_contention_base_wins_over_cell_overrides() {
        // `sweep sim --no-contention` on the bandwidth grid: the cells
        // carry bandwidth/buffer overrides, but a contention-off base
        // must silence them — zero spills, analytic-exact speed-up.
        let spec = CellSpec::with_contention(
            Dataflow::WeightStationary,
            DatasetScale::Cifar10,
            CnnModel::Vgg13,
            AdaGpDesign::Max,
            PhaseSchedule::Paper,
            Some(4),
            Some(1024),
        );
        let base = SimConfig::no_contention();
        assert_eq!(cell_sim_config(&spec, &base), base);
        let d = simulate_cell(&spec, &base);
        assert_eq!(d.spill_cycles, 0.0);
        let plain = simulate_cell(&cell(), &base);
        assert_eq!(d.sim_speedup.to_bits(), plain.sim_speedup.to_bits());

        // With a contention-on base the overrides bite: tighter bandwidth
        // and a tiny buffer can only slow things down.
        let tight = simulate_cell(&spec, &SimConfig::default());
        assert!(tight.sim_cycles > plain.sim_cycles);
        assert!(tight.spill_cycles > 0.0);
    }

    #[test]
    fn contention_never_beats_the_ideal() {
        let free = simulate_cell(&cell(), &SimConfig::no_contention());
        let tight = simulate_cell(&cell(), &SimConfig::default());
        assert!(tight.baseline_batch_cycles >= free.baseline_batch_cycles);
        assert!(tight.bp_batch_cycles >= free.bp_batch_cycles);
        assert!(tight.gp_batch_cycles >= free.gp_batch_cycles);
        assert!(tight.sim_cycles >= free.sim_cycles);
        assert!(tight.pe_utilization <= free.pe_utilization + 1e-12);
    }

    #[test]
    fn sim_grid_is_thread_count_invariant_csv_bytes() {
        let grid = presets::smoke();
        let cfg = SimConfig::default();
        let reference =
            adagp_runtime::with_threads(1, || sim_detail_csv(&run_sim_grid(&grid, &cfg)));
        for threads in [2, 4] {
            let got =
                adagp_runtime::with_threads(threads, || sim_detail_csv(&run_sim_grid(&grid, &cfg)));
            assert_eq!(got, reference, "threads={threads}");
        }
        assert_eq!(reference.lines().count(), 1 + grid.cell_count());
    }

    #[test]
    fn detail_csv_parses_and_orders_like_the_grid() {
        let grid = presets::smoke();
        let details = run_sim_grid(&grid, &SimConfig::no_contention());
        let expected: Vec<String> = grid.expand().into_iter().map(|c| c.id).collect();
        let got: Vec<String> = details.iter().map(|d| d.spec.id.clone()).collect();
        assert_eq!(got, expected);
        let csv = sim_detail_csv(&details);
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), SIM_CSV_HEADER.len());
        }
    }

    #[test]
    fn max_overlaps_better_than_efficient() {
        let mk = |design| {
            simulate_cell(
                &CellSpec::new(
                    Dataflow::WeightStationary,
                    DatasetScale::Cifar10,
                    CnnModel::ResNet50,
                    design,
                    PhaseSchedule::Paper,
                ),
                &SimConfig::no_contention(),
            )
        };
        let max = mk(AdaGpDesign::Max);
        let eff = mk(AdaGpDesign::Efficient);
        assert!(max.overlap_efficiency > eff.overlap_efficiency);
        assert!(max.sim_speedup > eff.sim_speedup);
    }
}
