//! Append-only, shard-per-worker result logs: the crash-safe storage
//! layer for sweeps too large (or too long-running) for one
//! whole-file-at-the-end write.
//!
//! ## Format
//!
//! A *shard log* is an NDJSON file named `shard-<k>-of-<n>.ndjson`: one
//! compact-JSON [`StoredCell`] record per line, appended with an fsync
//! at every record boundary. A record is committed iff its trailing
//! newline reached the file — the loader treats the final line of a
//! file that does not end in `\n` as a *torn tail* (a crash mid-append)
//! and skips it with a line-numbered warning instead of failing. Any
//! other undecodable line (garbage bytes, truncated JSON, invalid
//! UTF-8) is likewise skipped and reported as a span of line numbers;
//! the loader never panics and never drops an intact record.
//!
//! ## Sharding and resume
//!
//! A sweep over grid `G` run as shard `k/n` owns the cells at expansion
//! indices `i % n == k-1` ([`Shard::owns`]) and appends only to its own
//! file, so `n` concurrent invocations (processes or machines sharing a
//! directory) never contend on a file. Before evaluating, a shard loads
//! its own log and skips every owned cell whose ID is already committed
//! — killing and re-running an invocation re-evaluates only the cells
//! that had not reached the disk ([`ShardRunStats::resumed`] counts the
//! skips).
//!
//! ## Merge
//!
//! [`merge_dir`] folds every shard file of a directory into one
//! ID-keyed cell map, deterministically: files in `(n, k)` order, lines
//! in file order, **last write wins** for duplicate IDs. Given the
//! grid, [`merge_to_run`] re-sequences the map into expansion order —
//! from there [`stored_csv_string`]/[`stored_json_string`] (or the
//! streaming writers) reproduce byte-identical final artifacts no
//! matter how the work was sharded, interleaved, crashed or resumed.
//!
//! ## Fault injection
//!
//! Setting `ADAGP_SHARD_FAULT_AFTER=<n>` makes the (n+1)-th append of a
//! [`ShardWriter`] write a *torn prefix* of its record (no newline, no
//! fsync guarantee) and then abort the process — the crash-injection
//! batteries use it to kill real sweeps at exact record boundaries.

use crate::grid::{CellSpec, GridSpec, Shard};
use crate::runner;
use crate::store::{stored_csv_string, stored_json_string, StoredCell};
use adagp_obs as obs;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Environment variable for the crash-injection fault point: the value
/// `n` aborts the process on the (n+1)-th record append, after writing
/// a torn (newline-less) prefix of that record.
pub const FAULT_ENV: &str = "ADAGP_SHARD_FAULT_AFTER";

/// Records appended to shard logs (process-global obs counter, rendered
/// as `adagp_sweep_log_appends_total` on serve's `/metrics`).
fn appends_counter() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::registry().counter("sweep_log_appends_total"))
}

/// Cells skipped because their ID was already committed to a shard log
/// (resume hits; `adagp_sweep_log_resume_hits_total` on `/metrics`).
fn resume_hits_counter() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::registry().counter("sweep_log_resume_hits_total"))
}

/// Records `n` resume hits on the process-global counter
/// (`adagp_sweep_log_resume_hits_total`) — for callers like the serve
/// warm start that skip re-evaluation from merged log contents outside
/// [`run_sharded`].
pub fn note_resume_hits(n: u64) {
    resume_hits_counter().add(n);
}

/// The file name of shard `k/n` (`shard-3-of-7.ndjson`).
pub fn shard_file_name(shard: Shard) -> String {
    format!("shard-{}-of-{}.ndjson", shard.k, shard.n)
}

/// Parses a shard file name back into its shard, rejecting anything
/// that is not exactly `shard-<k>-of-<n>.ndjson` with a valid `k/n`.
pub fn parse_shard_file_name(name: &str) -> Option<Shard> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".ndjson")?;
    let (k, n) = rest.split_once("-of-")?;
    let shard = Shard {
        k: k.parse().ok()?,
        n: n.parse().ok()?,
    };
    (shard.k >= 1 && shard.k <= shard.n).then_some(shard)
}

/// One record serialized as a compact single-line JSON object — the
/// exact bytes [`ShardWriter::append`] commits (newline excluded).
pub fn record_line(cell: &StoredCell) -> String {
    serde::json::to_string(cell)
}

/// The append side of one shard log. Opens the file in append mode (an
/// existing log keeps its records), writes one newline-terminated
/// record per [`append`](ShardWriter::append), and fsyncs at every
/// record boundary, so a committed record survives any crash of the
/// writer or the machine.
#[derive(Debug)]
pub struct ShardWriter {
    file: std::fs::File,
    path: PathBuf,
    appended: u64,
    fault_after: Option<u64>,
}

impl ShardWriter {
    /// Opens (creating the directory and file as needed) the log of
    /// `shard` under `dir`. Reads the [`FAULT_ENV`] fault point once.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn open(dir: &Path, shard: Shard) -> std::io::Result<ShardWriter> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(shard_file_name(shard));
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        // Self-heal a torn tail: if the existing log does not end in a
        // newline (a previous writer died mid-append), terminate that
        // line now so the first resumed record is not concatenated onto
        // the torn bytes and lost with them. The torn line itself stays
        // — append-only means never rewriting committed bytes — and the
        // loader reports it as one undecodable span.
        if file.metadata()?.len() > 0 {
            use std::io::{Read, Seek, SeekFrom};
            let mut reader = std::fs::File::open(&path)?;
            reader.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            reader.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
                file.sync_data()?;
            }
        }
        Ok(ShardWriter {
            file,
            path,
            appended: 0,
            fault_after: std::env::var(FAULT_ENV).ok().and_then(|v| v.parse().ok()),
        })
    }

    /// The log file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this writer (resumed records in the
    /// existing file are not counted).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one record: the compact JSON line plus `\n`, then fsync.
    /// With the [`FAULT_ENV`] fault point armed at `n`, the `(n+1)`-th
    /// call writes a torn prefix of the record instead and aborts the
    /// process — simulating a crash mid-append.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write or the fsync.
    pub fn append(&mut self, cell: &StoredCell) -> std::io::Result<()> {
        let mut line = record_line(cell);
        if self.fault_after == Some(self.appended) {
            // Crash injection: commit half the record without its
            // newline, push it to the OS, and die like a killed worker.
            line.truncate(line.len() / 2);
            let _ = self.file.write_all(line.as_bytes());
            let _ = self.file.sync_data();
            eprintln!(
                "shardlog: fault injected after {} records ({FAULT_ENV})",
                self.appended
            );
            std::process::abort();
        }
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        self.appended += 1;
        appends_counter().inc();
        Ok(())
    }
}

/// A contiguous run of undecodable log lines, reported by the loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedSpan {
    /// 1-based first line of the span.
    pub first_line: usize,
    /// 1-based last line of the span (inclusive).
    pub last_line: usize,
    /// Why the first line of the span was rejected.
    pub reason: String,
}

impl std::fmt::Display for SkippedSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.first_line == self.last_line {
            write!(f, "line {}: {}", self.first_line, self.reason)
        } else {
            write!(
                f,
                "lines {}-{}: {}",
                self.first_line, self.last_line, self.reason
            )
        }
    }
}

/// What loading one shard log recovered.
#[derive(Debug, Clone, Default)]
pub struct ShardLoad {
    /// Every intact record, in file (append) order.
    pub cells: Vec<StoredCell>,
    /// Undecodable line spans, in file order (a torn tail appears here
    /// as the final span).
    pub skipped: Vec<SkippedSpan>,
}

/// Validates one decoded record beyond JSON shape: IDs must be
/// non-empty and metrics finite (the JSON writer encodes non-finite
/// floats as `null`, which already fails decoding, but a corrupted
/// line could still parse as a record with an empty ID).
fn validate_record(cell: &StoredCell) -> Result<(), String> {
    if cell.id.is_empty() {
        return Err("record has an empty cell ID".to_string());
    }
    if let Some(bad) = cell.metrics.iter().find(|m| !m.is_finite()) {
        return Err(format!("record carries a non-finite metric {bad}"));
    }
    Ok(())
}

/// Loads one shard log tolerantly: every intact record is recovered,
/// every undecodable line lands in a [`SkippedSpan`] with its line
/// numbers, and a file whose final line lacks its newline — a crash
/// mid-append — contributes that line as a `torn tail` span. Never
/// panics on any byte sequence. A missing file is an empty load.
///
/// # Errors
///
/// Returns only genuine I/O failures (permission, hardware); decode
/// problems are reported in the result, not as errors.
pub fn load_shard(path: &Path) -> std::io::Result<ShardLoad> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ShardLoad::default()),
        Err(e) => return Err(e),
    };
    let mut load = ShardLoad::default();
    let skip = |lineno: usize, reason: String, skipped: &mut Vec<SkippedSpan>| {
        match skipped.last_mut() {
            // Grow the current span only across *adjacent* bad lines.
            Some(span) if span.last_line + 1 == lineno => span.last_line = lineno,
            _ => skipped.push(SkippedSpan {
                first_line: lineno,
                last_line: lineno,
                reason,
            }),
        }
    };
    let mut offset = 0;
    let mut lineno = 0;
    while offset < bytes.len() {
        lineno += 1;
        let (line, next, committed) = match bytes[offset..].iter().position(|&b| b == b'\n') {
            Some(nl) => (&bytes[offset..offset + nl], offset + nl + 1, true),
            None => (&bytes[offset..], bytes.len(), false),
        };
        offset = next;
        if !committed {
            skip(
                lineno,
                format!("torn tail ({} bytes without a newline)", line.len()),
                &mut load.skipped,
            );
            break;
        }
        if line.is_empty() {
            continue;
        }
        let text = match std::str::from_utf8(line) {
            Ok(t) => t,
            Err(_) => {
                skip(lineno, "invalid UTF-8".to_string(), &mut load.skipped);
                continue;
            }
        };
        match serde::json::from_str::<StoredCell>(text) {
            Ok(cell) => match validate_record(&cell) {
                Ok(()) => load.cells.push(cell),
                Err(why) => skip(lineno, why, &mut load.skipped),
            },
            Err(e) => skip(
                lineno,
                format!("undecodable record: {e}"),
                &mut load.skipped,
            ),
        }
    }
    Ok(load)
}

/// The deterministic fold of every shard log in one directory.
#[derive(Debug, Default)]
pub struct MergedShards {
    /// Cell ID → last-written record for that ID.
    pub by_id: HashMap<String, StoredCell>,
    /// Shard files merged, in merge order.
    pub files: Vec<PathBuf>,
    /// Total records read across all files (duplicates included).
    pub records: usize,
    /// Every skipped span, tagged with its file.
    pub skipped: Vec<(PathBuf, SkippedSpan)>,
}

/// Merges every `shard-<k>-of-<n>.ndjson` under `dir`: files in
/// `(n, k)` order, records in file order, last write wins per cell ID.
/// A missing directory merges to nothing (a fresh run).
///
/// # Errors
///
/// Returns a description of a directory-listing or file-read failure.
pub fn merge_dir(dir: &Path) -> Result<MergedShards, String> {
    let mut shards: Vec<(Shard, PathBuf)> = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(MergedShards::default()),
        Err(e) => return Err(format!("read dir {}: {e}", dir.display())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let name = entry.file_name();
        if let Some(shard) = name.to_str().and_then(parse_shard_file_name) {
            shards.push((shard, entry.path()));
        }
    }
    shards.sort_by_key(|(s, _)| (s.n, s.k));
    let mut merged = MergedShards::default();
    for (_, path) in shards {
        let load = load_shard(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        merged.records += load.cells.len();
        for cell in load.cells {
            merged.by_id.insert(cell.id.clone(), cell);
        }
        merged
            .skipped
            .extend(load.skipped.into_iter().map(|s| (path.clone(), s)));
        merged.files.push(path);
    }
    Ok(merged)
}

/// A merged run re-sequenced into one grid's expansion order.
#[derive(Debug)]
pub struct MergedRun {
    /// The grid's cells that are present in the logs, in expansion
    /// order.
    pub cells: Vec<StoredCell>,
    /// Keys of the grid's cells that no log carries yet.
    pub missing: Vec<String>,
    /// Logged cell IDs that belong to no cell of this grid (stale or
    /// foreign records — excluded from `cells`).
    pub extras: usize,
    /// Every skipped span the merge encountered.
    pub skipped: Vec<(PathBuf, SkippedSpan)>,
}

impl MergedRun {
    /// Whether every cell of the grid is present.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// The byte-stable CSV of the merged cells — identical to the
    /// whole-file CSV of an uninterrupted, unsharded run of the grid
    /// when the merge is complete.
    pub fn to_csv_string(&self) -> String {
        stored_csv_string(&self.cells)
    }

    /// The byte-stable zero-timing JSON run record of the merged cells.
    pub fn to_json_string(&self, grid: &str) -> String {
        stored_json_string(grid, &self.cells)
    }
}

/// Re-sequences a directory merge into `grid`'s expansion order,
/// reporting grid cells the logs do not cover and logged cells the
/// grid does not contain.
///
/// # Errors
///
/// Returns a description of a directory-listing or file-read failure.
pub fn merge_to_run(dir: &Path, grid: &GridSpec) -> Result<MergedRun, String> {
    let mut merged = merge_dir(dir)?;
    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for spec in grid.expand() {
        match merged.by_id.remove(&spec.id) {
            Some(cell) => cells.push(cell),
            None => missing.push(spec.key()),
        }
    }
    Ok(MergedRun {
        cells,
        missing,
        extras: merged.by_id.len(),
        skipped: merged.skipped,
    })
}

/// What one sharded (or resumed) invocation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRunStats {
    /// The shard that ran.
    pub shard: Shard,
    /// Cells of the grid this shard owns.
    pub owned: usize,
    /// Owned cells skipped because their records were already on disk.
    pub resumed: usize,
    /// Owned cells evaluated and appended by this invocation.
    pub evaluated: usize,
}

/// Runs `shard` of `grid` against the logs under `dir`, resumably:
/// loads the shard's own log, skips every owned cell already committed,
/// evaluates the rest on the shared pool in windows of `window` cells
/// (bounded memory — results are appended and dropped per window, with
/// an fsync at every record boundary), and returns the skip/evaluate
/// counts. Records land in strict expansion order within the
/// invocation, so a crash at any record boundary resumes exactly where
/// the log ends.
///
/// # Errors
///
/// Returns a description of any log I/O failure.
pub fn run_sharded(
    grid: &GridSpec,
    shard: Shard,
    dir: &Path,
    window: usize,
) -> Result<ShardRunStats, String> {
    let own_path = dir.join(shard_file_name(shard));
    let logged: HashSet<String> = load_shard(&own_path)
        .map_err(|e| format!("read {}: {e}", own_path.display()))?
        .cells
        .into_iter()
        .map(|c| c.id)
        .collect();
    let owned: Vec<CellSpec> = grid
        .expand()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| shard.owns(*i))
        .map(|(_, c)| c)
        .collect();
    let owned_count = owned.len();
    let pending: Vec<CellSpec> = owned
        .into_iter()
        .filter(|c| !logged.contains(&c.id))
        .collect();
    let resumed = owned_count - pending.len();
    resume_hits_counter().add(resumed as u64);
    let mut writer =
        ShardWriter::open(dir, shard).map_err(|e| format!("open {}: {e}", own_path.display()))?;
    let mut evaluated = 0;
    for chunk in pending.chunks(window.max(1)) {
        for result in runner::evaluate_cells(chunk.to_vec()) {
            writer
                .append(&StoredCell::from_evaluation(&result.spec, &result.metrics))
                .map_err(|e| format!("append {}: {e}", own_path.display()))?;
            evaluated += 1;
        }
    }
    Ok(ShardRunStats {
        shard,
        owned: owned_count,
        resumed,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{DatasetScale, PhaseSchedule};
    use crate::store::METRICS;
    use adagp_accel::{AdaGpDesign, Dataflow};
    use adagp_nn::models::CnnModel;

    /// A deterministic synthetic cell: real grid identity, metrics that
    /// are an awkward-but-finite function of the index (exercising the
    /// full-precision round trip without paying for evaluation).
    fn synthetic_cell(spec: &CellSpec, salt: u64) -> StoredCell {
        let mut metrics = [0.0f64; METRICS.len()];
        for (j, m) in metrics.iter_mut().enumerate() {
            let bits = (salt ^ (j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_mul(0x2545_f491_4f6c_dd1d);
            // Map to a finite float with plenty of mantissa noise.
            *m = (bits >> 11) as f64 / ((1u64 << 53) as f64) * 1e9 + j as f64;
        }
        StoredCell {
            id: spec.id.clone(),
            axes: [
                spec.dataflow.name().to_string(),
                spec.dataset.name().to_string(),
                spec.model.name().to_string(),
                spec.design.name().to_string(),
                spec.schedule.name().to_string(),
                spec.dram_bw_name(),
                spec.buffer_words_name(),
            ],
            metrics,
        }
    }

    fn grid() -> GridSpec {
        GridSpec {
            name: "shardlog-test".to_string(),
            models: vec![CnnModel::Vgg13, CnnModel::ResNet50, CnnModel::MobileNetV2],
            datasets: vec![DatasetScale::Cifar10],
            designs: AdaGpDesign::all().to_vec(),
            dataflows: vec![Dataflow::WeightStationary, Dataflow::RowStationary],
            schedules: vec![PhaseSchedule::Paper],
            bandwidths: vec![None],
            buffers: vec![None],
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adagp-shardlog-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_file_names_round_trip_and_reject_impostors() {
        for (k, n) in [(1, 1), (2, 4), (7, 7)] {
            let shard = Shard { k, n };
            assert_eq!(parse_shard_file_name(&shard_file_name(shard)), Some(shard));
        }
        for bad in [
            "shard-0-of-2.ndjson",
            "shard-3-of-2.ndjson",
            "shard-1-of-1.json",
            "shard-1.ndjson",
            "notashard-1-of-1.ndjson",
            "shard-x-of-y.ndjson",
        ] {
            assert_eq!(parse_shard_file_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn append_load_round_trips_records_bit_exactly() {
        let dir = tmp_dir("roundtrip");
        let cells: Vec<StoredCell> = grid()
            .expand()
            .iter()
            .enumerate()
            .map(|(i, s)| synthetic_cell(s, i as u64))
            .collect();
        let mut w = ShardWriter::open(&dir, Shard::default()).unwrap();
        for c in &cells {
            w.append(c).unwrap();
        }
        assert_eq!(w.appended(), cells.len() as u64);
        let load = load_shard(w.path()).unwrap();
        assert!(load.skipped.is_empty(), "{:?}", load.skipped);
        assert_eq!(load.cells.len(), cells.len());
        for (a, b) in load.cells.iter().zip(&cells) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.axes, b.axes);
            for (x, y) in a.metrics.iter().zip(&b.metrics) {
                assert_eq!(x.to_bits(), y.to_bits(), "{}", b.id);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_and_missing_dir_are_empty_not_errors() {
        let dir = tmp_dir("absent");
        let load = load_shard(&dir.join("shard-1-of-1.ndjson")).unwrap();
        assert!(load.cells.is_empty() && load.skipped.is_empty());
        let merged = merge_dir(&dir).unwrap();
        assert!(merged.by_id.is_empty() && merged.files.is_empty());
    }

    #[test]
    fn every_partition_merges_to_the_same_bytes_as_the_unsharded_run() {
        // The tentpole property: for n ∈ {1, 2, 4, 7}, writing each
        // shard's cells to its own file — deliberately in a scrambled
        // per-shard order, with duplicate stale appends injected —
        // merges back to the exact bytes of the 1/1 run.
        let g = grid();
        let specs = g.expand();
        let cells: Vec<StoredCell> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| synthetic_cell(s, i as u64))
            .collect();

        let reference = {
            let dir = tmp_dir("partition-ref");
            let mut w = ShardWriter::open(&dir, Shard::default()).unwrap();
            for c in &cells {
                w.append(c).unwrap();
            }
            let run = merge_to_run(&dir, &g).unwrap();
            assert!(run.is_complete());
            let bytes = (run.to_csv_string(), run.to_json_string(&g.name));
            std::fs::remove_dir_all(&dir).ok();
            bytes
        };
        // The reference equals the whole-file form exactly.
        assert_eq!(reference.0, stored_csv_string(&cells));
        assert_eq!(reference.1, stored_json_string(&g.name, &cells));

        for n in [2u32, 4, 7] {
            let dir = tmp_dir(&format!("partition-{n}"));
            for k in 1..=n {
                let shard = Shard { k, n };
                let mut owned: Vec<&StoredCell> = cells
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| shard.owns(*i))
                    .map(|(_, c)| c)
                    .collect();
                // Scramble the append order deterministically and
                // prepend a stale duplicate of the first owned cell
                // (wrong metrics) that the real record must overwrite.
                owned.reverse();
                let mut w = ShardWriter::open(&dir, shard).unwrap();
                if let Some(first) = owned.last() {
                    let mut stale = (*first).clone();
                    stale.metrics[0] = -1.0;
                    w.append(&stale).unwrap();
                }
                for c in owned {
                    w.append(c).unwrap();
                }
            }
            let run = merge_to_run(&dir, &g).unwrap();
            assert!(run.is_complete(), "n={n}: {:?}", run.missing);
            assert_eq!(run.extras, 0);
            assert_eq!(run.to_csv_string(), reference.0, "CSV differs at n={n}");
            assert_eq!(
                run.to_json_string(&g.name),
                reference.1,
                "JSON differs at n={n}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn duplicate_appends_are_last_write_wins_within_and_across_files() {
        let g = grid();
        let spec = &g.expand()[0];
        let dir = tmp_dir("lww");
        // Same ID three times in shard 1/2 — the last one must win...
        let mut w = ShardWriter::open(&dir, Shard { k: 1, n: 2 }).unwrap();
        for salt in [10, 11, 12] {
            w.append(&synthetic_cell(spec, salt)).unwrap();
        }
        // ...unless a later-merging file (2/2 after 1/2) writes it again.
        let mut w2 = ShardWriter::open(&dir, Shard { k: 2, n: 2 }).unwrap();
        w2.append(&synthetic_cell(spec, 99)).unwrap();
        let merged = merge_dir(&dir).unwrap();
        assert_eq!(merged.records, 4);
        assert_eq!(merged.by_id.len(), 1);
        let expect = synthetic_cell(spec, 99);
        assert_eq!(
            merged.by_id[&spec.id].metrics[0].to_bits(),
            expect.metrics[0].to_bits()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_skipped_with_its_line_number_and_resume_completes_it() {
        let dir = tmp_dir("torn");
        let g = grid();
        let specs = g.expand();
        let cells: Vec<StoredCell> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| synthetic_cell(s, i as u64))
            .collect();
        let mut w = ShardWriter::open(&dir, Shard::default()).unwrap();
        for c in &cells[..5] {
            w.append(c).unwrap();
        }
        drop(w);
        // Tear the sixth record by hand: half its bytes, no newline.
        let path = dir.join(shard_file_name(Shard::default()));
        let mut torn = record_line(&cells[5]);
        torn.truncate(torn.len() / 2);
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(torn.as_bytes()).unwrap();
        }
        let load = load_shard(&path).unwrap();
        assert_eq!(load.cells.len(), 5, "intact records all recovered");
        assert_eq!(load.skipped.len(), 1);
        assert_eq!(load.skipped[0].first_line, 6);
        assert!(
            load.skipped[0].reason.contains("torn tail"),
            "{:?}",
            load.skipped
        );
        assert!(load.skipped[0].to_string().starts_with("line 6:"));

        // Re-opening the writer self-heals the torn tail: it terminates
        // the torn line with a newline before the first resumed append,
        // so new records never concatenate onto the torn bytes. The
        // torn line stays in the file (append-only — committed bytes
        // are never rewritten) and reads back as one undecodable span;
        // the torn cell itself is re-appended by resume, since its ID
        // never made it into the committed set.
        let mut w = ShardWriter::open(&dir, Shard::default()).unwrap();
        for c in &cells[5..] {
            w.append(c).unwrap();
        }
        let load = load_shard(&path).unwrap();
        assert_eq!(load.skipped.len(), 1, "{:?}", load.skipped);
        assert_eq!(load.skipped[0].first_line, 6);
        assert_eq!(load.cells.len(), cells.len());
        // The merge completes: the line-6 casualty was re-appended
        // as a later record (cells[5] is in the tail we just wrote).
        let run = merge_to_run(&dir, &g).unwrap();
        assert!(run.is_complete(), "{:?}", run.missing);
        assert_eq!(run.to_csv_string(), stored_csv_string(&cells));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_sharded_resumes_and_merges_byte_identically() {
        // Real evaluations: a 4-cell slice, run 2/2-sharded with an
        // interruption (simulated by running shard 1 only), resumed,
        // merged — bytes equal the uninterrupted unsharded log run.
        let g = GridSpec {
            name: "shardlog-real".to_string(),
            models: vec![CnnModel::Vgg13, CnnModel::ResNet50],
            datasets: vec![DatasetScale::Cifar10],
            designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
            dataflows: vec![Dataflow::WeightStationary],
            schedules: vec![PhaseSchedule::Paper],
            bandwidths: vec![None],
            buffers: vec![None],
        };
        let ref_dir = tmp_dir("real-ref");
        let stats = run_sharded(&g, Shard::default(), &ref_dir, 2).unwrap();
        assert_eq!((stats.owned, stats.resumed, stats.evaluated), (4, 0, 4));
        let reference = merge_to_run(&ref_dir, &g).unwrap();
        assert!(reference.is_complete());

        let dir = tmp_dir("real-sharded");
        let s1 = run_sharded(&g, Shard { k: 1, n: 2 }, &dir, 1).unwrap();
        assert_eq!((s1.owned, s1.resumed, s1.evaluated), (2, 0, 2));
        // "Crash" before shard 2 ran; merge is incomplete.
        let partial = merge_to_run(&dir, &g).unwrap();
        assert_eq!(partial.missing.len(), 2);
        // Resume shard 1 (everything already committed) and run shard 2.
        let s1b = run_sharded(&g, Shard { k: 1, n: 2 }, &dir, 1).unwrap();
        assert_eq!((s1b.resumed, s1b.evaluated), (2, 0));
        let s2 = run_sharded(&g, Shard { k: 2, n: 2 }, &dir, 1).unwrap();
        assert_eq!((s2.resumed, s2.evaluated), (0, 2));
        let run = merge_to_run(&dir, &g).unwrap();
        assert!(run.is_complete());
        assert_eq!(run.to_csv_string(), reference.to_csv_string());
        assert_eq!(
            run.to_json_string(&g.name),
            reference.to_json_string(&g.name)
        );
        // And the merged CSV equals the classic in-memory run's CSV.
        let direct = crate::store::to_csv_string(&runner::run_grid(&g));
        assert_eq!(run.to_csv_string(), direct);
        std::fs::remove_dir_all(&ref_dir).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_reports_extras_and_missing() {
        let g = grid();
        let specs = g.expand();
        let dir = tmp_dir("extras");
        let mut w = ShardWriter::open(&dir, Shard::default()).unwrap();
        w.append(&synthetic_cell(&specs[0], 1)).unwrap();
        let foreign = CellSpec::new(
            Dataflow::OutputStationary,
            DatasetScale::ImageNet,
            CnnModel::Vgg19,
            AdaGpDesign::Low,
            PhaseSchedule::SteadyOnly,
        );
        w.append(&synthetic_cell(&foreign, 2)).unwrap();
        let run = merge_to_run(&dir, &g).unwrap();
        assert_eq!(run.cells.len(), 1);
        assert_eq!(run.missing.len(), specs.len() - 1);
        assert_eq!(run.extras, 1);
        assert!(!run.is_complete());
        std::fs::remove_dir_all(&dir).ok();
    }
}
