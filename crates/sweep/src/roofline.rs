//! Bandwidth-roofline analysis: for each grid cell, the smallest DRAM
//! bandwidth at which the simulated ADA-GP training run comes within
//! [`KNEE_TOLERANCE`] of its contention-free cycles — the model's
//! *roofline knee*. Below the knee the memory system stalls the paper's
//! per-layer overlap windows; above it extra bandwidth buys nothing.
//!
//! The search leans on a property the simulator guarantees (and
//! `crates/sim/tests/contention_properties.rs` sweeps): the simulated
//! makespan is monotone non-increasing in `dram_words_per_cycle`, so the
//! knee is well-defined and binary search finds it exactly. The
//! contention-free reference is the `no_contention` simulation, which
//! equals the analytic closed form bit-for-bit — the knee is therefore
//! anchored to the same number the figures print.
//!
//! Knees are memoized per (cell-sans-bandwidth, buffer, batch, ports,
//! tolerance): the `bandwidth` preset revisits the same (model, buffer)
//! point once per bandwidth axis value, and the fig17-sized grids ask
//! once per cell.

use crate::grid::{CellSpec, GridSpec};
use crate::shapes::cached_shapes;
use crate::simeval::cell_sim_config;
use crate::store::csv_float;
use adagp_accel::layer_cost::PredictorCostModel;
use adagp_accel::speedup::EpochMix;
use adagp_accel::{AcceleratorConfig, AdaGpDesign};
use adagp_sim::{model_sim_layers, simulate_batch, Phase, SimConfig, SimLayer};
use std::collections::HashMap;
use std::sync::Mutex;

/// Relative slack over the contention-free cycles that still counts as
/// "at the roofline" (1%).
pub const KNEE_TOLERANCE: f64 = 0.01;

/// Upper end of the knee search range (words/cycle). A cell that is not
/// within tolerance even here reports the cap itself — by monotonicity
/// that only happens when per-task streaming *latency* (not bandwidth)
/// dominates, which no paper-scale model exhibits.
pub const KNEE_MAX_BW: u64 = 1 << 20;

/// Simulated ADA-GP training cycles (the [`adagp_sim::StepSim`] epoch
/// weighting) from just the two batches it needs — the knee search calls
/// this dozens of times per cell, so the baseline batch is skipped.
fn adagp_training_cycles(
    design: AdaGpDesign,
    layers: &[SimLayer],
    mix: &EpochMix,
    cfg: &SimConfig,
) -> f64 {
    let bp = simulate_batch(Phase::Bp, Some(design), layers, cfg).makespan() as f64;
    let gp = simulate_batch(Phase::Gp, Some(design), layers, cfg).makespan() as f64;
    mix.stages()
        .iter()
        .map(|&(g, epochs)| epochs as f64 * (g * gp + (1.0 - g) * bp))
        .sum()
}

/// Smallest bandwidth in `[1, KNEE_MAX_BW]` whose simulated training
/// cycles are within `tolerance` of `free_cycles`, by binary search on
/// the monotone bandwidth→cycles curve.
fn knee_search(
    design: AdaGpDesign,
    layers: &[SimLayer],
    mix: &EpochMix,
    cfg: &SimConfig,
    free_cycles: f64,
    tolerance: f64,
) -> u64 {
    let target = free_cycles * (1.0 + tolerance);
    let at = |bw: u64| adagp_training_cycles(design, layers, mix, &cfg.with_bandwidth(bw));
    if at(KNEE_MAX_BW) > target {
        return KNEE_MAX_BW; // capped: even the top of the range stalls
    }
    let (mut lo, mut hi) = (1u64, KNEE_MAX_BW); // invariant: at(hi) ≤ target
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if at(mid) <= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

fn knee_cache() -> &'static Mutex<HashMap<KneeMemoKey, u64>> {
    static CACHE: std::sync::OnceLock<Mutex<HashMap<KneeMemoKey, u64>>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Everything the knee search needs about one cell, built once.
struct CellCurve {
    layers: Vec<SimLayer>,
    mix: EpochMix,
    cfg: SimConfig,
    /// Contention-free ADA-GP training cycles (== the analytic form).
    free: f64,
}

fn cell_curve(spec: &CellSpec, base: &SimConfig) -> CellCurve {
    let cfg = cell_sim_config(spec, base);
    let shapes = cached_shapes(spec.model, spec.dataset.input_scale());
    let layers = model_sim_layers(
        &AcceleratorConfig::default(),
        spec.dataflow,
        &PredictorCostModel::default(),
        &shapes,
        &cfg,
    );
    let mix = spec.schedule.mix();
    let free = adagp_training_cycles(
        spec.design,
        &layers,
        &mix,
        &SimConfig {
            batch: cfg.batch,
            ..SimConfig::no_contention()
        },
    );
    CellCurve {
        layers,
        mix,
        cfg,
        free,
    }
}

/// Memo key of one cell's knee. The cell's own bandwidth value is
/// deliberately absent — the knee *is* the bandwidth sweep — but every
/// other input that shapes the curve is a **named field**: a new
/// curve-shaping knob must be added here explicitly (and shows up in
/// `Debug`/`Eq`), so it cannot silently alias two distinct curves into
/// one memo slot the way an ad-hoc format string could. Derivable from
/// the resolved config alone, so callers can check the cache before
/// building a [`CellCurve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KneeMemoKey {
    /// Dataflow display name (all axis names are `&'static str`s from
    /// the enums' `name()`, so keys are cheap to build and hash).
    pub dataflow: &'static str,
    /// Dataset display name.
    pub dataset: &'static str,
    /// Model display name.
    pub model: &'static str,
    /// Design display name.
    pub design: &'static str,
    /// Phase-schedule name.
    pub schedule: &'static str,
    /// Resolved buffer capacity override (words), `None` = unbounded.
    pub buffer_words: Option<u64>,
    /// Resolved simulation batch size.
    pub batch: usize,
    /// DRAM channel port multiplicity.
    pub dram_ports: u32,
    /// PE-array port multiplicity.
    pub pe_ports: u32,
    /// Predictor-unit port multiplicity.
    pub pred_ports: u32,
    /// Knee tolerance as raw bits (`f64::to_bits`), keeping the key `Eq`
    /// + `Hash` without float-comparison pitfalls.
    pub tolerance_bits: u64,
}

impl KneeMemoKey {
    /// Builds the memo key of `spec`'s knee under the resolved simulator
    /// config and search tolerance.
    pub fn new(spec: &CellSpec, cfg: &SimConfig, tolerance: f64) -> KneeMemoKey {
        KneeMemoKey {
            dataflow: spec.dataflow.name(),
            dataset: spec.dataset.name(),
            model: spec.model.name(),
            design: spec.design.name(),
            schedule: spec.schedule.name(),
            buffer_words: cfg.buffer_words,
            batch: cfg.batch,
            dram_ports: cfg.dram_ports,
            pe_ports: cfg.pe_ports,
            pred_ports: cfg.pred_ports,
            tolerance_bits: tolerance.to_bits(),
        }
    }
}

/// Memoized knee of a built curve.
fn knee_of_curve(spec: &CellSpec, curve: &CellCurve, tolerance: f64) -> u64 {
    let key = KneeMemoKey::new(spec, &curve.cfg, tolerance);
    if let Some(&knee) = knee_cache().lock().unwrap().get(&key) {
        return knee;
    }
    let knee = knee_search(
        spec.design,
        &curve.layers,
        &curve.mix,
        &curve.cfg,
        curve.free,
        tolerance,
    );
    knee_cache().lock().unwrap().insert(key, knee);
    knee
}

/// The roofline knee of one cell (words/cycle), memoized. A memo hit
/// costs only the key lookup — the layer list and the contention-free
/// reference simulations are built only on a miss.
pub fn cell_knee(spec: &CellSpec, base: &SimConfig, tolerance: f64) -> u64 {
    let cfg = cell_sim_config(spec, base);
    if let Some(&knee) = knee_cache()
        .lock()
        .unwrap()
        .get(&KneeMemoKey::new(spec, &cfg, tolerance))
    {
        return knee;
    }
    knee_of_curve(spec, &cell_curve(spec, base), tolerance)
}

/// One cell's roofline summary.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// The grid point analyzed.
    pub spec: CellSpec,
    /// Contention-free ADA-GP training cycles (bit-identical to the
    /// analytic closed form).
    pub free_cycles: f64,
    /// The roofline knee: smallest bandwidth (words/cycle) within
    /// tolerance of `free_cycles` ([`KNEE_MAX_BW`] caps the search).
    pub knee_words_per_cycle: u64,
    /// Simulated training cycles at the knee bandwidth.
    pub knee_cycles: f64,
    /// Simulated training cycles at the cell's configured bandwidth.
    pub sim_cycles: f64,
    /// Epoch-weighted spill cycles at the cell's configured bandwidth.
    pub spill_cycles: f64,
    /// Fraction of `sim_cycles` that is memory stall (bandwidth + spill):
    /// `(sim_cycles − free_cycles) / sim_cycles`, 0 when contention-free.
    pub dram_stall_frac: f64,
}

/// Analyzes one cell: knee (memoized), contention-free reference and the
/// stall breakdown at the cell's configured bandwidth.
pub fn cell_roofline(spec: &CellSpec, base: &SimConfig, tolerance: f64) -> RooflinePoint {
    let curve = cell_curve(spec, base);
    let knee = knee_of_curve(spec, &curve, tolerance);
    let knee_cycles = adagp_training_cycles(
        spec.design,
        &curve.layers,
        &curve.mix,
        &curve.cfg.with_bandwidth(knee),
    );
    let step = adagp_sim::StepSim::run(spec.design, &curve.layers, &curve.mix, &curve.cfg);
    let sim_cycles = step.adagp_training_cycles();
    RooflinePoint {
        spec: spec.clone(),
        free_cycles: curve.free,
        knee_words_per_cycle: knee,
        knee_cycles,
        sim_cycles,
        spill_cycles: step.adagp_spill_cycles(),
        dram_stall_frac: ((sim_cycles - curve.free) / sim_cycles).max(0.0),
    }
}

/// Roofline analysis of every cell of `grid`, in expansion order, on the
/// shared runtime pool (thread-count invariant like the other runners).
pub fn run_roofline_grid(grid: &GridSpec, base: &SimConfig, tolerance: f64) -> Vec<RooflinePoint> {
    adagp_runtime::pool().parallel_map(grid.expand(), |spec| cell_roofline(&spec, base, tolerance))
}

/// Column layout of the roofline CSV.
pub const ROOFLINE_CSV_HEADER: [&str; 14] = [
    "id",
    "dataflow",
    "dataset",
    "model",
    "design",
    "schedule",
    "dram_bw",
    "buffer_words",
    "knee_words_per_cycle",
    "free_cycles",
    "knee_cycles",
    "sim_cycles",
    "spill_cycles",
    "dram_stall_frac",
];

/// Renders roofline points as byte-stable CSV (integers verbatim, floats
/// at the store's fixed precision).
pub fn roofline_csv(points: &[RooflinePoint]) -> String {
    let mut out = String::new();
    out.push_str(&ROOFLINE_CSV_HEADER.join(","));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            p.spec.id,
            p.spec.dataflow.name(),
            p.spec.dataset.name(),
            p.spec.model.name(),
            p.spec.design.name(),
            p.spec.schedule.name(),
            p.spec.dram_bw_name(),
            p.spec.buffer_words_name(),
            p.knee_words_per_cycle,
            csv_float(p.free_cycles),
            csv_float(p.knee_cycles),
            csv_float(p.sim_cycles),
            csv_float(p.spill_cycles),
            csv_float(p.dram_stall_frac),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{DatasetScale, PhaseSchedule};
    use adagp_accel::Dataflow;
    use adagp_nn::models::CnnModel;

    fn cell(buffer: Option<u64>) -> CellSpec {
        CellSpec::with_contention(
            Dataflow::WeightStationary,
            DatasetScale::Cifar10,
            CnnModel::Vgg13,
            AdaGpDesign::Max,
            PhaseSchedule::Paper,
            None,
            buffer,
        )
    }

    #[test]
    fn knee_is_within_tolerance_and_minimal() {
        let base = SimConfig::default();
        let p = cell_roofline(&cell(None), &base, KNEE_TOLERANCE);
        assert!(p.knee_words_per_cycle >= 1);
        assert!(p.knee_words_per_cycle < KNEE_MAX_BW, "finite knee expected");
        assert!(p.knee_cycles <= p.free_cycles * (1.0 + KNEE_TOLERANCE));
        // One step below the knee must violate the tolerance (minimality).
        if p.knee_words_per_cycle > 1 {
            let shapes = cached_shapes(CnnModel::Vgg13, DatasetScale::Cifar10.input_scale());
            let cfg = cell_sim_config(&cell(None), &base);
            let layers = model_sim_layers(
                &AcceleratorConfig::default(),
                Dataflow::WeightStationary,
                &PredictorCostModel::default(),
                &shapes,
                &cfg,
            );
            let below = adagp_training_cycles(
                AdaGpDesign::Max,
                &layers,
                &PhaseSchedule::Paper.mix(),
                &cfg.with_bandwidth(p.knee_words_per_cycle - 1),
            );
            assert!(below > p.free_cycles * (1.0 + KNEE_TOLERANCE));
        }
    }

    #[test]
    fn smaller_buffer_never_lowers_the_knee() {
        let base = SimConfig::default();
        let big = cell_roofline(&cell(Some(1 << 22)), &base, KNEE_TOLERANCE);
        let small = cell_roofline(&cell(Some(1 << 13)), &base, KNEE_TOLERANCE);
        assert!(small.knee_words_per_cycle >= big.knee_words_per_cycle);
        assert!(small.spill_cycles >= big.spill_cycles);
    }

    #[test]
    fn memoized_knee_matches_the_direct_search() {
        let base = SimConfig::default();
        let spec = cell(Some(1 << 14));
        let curve = cell_curve(&spec, &base);
        let direct = knee_search(
            AdaGpDesign::Max,
            &curve.layers,
            &curve.mix,
            &curve.cfg,
            curve.free,
            KNEE_TOLERANCE,
        );
        assert_eq!(cell_knee(&spec, &base, KNEE_TOLERANCE), direct);
        assert_eq!(cell_knee(&spec, &base, KNEE_TOLERANCE), direct); // cached
    }

    #[test]
    fn memo_key_ignores_bandwidth_but_separates_every_curve_knob() {
        let base = SimConfig::default();
        let key =
            |spec: &CellSpec, tol: f64| KneeMemoKey::new(spec, &cell_sim_config(spec, &base), tol);
        let with_bw = |bw: Option<u64>, buf: Option<u64>| {
            CellSpec::with_contention(
                Dataflow::WeightStationary,
                DatasetScale::Cifar10,
                CnnModel::Vgg13,
                AdaGpDesign::Max,
                PhaseSchedule::Paper,
                bw,
                buf,
            )
        };
        // Bandwidth-axis siblings share one memo slot: the knee search is
        // itself the bandwidth sweep.
        assert_eq!(
            key(&with_bw(None, Some(1 << 14)), KNEE_TOLERANCE),
            key(&with_bw(Some(64), Some(1 << 14)), KNEE_TOLERANCE)
        );
        // Every other curve-shaping knob keys a distinct slot.
        assert_ne!(
            key(&with_bw(None, Some(1 << 14)), KNEE_TOLERANCE),
            key(&with_bw(None, Some(1 << 15)), KNEE_TOLERANCE)
        );
        assert_ne!(
            key(&cell(None), KNEE_TOLERANCE),
            key(&cell(None), KNEE_TOLERANCE * 2.0)
        );
        let mut other_ports = cell_sim_config(&cell(None), &base);
        other_ports.dram_ports += 1;
        assert_ne!(
            KneeMemoKey::new(&cell(None), &other_ports, KNEE_TOLERANCE),
            key(&cell(None), KNEE_TOLERANCE)
        );
        let mut other_batch = cell_sim_config(&cell(None), &base);
        other_batch.batch += 1;
        assert_ne!(
            KneeMemoKey::new(&cell(None), &other_batch, KNEE_TOLERANCE),
            key(&cell(None), KNEE_TOLERANCE)
        );
    }

    #[test]
    fn stall_fraction_is_a_proper_fraction_and_zero_without_contention() {
        let p = cell_roofline(&cell(None), &SimConfig::default(), KNEE_TOLERANCE);
        assert!(
            (0.0..1.0).contains(&p.dram_stall_frac),
            "{}",
            p.dram_stall_frac
        );
        let free = cell_roofline(&cell(None), &SimConfig::no_contention(), KNEE_TOLERANCE);
        assert_eq!(free.dram_stall_frac, 0.0);
        assert_eq!(free.spill_cycles, 0.0);
        assert_eq!(free.sim_cycles.to_bits(), free.free_cycles.to_bits());
    }

    #[test]
    fn csv_is_byte_stable_and_well_formed() {
        let base = SimConfig::default();
        let points: Vec<RooflinePoint> = [Some(1 << 14), None]
            .iter()
            .map(|&b| cell_roofline(&cell(b), &base, KNEE_TOLERANCE))
            .collect();
        let a = roofline_csv(&points);
        let b = roofline_csv(&points);
        assert_eq!(a, b);
        for line in a.lines().skip(1) {
            assert_eq!(line.split(',').count(), ROOFLINE_CSV_HEADER.len());
        }
    }
}
