//! Cell-by-cell comparison of two stored runs — the cross-PR result
//! tracker.
//!
//! Cells are matched by their content-derived ID (so axis reordering or
//! grid growth between runs never misaligns the comparison), and every
//! metric is compared with a configurable relative tolerance. A delta is
//! a *regression* when it moves against the metric's direction
//! ([`Metric::higher_is_better`]): speed-up down, cycles/energy up.

use crate::store::{Metric, StoredCell, StoredRun, METRICS};
use std::collections::HashMap;

/// Tolerances for the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Relative deltas with magnitude ≤ `rel_tol` count as unchanged.
    /// The default (`2e-6`) absorbs the CSV's fixed-precision
    /// quantization of values of typical magnitude while flagging any
    /// real model change.
    pub rel_tol: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig { rel_tol: 2e-6 }
    }
}

/// One metric delta that exceeded the tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// The cell's readable key (`dataflow/dataset/model/design/schedule`).
    pub cell: String,
    /// Which metric moved.
    pub metric: Metric,
    /// Value in the `before` run.
    pub before: f64,
    /// Value in the `after` run.
    pub after: f64,
    /// `(after - before) / |before|`.
    pub rel_delta: f64,
}

impl MetricDelta {
    fn describe(&self) -> String {
        format!(
            "{}: {} {:.6} -> {:.6} ({:+.4}%)",
            self.cell,
            self.metric.name,
            self.before,
            self.after,
            100.0 * self.rel_delta
        )
    }
}

/// The outcome of diffing two runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Deltas that moved against their metric's direction.
    pub regressions: Vec<MetricDelta>,
    /// Deltas that moved with their metric's direction.
    pub improvements: Vec<MetricDelta>,
    /// Keys of cells present only in the `before` run.
    pub only_in_before: Vec<String>,
    /// Keys of cells present only in the `after` run.
    pub only_in_after: Vec<String>,
    /// Number of cells matched by ID between the runs.
    pub matched_cells: usize,
}

impl DiffReport {
    /// Whether any metric regressed (missing cells are not regressions —
    /// grids legitimately grow and shrink across PRs; they are reported
    /// separately).
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "matched {} cells: {} regression(s), {} improvement(s)\n",
            self.matched_cells,
            self.regressions.len(),
            self.improvements.len()
        );
        for d in &self.regressions {
            out.push_str(&format!("  REGRESSED  {}\n", d.describe()));
        }
        for d in &self.improvements {
            out.push_str(&format!("  improved   {}\n", d.describe()));
        }
        for k in &self.only_in_before {
            out.push_str(&format!("  only in before: {k}\n"));
        }
        for k in &self.only_in_after {
            out.push_str(&format!("  only in after:  {k}\n"));
        }
        out
    }
}

/// Compares `after` against `before` cell-by-cell. Only the metrics both
/// runs carry are compared (a legacy schema-v1 run diffs against a fresh
/// one over their shared five analytic metrics).
pub fn diff_runs(before: &StoredRun, after: &StoredRun, cfg: &DiffConfig) -> DiffReport {
    let after_by_id: HashMap<&str, &StoredCell> =
        after.cells.iter().map(|c| (c.id.as_str(), c)).collect();
    let before_ids: std::collections::HashSet<&str> =
        before.cells.iter().map(|c| c.id.as_str()).collect();
    let shared_metrics = before
        .metric_count
        .min(after.metric_count)
        .min(METRICS.len());

    let mut report = DiffReport::default();
    for b in &before.cells {
        let Some(a) = after_by_id.get(b.id.as_str()) else {
            report.only_in_before.push(b.key());
            continue;
        };
        report.matched_cells += 1;
        for (i, metric) in METRICS.iter().take(shared_metrics).enumerate() {
            let (old, new) = (b.metrics[i], a.metrics[i]);
            let denom = old.abs().max(f64::MIN_POSITIVE);
            let rel_delta = (new - old) / denom;
            if rel_delta.abs() <= cfg.rel_tol {
                continue;
            }
            let delta = MetricDelta {
                cell: b.key(),
                metric: *metric,
                before: old,
                after: new,
                rel_delta,
            };
            let improved = metric.higher_is_better == (rel_delta > 0.0);
            if improved {
                report.improvements.push(delta);
            } else {
                report.regressions.push(delta);
            }
        }
    }
    for a in &after.cells {
        if !before_ids.contains(a.id.as_str()) {
            report.only_in_after.push(a.key());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoredCell;

    fn cell(id: &str, speedup: f64) -> StoredCell {
        StoredCell {
            id: id.to_string(),
            axes: [
                "WS".into(),
                "Cifar10".into(),
                "VGG13".into(),
                "ADA-GP-MAX".into(),
                "paper".into(),
                "default".into(),
                "default".into(),
            ],
            metrics: [
                speedup, 100.0, 50.0, 10.0, 5.0, 55.0, 0.9, 0.5, 120.0, 0.1, 48.0,
            ],
        }
    }

    fn run(cells: Vec<StoredCell>) -> StoredRun {
        StoredRun {
            cells,
            ..StoredRun::default()
        }
    }

    #[test]
    fn identical_runs_diff_clean() {
        let a = run(vec![cell("aa", 1.5), cell("bb", 1.4)]);
        let r = diff_runs(&a, &a.clone(), &DiffConfig::default());
        assert!(!r.has_regressions());
        assert!(r.improvements.is_empty());
        assert_eq!(r.matched_cells, 2);
    }

    #[test]
    fn quantization_noise_is_tolerated() {
        let a = run(vec![cell("aa", 1.5)]);
        let b = run(vec![cell("aa", 1.5 * (1.0 - 1e-7))]);
        let r = diff_runs(&a, &b, &DiffConfig::default());
        assert!(!r.has_regressions());
    }

    #[test]
    fn speedup_drop_is_a_regression_and_rise_an_improvement() {
        let a = run(vec![cell("aa", 1.5)]);
        let down = run(vec![cell("aa", 1.2)]);
        let up = run(vec![cell("aa", 1.8)]);
        let r = diff_runs(&a, &down, &DiffConfig::default());
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].metric.name, "speedup");
        assert!(r.regressions[0].rel_delta < 0.0);
        let r = diff_runs(&a, &up, &DiffConfig::default());
        assert!(!r.has_regressions());
        assert_eq!(r.improvements.len(), 1);
    }

    #[test]
    fn cycle_increase_is_a_regression() {
        let a = run(vec![cell("aa", 1.5)]);
        let mut worse = cell("aa", 1.5);
        worse.metrics[2] *= 1.01; // adagp_cycles up 1%
        let r = diff_runs(&a, &run(vec![worse]), &DiffConfig::default());
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].metric.name, "adagp_cycles");
    }

    #[test]
    fn unmatched_cells_are_reported_not_regressed() {
        let a = run(vec![cell("aa", 1.5), cell("bb", 1.4)]);
        let b = run(vec![cell("aa", 1.5), cell("cc", 1.3)]);
        let r = diff_runs(&a, &b, &DiffConfig::default());
        assert!(!r.has_regressions());
        assert_eq!(r.matched_cells, 1);
        assert_eq!(r.only_in_before.len(), 1);
        assert_eq!(r.only_in_after.len(), 1);
    }

    #[test]
    fn tolerance_is_configurable() {
        let a = run(vec![cell("aa", 1.5)]);
        let b = run(vec![cell("aa", 1.5 * 0.99)]); // −1%
        assert!(diff_runs(&a, &b, &DiffConfig::default()).has_regressions());
        let loose = DiffConfig { rel_tol: 0.05 };
        assert!(!diff_runs(&a, &b, &loose).has_regressions());
    }

    #[test]
    fn report_renders_every_section() {
        let a = run(vec![cell("aa", 1.5), cell("bb", 1.4)]);
        let mut faster = cell("aa", 1.9);
        faster.metrics[4] *= 2.0; // energy doubled: regression
        let b = run(vec![faster, cell("cc", 1.0)]);
        let text = diff_runs(&a, &b, &DiffConfig::default()).render();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("improved"));
        assert!(text.contains("only in before"));
        assert!(text.contains("only in after"));
    }
}
