//! Named grids: the sweeps the paper's figures are points on, plus a tiny
//! smoke grid for CI.

use crate::grid::{DatasetScale, GridSpec, PhaseSchedule};
use adagp_accel::{AdaGpDesign, Dataflow};
use adagp_nn::models::CnnModel;

/// The speed-up figure grid for one baseline dataflow: all 13 models ×
/// 3 datasets × 3 designs under the paper schedule (one of Figs 17–19).
pub fn speedup_figure(df: Dataflow) -> GridSpec {
    GridSpec {
        name: match df {
            Dataflow::WeightStationary => "fig17-ws",
            Dataflow::RowStationary => "fig18-rs",
            Dataflow::InputStationary => "fig19-is",
            Dataflow::OutputStationary => "speedup-os",
        }
        .to_string(),
        models: CnnModel::all().to_vec(),
        datasets: DatasetScale::all().to_vec(),
        designs: AdaGpDesign::all().to_vec(),
        dataflows: vec![df],
        schedules: vec![PhaseSchedule::Paper],
    }
}

/// Figure 21's grid: per-model memory energy for the Efficient and MAX
/// designs at CIFAR scale (the energy metrics carry the result; the
/// baseline column is the `baseline_energy_j` metric of any design row).
pub fn energy() -> GridSpec {
    GridSpec {
        name: "energy".to_string(),
        models: CnnModel::all().to_vec(),
        datasets: vec![DatasetScale::Cifar10],
        designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
        dataflows: vec![Dataflow::WeightStationary],
        schedules: vec![PhaseSchedule::Paper],
    }
}

/// Every dataflow (including Output-Stationary, which the figures skip) ×
/// every design for one representative model per family — the ablation
/// surface ROADMAP's sweep item asked for.
pub fn dataflows() -> GridSpec {
    GridSpec {
        name: "dataflows".to_string(),
        models: vec![
            CnnModel::ResNet50,
            CnnModel::InceptionV3,
            CnnModel::Vgg13,
            CnnModel::DenseNet121,
            CnnModel::MobileNetV2,
        ],
        datasets: vec![DatasetScale::Cifar10, DatasetScale::ImageNet],
        designs: AdaGpDesign::all().to_vec(),
        dataflows: Dataflow::all().to_vec(),
        schedules: vec![PhaseSchedule::Paper],
    }
}

/// Phase-schedule sensitivity: how much of the speed-up each epoch mix
/// keeps, across designs.
pub fn schedules() -> GridSpec {
    GridSpec {
        name: "schedules".to_string(),
        models: vec![CnnModel::Vgg13, CnnModel::ResNet50, CnnModel::MobileNetV2],
        datasets: vec![DatasetScale::Cifar10],
        designs: AdaGpDesign::all().to_vec(),
        dataflows: vec![Dataflow::WeightStationary],
        schedules: PhaseSchedule::all().to_vec(),
    }
}

/// The CI smoke grid: 2 models × 2 designs (4 cells), small enough to run
/// in milliseconds and diff against a committed golden CSV.
pub fn smoke() -> GridSpec {
    GridSpec {
        name: "smoke".to_string(),
        models: vec![CnnModel::Vgg13, CnnModel::ResNet50],
        datasets: vec![DatasetScale::Cifar10],
        designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
        dataflows: vec![Dataflow::WeightStationary],
        schedules: vec![PhaseSchedule::Paper],
    }
}

/// Every named preset, in CLI listing order.
pub fn all() -> Vec<GridSpec> {
    vec![
        speedup_figure(Dataflow::WeightStationary),
        speedup_figure(Dataflow::RowStationary),
        speedup_figure(Dataflow::InputStationary),
        energy(),
        dataflows(),
        schedules(),
        smoke(),
    ]
}

/// Looks a preset up by its name.
pub fn by_name(name: &str) -> Option<GridSpec> {
    all().into_iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names_are_unique_and_resolvable() {
        let presets = all();
        let names: std::collections::HashSet<_> = presets.iter().map(|g| g.name.clone()).collect();
        assert_eq!(names.len(), presets.len());
        for g in &presets {
            assert_eq!(by_name(&g.name).as_ref(), Some(g));
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn figure_presets_match_figure_shapes() {
        let fig17 = speedup_figure(Dataflow::WeightStationary);
        assert_eq!(fig17.name, "fig17-ws");
        // 13 models × 3 datasets × 3 designs = 117 cells per figure.
        assert_eq!(fig17.cell_count(), 117);
        assert_eq!(smoke().cell_count(), 4);
        assert_eq!(energy().cell_count(), 26);
    }
}
