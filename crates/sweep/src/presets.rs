//! Named grids: the sweeps the paper's figures are points on, plus a tiny
//! smoke grid for CI.

use crate::grid::{DatasetScale, GridSpec, PhaseSchedule};
use adagp_accel::{AdaGpDesign, Dataflow};
use adagp_nn::models::CnnModel;

/// The speed-up figure grid for one baseline dataflow: all 13 models ×
/// 3 datasets × 3 designs under the paper schedule (one of Figs 17–19).
pub fn speedup_figure(df: Dataflow) -> GridSpec {
    GridSpec {
        name: match df {
            Dataflow::WeightStationary => "fig17-ws",
            Dataflow::RowStationary => "fig18-rs",
            Dataflow::InputStationary => "fig19-is",
            Dataflow::OutputStationary => "speedup-os",
        }
        .to_string(),
        models: CnnModel::all().to_vec(),
        datasets: DatasetScale::all().to_vec(),
        designs: AdaGpDesign::all().to_vec(),
        dataflows: vec![df],
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: vec![None],
        buffers: vec![None],
    }
}

/// Figure 21's grid: per-model memory energy for the Efficient and MAX
/// designs at CIFAR scale (the energy metrics carry the result; the
/// baseline column is the `baseline_energy_j` metric of any design row).
pub fn energy() -> GridSpec {
    GridSpec {
        name: "energy".to_string(),
        models: CnnModel::all().to_vec(),
        datasets: vec![DatasetScale::Cifar10],
        designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
        dataflows: vec![Dataflow::WeightStationary],
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: vec![None],
        buffers: vec![None],
    }
}

/// Every dataflow (including Output-Stationary, which the figures skip) ×
/// every design for one representative model per family — the ablation
/// surface ROADMAP's sweep item asked for.
pub fn dataflows() -> GridSpec {
    GridSpec {
        name: "dataflows".to_string(),
        models: vec![
            CnnModel::ResNet50,
            CnnModel::InceptionV3,
            CnnModel::Vgg13,
            CnnModel::DenseNet121,
            CnnModel::MobileNetV2,
        ],
        datasets: vec![DatasetScale::Cifar10, DatasetScale::ImageNet],
        designs: AdaGpDesign::all().to_vec(),
        dataflows: Dataflow::all().to_vec(),
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: vec![None],
        buffers: vec![None],
    }
}

/// Phase-schedule sensitivity: how much of the speed-up each epoch mix
/// keeps, across designs.
pub fn schedules() -> GridSpec {
    GridSpec {
        name: "schedules".to_string(),
        models: vec![CnnModel::Vgg13, CnnModel::ResNet50, CnnModel::MobileNetV2],
        datasets: vec![DatasetScale::Cifar10],
        designs: AdaGpDesign::all().to_vec(),
        dataflows: vec![Dataflow::WeightStationary],
        schedules: PhaseSchedule::all().to_vec(),
        bandwidths: vec![None],
        buffers: vec![None],
    }
}

/// The CI smoke grid: 2 models × 2 designs (4 cells), small enough to run
/// in milliseconds and diff against a committed golden CSV.
pub fn smoke() -> GridSpec {
    GridSpec {
        name: "smoke".to_string(),
        models: vec![CnnModel::Vgg13, CnnModel::ResNet50],
        datasets: vec![DatasetScale::Cifar10],
        designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
        dataflows: vec![Dataflow::WeightStationary],
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: vec![None],
        buffers: vec![None],
    }
}

/// The contention study: the fig17 model set swept over DRAM bandwidth
/// and buffer capacity for the MAX design — where the §3.7 per-layer
/// windows either hide the predictor or stall on the memory system.
/// Buffer points: 32K words (128 KB, aggressively small), the default
/// 128K words (512 KB) and 512K words (2 MB, fits most working sets).
pub fn bandwidth() -> GridSpec {
    GridSpec {
        name: "bandwidth".to_string(),
        models: CnnModel::all().to_vec(),
        datasets: vec![DatasetScale::Cifar10],
        designs: vec![AdaGpDesign::Max],
        dataflows: vec![Dataflow::WeightStationary],
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: [8u64, 16, 32, 64, 128, 256]
            .iter()
            .map(|&b| Some(b))
            .collect(),
        buffers: [32 * 1024u64, 128 * 1024, 512 * 1024]
            .iter()
            .map(|&b| Some(b))
            .collect(),
    }
}

/// CI-sized slice of [`bandwidth`]: 2 models × 2 bandwidths × 2 buffer
/// capacities (8 cells), byte-compared against a committed golden across
/// thread counts.
pub fn bandwidth_smoke() -> GridSpec {
    GridSpec {
        name: "bandwidth-smoke".to_string(),
        models: vec![CnnModel::Vgg13, CnnModel::ResNet50],
        datasets: vec![DatasetScale::Cifar10],
        designs: vec![AdaGpDesign::Max],
        dataflows: vec![Dataflow::WeightStationary],
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: vec![Some(16), Some(256)],
        buffers: vec![Some(16 * 1024), Some(1024 * 1024)],
    }
}

/// The roofline grid: every fig17 model at ImageNet scale (the largest
/// working sets) under the MAX design with default knobs — the `sweep
/// roofline` subcommand reports each model's bandwidth knee on it and
/// `runs/roofline.csv` pins the full metric set across PRs.
pub fn roofline() -> GridSpec {
    GridSpec {
        name: "roofline".to_string(),
        models: CnnModel::all().to_vec(),
        datasets: vec![DatasetScale::ImageNet],
        designs: vec![AdaGpDesign::Max],
        dataflows: vec![Dataflow::WeightStationary],
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: vec![None],
        buffers: vec![None],
    }
}

/// Every named preset, in CLI listing order.
pub fn all() -> Vec<GridSpec> {
    vec![
        speedup_figure(Dataflow::WeightStationary),
        speedup_figure(Dataflow::RowStationary),
        speedup_figure(Dataflow::InputStationary),
        energy(),
        dataflows(),
        schedules(),
        bandwidth(),
        bandwidth_smoke(),
        roofline(),
        smoke(),
    ]
}

/// Looks a preset up by its name.
pub fn by_name(name: &str) -> Option<GridSpec> {
    all().into_iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names_are_unique_and_resolvable() {
        let presets = all();
        let names: std::collections::HashSet<_> = presets.iter().map(|g| g.name.clone()).collect();
        assert_eq!(names.len(), presets.len());
        for g in &presets {
            assert_eq!(by_name(&g.name).as_ref(), Some(g));
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn figure_presets_match_figure_shapes() {
        let fig17 = speedup_figure(Dataflow::WeightStationary);
        assert_eq!(fig17.name, "fig17-ws");
        // 13 models × 3 datasets × 3 designs = 117 cells per figure.
        assert_eq!(fig17.cell_count(), 117);
        assert_eq!(smoke().cell_count(), 4);
        assert_eq!(energy().cell_count(), 26);
        assert_eq!(bandwidth().cell_count(), 13 * 6 * 3);
        assert_eq!(bandwidth_smoke().cell_count(), 8);
        assert_eq!(roofline().cell_count(), 13);
    }

    #[test]
    fn contention_presets_override_every_cell() {
        for cell in bandwidth().expand() {
            assert!(cell.dram_words_per_cycle.is_some());
            assert!(cell.buffer_words.is_some());
        }
        for cell in roofline().expand() {
            assert!(cell.dram_words_per_cycle.is_none());
            assert!(cell.buffer_words.is_none());
        }
    }
}
