//! Parallel grid execution on the shared `adagp-runtime` pool.
//!
//! Cells are independent evaluations of the analytic cycle/energy models,
//! so they map cleanly onto `ThreadPool::parallel_map`: the work split is
//! deterministic, result order is the grid's expansion order regardless
//! of thread count, and the caller participates (a 1-thread pool runs the
//! sweep inline). Per-cell wall time is recorded for the JSON run record;
//! it never enters the CSV, which must stay byte-stable across runs.

use crate::grid::{CellSpec, GridSpec};
use crate::roofline;
use crate::shapes::cached_shapes;
use crate::simeval::simulate_cell;
use adagp_accel::energy::{adagp_energy_joules, baseline_energy_joules, EnergyConfig};
use adagp_accel::speedup::{adagp_training_cycles, baseline_training_cycles};
use adagp_accel::AcceleratorConfig;
use adagp_obs as obs;
use adagp_sim::SimConfig;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Cells evaluated through [`run_grid`] (process-global metric).
fn cells_counter() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::registry().counter("sweep_cells_total"))
}

/// Wall-clock microseconds per cell evaluation.
fn cell_micros_hist() -> &'static Arc<obs::Histogram> {
    static H: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| obs::registry().histogram("sweep_cell_micros"))
}

/// Per-cell throughput (cells/second, as observed one cell at a time).
fn cells_per_sec_hist() -> &'static Arc<obs::Histogram> {
    static H: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| obs::registry().histogram("sweep_cells_per_sec"))
}

/// The metric values one cell produces. All eleven are deterministic
/// functions of the cell's axis values: five from the closed-form
/// analytic models, six from the discrete-event simulator under the
/// default contention-enabled [`SimConfig`] (with the cell's
/// bandwidth/buffer overrides applied).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// End-to-end training speed-up over the baseline (higher is better).
    pub speedup: f64,
    /// Baseline training cycles (lower is better).
    pub baseline_cycles: f64,
    /// ADA-GP training cycles (lower is better).
    pub adagp_cycles: f64,
    /// Baseline off-chip memory energy in joules (lower is better).
    pub baseline_energy_j: f64,
    /// ADA-GP off-chip memory energy in joules (lower is better).
    pub adagp_energy_j: f64,
    /// Simulated ADA-GP training cycles with DRAM contention (lower is
    /// better); the gap to `adagp_cycles` is the memory stall.
    pub sim_cycles: f64,
    /// Simulated epoch-weighted PE-array utilization (higher is better).
    pub pe_utilization: f64,
    /// Simulated predictor-overlap efficiency (higher is better).
    pub overlap_efficiency: f64,
    /// Epoch-weighted buffer-spill cycles the finite buffer forces
    /// (lower is better; 0 when every working set fits).
    pub spill_cycles: f64,
    /// Fraction of `sim_cycles` that is memory stall — bandwidth plus
    /// spill (lower is better).
    pub dram_stall_frac: f64,
    /// The bandwidth-roofline knee (words/cycle): smallest DRAM bandwidth
    /// within 1% of the contention-free cycles (lower is better — a low
    /// knee means the model tolerates a narrow channel).
    pub knee_words_per_cycle: f64,
}

/// One executed cell: its spec, metrics and wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The grid point that was evaluated.
    pub spec: CellSpec,
    /// The metric values it produced.
    pub metrics: CellMetrics,
    /// Wall-clock microseconds this cell took (timing only — excluded
    /// from the byte-stable CSV).
    pub wall_micros: u64,
}

/// A completed sweep: every cell of one grid, in expansion order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRun {
    /// Name of the grid that ran.
    pub grid: String,
    /// Cell results, in the grid's deterministic expansion order.
    pub cells: Vec<CellResult>,
    /// Total wall-clock microseconds for the whole sweep.
    pub total_wall_micros: u64,
}

/// Evaluates one cell: the analytic speed-up/cycle/energy metrics of its
/// (model, dataset, dataflow, design, schedule) combination — identical
/// to what the standalone fig17–21 binaries computed, by construction —
/// plus the six discrete-event metrics from `adagp-sim` under the
/// default contention-enabled configuration (the cell's bandwidth/buffer
/// overrides applied; the roofline knee is the cell's own bandwidth
/// sweep, memoized across cells that share everything but bandwidth).
pub fn evaluate_cell(spec: &CellSpec) -> CellMetrics {
    let layers = cached_shapes(spec.model, spec.dataset.input_scale());
    let cfg = AcceleratorConfig::default();
    let mix = spec.schedule.mix();
    let baseline_cycles = baseline_training_cycles(&cfg, spec.dataflow, &layers, &mix);
    let adagp_cycles = adagp_training_cycles(&cfg, spec.dataflow, spec.design, &layers, &mix);
    let ecfg = EnergyConfig::default();
    let sim_base = SimConfig::default();
    let sim = simulate_cell(spec, &sim_base);
    let knee = roofline::cell_knee(spec, &sim_base, roofline::KNEE_TOLERANCE);
    CellMetrics {
        speedup: baseline_cycles / adagp_cycles,
        baseline_cycles,
        adagp_cycles,
        baseline_energy_j: baseline_energy_joules(&ecfg, &layers, &mix),
        adagp_energy_j: adagp_energy_joules(&ecfg, &layers, &mix, spec.design),
        sim_cycles: sim.sim_cycles,
        pe_utilization: sim.pe_utilization,
        overlap_efficiency: sim.overlap_efficiency,
        spill_cycles: sim.spill_cycles,
        // The no-contention sim equals the analytic cycles bit-for-bit,
        // so the analytic value is the contention-free reference here.
        dram_stall_frac: ((sim.sim_cycles - adagp_cycles) / sim.sim_cycles).max(0.0),
        knee_words_per_cycle: knee as f64,
    }
}

/// Evaluates an explicit list of cells in parallel on the shared
/// runtime pool, preserving input order for every thread count. This is
/// the shared execution core: [`run_grid`] feeds it a whole expansion,
/// the shard-log runner ([`crate::shardlog::run_sharded`]) feeds it
/// bounded windows of pending cells.
pub fn evaluate_cells(specs: Vec<CellSpec>) -> Vec<CellResult> {
    adagp_runtime::pool().parallel_map(specs, |spec| {
        let t = Instant::now();
        let metrics = obs::span(
            "sweep",
            || format!("cell {}", spec.id),
            || evaluate_cell(&spec),
        );
        let wall_micros = t.elapsed().as_micros() as u64;
        cells_counter().inc();
        cell_micros_hist().record(wall_micros);
        cells_per_sec_hist().record(1_000_000 / wall_micros.max(1));
        CellResult {
            spec,
            metrics,
            wall_micros,
        }
    })
}

/// Runs every cell of `grid` in parallel on the shared runtime pool.
/// Result order is the expansion order (deterministic;
/// [`evaluate_cells`] preserves input order for every thread count).
pub fn run_grid(grid: &GridSpec) -> SweepRun {
    let t0 = Instant::now();
    let cells = evaluate_cells(grid.expand());
    SweepRun {
        grid: grid.name.clone(),
        cells,
        total_wall_micros: t0.elapsed().as_micros() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{DatasetScale, PhaseSchedule};
    use adagp_accel::{AdaGpDesign, Dataflow};
    use adagp_nn::models::CnnModel;

    fn grid() -> GridSpec {
        GridSpec {
            name: "test".to_string(),
            models: vec![CnnModel::Vgg13, CnnModel::MobileNetV2],
            datasets: vec![DatasetScale::Cifar10, DatasetScale::ImageNet],
            designs: AdaGpDesign::all().to_vec(),
            dataflows: vec![Dataflow::WeightStationary],
            schedules: vec![PhaseSchedule::Paper],
            bandwidths: vec![None],
            buffers: vec![None],
        }
    }

    #[test]
    fn run_covers_every_cell_in_expansion_order() {
        let g = grid();
        let run = run_grid(&g);
        assert_eq!(run.grid, "test");
        assert_eq!(run.cells.len(), g.cell_count());
        let expected: Vec<String> = g.expand().into_iter().map(|c| c.id).collect();
        let got: Vec<String> = run.cells.iter().map(|c| c.spec.id.clone()).collect();
        assert_eq!(got, expected, "result order must be expansion order");
    }

    #[test]
    fn metrics_are_deterministic_and_consistent() {
        let g = grid();
        let a = run_grid(&g);
        let b = run_grid(&g);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.metrics, y.metrics, "{}", x.spec.key());
            let m = x.metrics;
            assert!(m.speedup > 1.0 && m.speedup < 3.0, "{}", x.spec.key());
            assert_eq!(m.speedup, m.baseline_cycles / m.adagp_cycles);
            assert!(m.adagp_energy_j <= m.baseline_energy_j, "{}", x.spec.key());
            // The simulated run pays bandwidth stalls on top of the
            // analytic ideal, and its rates are proper fractions.
            assert!(m.sim_cycles >= m.adagp_cycles, "{}", x.spec.key());
            assert!(
                m.pe_utilization > 0.0 && m.pe_utilization <= 1.0,
                "{}: {}",
                x.spec.key(),
                m.pe_utilization
            );
            assert!(
                (0.0..=1.0).contains(&m.overlap_efficiency),
                "{}: {}",
                x.spec.key(),
                m.overlap_efficiency
            );
            assert!(m.spill_cycles >= 0.0, "{}", x.spec.key());
            assert!(
                (0.0..1.0).contains(&m.dram_stall_frac),
                "{}: {}",
                x.spec.key(),
                m.dram_stall_frac
            );
            assert!(
                m.knee_words_per_cycle >= 1.0,
                "{}: {}",
                x.spec.key(),
                m.knee_words_per_cycle
            );
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let g = grid();
        let reference = adagp_runtime::with_threads(1, || run_grid(&g));
        for threads in [2, 3, 7] {
            let got = adagp_runtime::with_threads(threads, || run_grid(&g));
            let a: Vec<_> = reference
                .cells
                .iter()
                .map(|c| (&c.spec, c.metrics))
                .collect();
            let b: Vec<_> = got.cells.iter().map(|c| (&c.spec, c.metrics)).collect();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn design_ordering_holds_per_model() {
        // MAX ≥ Efficient ≥ LOW within every (model, dataset) group.
        let run = run_grid(&grid());
        for chunk in run.cells.chunks(3) {
            assert_eq!(chunk[0].spec.design, AdaGpDesign::Low);
            assert!(chunk[2].metrics.speedup >= chunk[1].metrics.speedup);
            assert!(chunk[1].metrics.speedup >= chunk[0].metrics.speedup);
        }
    }
}
