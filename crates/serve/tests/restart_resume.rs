//! Warm-restart resume battery: a server configured with a shard-log
//! directory must restart mid-grid with **zero recomputation** — every
//! cell a previous incarnation evaluated is replayed from the
//! append-only log, bit-exactly, and `/metrics` proves no evaluator
//! ran. Durability comes from the per-record fsync'd appends, not from
//! a graceful shutdown flush, so the guarantee holds for a killed
//! process too (the fault-injection CLI battery covers the real-abort
//! variant; here the second incarnation starts from whatever the log
//! holds).

use adagp_serve::{check_invariants, fetch_metrics, server, submit_grid, ServerConfig};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("adagp-serve-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SPEC: &str = r#"{"preset":"smoke"}"#;

#[test]
fn restarted_server_reevaluates_zero_logged_cells() {
    let dir = tmp_dir("full");

    // First incarnation: a cold cache evaluates every cell of the grid
    // and appends each one to the shard log as it completes.
    let first = server::start(ServerConfig {
        log_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("first server starts");
    let addr = first.addr();
    let response = submit_grid(addr, SPEC).expect("first submission");
    assert!(
        response.cell_errors.is_empty(),
        "{:?}",
        response.cell_errors
    );
    let cells = response.cells.len();
    assert!(cells >= 4, "smoke grid has at least 4 cells");
    let metrics = fetch_metrics(addr).expect("first metrics scrape");
    assert_eq!(check_invariants(&metrics), None);
    assert_eq!(metrics["evaluations"], cells as i128, "first run is cold");
    // Every evaluation was durably appended before the response ended.
    assert!(
        metrics["adagp_sweep_log_appends_total"] >= cells as i128,
        "{metrics:?}"
    );
    first.shutdown().expect("first shutdown");

    // Second incarnation, same log directory: the merged log warms the
    // cache before the listener accepts anything.
    let second = server::start(ServerConfig {
        log_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("second server starts");
    let addr2 = second.addr();
    let replay = submit_grid(addr2, SPEC).expect("second submission");
    assert!(replay.cell_errors.is_empty(), "{:?}", replay.cell_errors);
    assert_eq!(replay.cells.len(), cells);

    // The acceptance criterion: zero re-evaluations, asserted via the
    // fresh incarnation's own /metrics counters.
    let metrics2 = fetch_metrics(addr2).expect("second metrics scrape");
    assert_eq!(check_invariants(&metrics2), None);
    assert_eq!(metrics2["evaluations"], 0, "{metrics2:?}");
    assert_eq!(metrics2["cell_hits"], cells as i128, "{metrics2:?}");

    // And the replayed metrics are bit-exact: the log's JSON floats are
    // shortest-round-trip, so the warm entries carry the original bits.
    for (a, b) in response.cells.iter().zip(&replay.cells) {
        assert_eq!(a.id, b.id, "stream order is the expansion order");
        let first_bits: Vec<u64> = a.metrics.iter().map(|m| m.to_bits()).collect();
        let second_bits: Vec<u64> = b.metrics.iter().map(|m| m.to_bits()).collect();
        assert_eq!(first_bits, second_bits, "cell {}", a.id);
    }
    second.shutdown().expect("second shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partially_logged_grid_resumes_only_the_missing_cells() {
    let dir = tmp_dir("partial");

    // Log only a subset: submit a 2-cell sub-grid of smoke.
    let sub = r#"{
        "name": "sub",
        "models": ["VGG13", "ResNet50"],
        "datasets": ["Cifar10"],
        "designs": ["ADA-GP-Efficient"],
        "dataflows": ["WS"],
        "schedules": ["paper"]
    }"#;
    let first = server::start(ServerConfig {
        log_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("first server starts");
    let sub_cells = submit_grid(first.addr(), sub)
        .expect("sub-grid submission")
        .cells
        .len();
    assert_eq!(sub_cells, 2);
    first.shutdown().expect("first shutdown");

    // The restarted server owes evaluations only for the cells the log
    // does not cover.
    let second = server::start(ServerConfig {
        log_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("second server starts");
    let full = submit_grid(second.addr(), SPEC).expect("full submission");
    assert!(full.cell_errors.is_empty(), "{:?}", full.cell_errors);
    let metrics = fetch_metrics(second.addr()).expect("metrics scrape");
    assert_eq!(check_invariants(&metrics), None);
    assert_eq!(
        metrics["evaluations"],
        (full.cells.len() - sub_cells) as i128,
        "{metrics:?}"
    );
    assert_eq!(metrics["cell_hits"], sub_cells as i128, "{metrics:?}");
    second.shutdown().expect("second shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
