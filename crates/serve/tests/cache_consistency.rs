//! Cache-consistency battery for the serve memo store:
//!
//! 1. **Exactly-once evaluation** — any number of concurrent submitters
//!    of the same cell trigger one evaluation; everyone gets bit-exact
//!    copies and the `/metrics` counters account for every request.
//! 2. **Warm-start fidelity** — a cache warmed from each committed
//!    `runs/*` artifact (CSV and JSON, every schema vintage present)
//!    agrees with fresh evaluation within the `sweep diff` tolerances.
//! 3. **Byte-stable flush** — a shutdown-flushed snapshot reloads into
//!    an identical snapshot, byte for byte, through any number of
//!    flush → warm-load cycles.

use adagp_serve::{check_invariants, fetch_metrics, server, submit_grid, CellCache, ServerConfig};
use adagp_sweep::diff::{diff_runs, DiffConfig};
use adagp_sweep::store::{RunRecord, StoredCell, StoredRun};
use adagp_sweep::{evaluate_cell, presets};
use std::collections::HashMap;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adagp-serve-cache-{}-{name}", std::process::id()))
}

#[test]
fn concurrent_submitters_of_one_cell_observe_exactly_one_evaluation() {
    let server = server::start(ServerConfig {
        workers: 8,
        queue_depth: 64,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    // A single-cell grid every client submits simultaneously.
    let spec = r#"{
        "name": "one-cell",
        "models": ["VGG13"],
        "datasets": ["Cifar10"],
        "designs": ["ADA-GP-Efficient"],
        "dataflows": ["WS"],
        "schedules": ["paper"]
    }"#;
    const CLIENTS: usize = 8;
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(move || submit_grid(addr, spec)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread").expect("grid accepted"))
            .collect()
    });

    // Every client got the same single cell, bit-identical to a direct
    // evaluation.
    let direct = evaluate_cell(&presets::smoke().expand()[0].clone());
    let direct_bits: Vec<u64> = adagp_sweep::metrics_to_array(&direct)
        .iter()
        .map(|m| m.to_bits())
        .collect();
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r.cells.len(), 1, "client {i}");
        assert!(r.cell_errors.is_empty(), "client {i}: {:?}", r.cell_errors);
        let got: Vec<u64> = r.cells[0].metrics.iter().map(|m| m.to_bits()).collect();
        assert_eq!(got, direct_bits, "client {i} metrics drifted");
    }

    // The counters prove single evaluation: of the CLIENTS served cells,
    // exactly one was an evaluation; the rest joined its flight or hit
    // the memoized entry, depending on arrival order.
    let metrics = fetch_metrics(addr).expect("metrics scrape");
    assert_eq!(check_invariants(&metrics), None);
    assert_eq!(metrics["evaluations"], 1, "{metrics:?}");
    assert_eq!(metrics["cells_served"], CLIENTS as i128, "{metrics:?}");
    assert_eq!(
        metrics["cell_hits"] + metrics["coalesced_waits"],
        CLIENTS as i128 - 1,
        "{metrics:?}"
    );
    server.shutdown().expect("clean shutdown");
}

/// The smoke grid — whose direct evaluation the test compares against —
/// expands to exactly one cell; pin that here so the direct-comparison
/// above cannot silently compare against the wrong cell.
#[test]
fn smoke_preset_first_cell_is_the_one_cell_grid() {
    let cell = &presets::smoke().expand()[0];
    assert_eq!(cell.key(), "WS/Cifar10/VGG13/ADA-GP-Efficient/paper");
}

#[test]
fn warm_load_from_every_committed_artifact_matches_fresh_evaluation() {
    let runs = repo_root().join("runs");
    let files: Vec<PathBuf> = std::fs::read_dir(&runs)
        .expect("runs/ directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| matches!(p.extension().and_then(|e| e.to_str()), Some("csv" | "json")))
        .collect();
    assert!(files.len() >= 8, "committed artifacts missing: {files:?}");

    for file in files {
        let stored = StoredRun::load(&file).unwrap_or_else(|e| panic!("{file:?}: {e}"));
        let cache = CellCache::new();
        let loaded = cache.warm_from_stored(&stored);
        assert_eq!(loaded, stored.cells.len(), "{file:?} loaded partially");

        // Reconstruct the specs from the grid preset that generated the
        // file (runs/README.md maps file stem → preset name) and fresh-
        // evaluate a deterministic sample of cells.
        let stem = file.file_stem().and_then(|s| s.to_str()).unwrap();
        let grid = presets::by_name(stem).unwrap_or_else(|| panic!("no preset `{stem}`"));
        let by_id: HashMap<String, StoredCell> = stored
            .cells
            .iter()
            .map(|c| (c.id.clone(), c.clone()))
            .collect();
        let cells = grid.expand();
        let step = (cells.len() / 4).max(1);
        let mut compared = 0;
        for spec in cells.iter().step_by(step) {
            let warmed = by_id
                .get(&spec.id)
                .unwrap_or_else(|| panic!("{file:?} is missing cell {}", spec.key()));
            let mut fresh = StoredCell::from_evaluation(spec, &evaluate_cell(spec));
            if file.extension().and_then(|e| e.to_str()) == Some("csv") {
                // The CSV artifact is 6-decimal quantized; quantize the
                // fresh values identically (as `sweep diff`'s CSV-vs-CSV
                // CI comparison implicitly does) so tiny metrics like
                // dram_stall_frac compare within the relative tolerance.
                for m in &mut fresh.metrics {
                    *m = format!("{m:.6}").parse().unwrap();
                }
            }
            let before = StoredRun {
                cells: vec![warmed.clone()],
                metric_count: stored.metric_count,
            };
            let after = StoredRun {
                cells: vec![fresh],
                ..StoredRun::default()
            };
            let report = diff_runs(&before, &after, &DiffConfig::default());
            assert_eq!(report.matched_cells, 1);
            assert!(
                report.regressions.is_empty() && report.improvements.is_empty(),
                "{file:?} cell {} drifted from fresh evaluation:\n{}",
                spec.key(),
                report.render()
            );
            compared += 1;
        }
        assert!(compared >= 4, "{file:?} sampled too few cells");
    }
}

#[test]
fn shutdown_flush_reloads_byte_stable_through_repeated_cycles() {
    let flush_a = tmp("flush-a.json");
    let flush_b = tmp("flush-b.json");

    // First server: evaluate a small grid cold, flush on shutdown.
    let server = server::start(ServerConfig {
        flush_path: Some(flush_a.clone()),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let response = submit_grid(server.addr(), r#"{"preset":"smoke"}"#).expect("grid accepted");
    assert_eq!(response.done.cells, response.announced_cells);
    let flushed = server.shutdown().expect("clean shutdown");
    assert_eq!(flushed, Some(response.done.cells as usize));
    let bytes_a = std::fs::read(&flush_a).expect("flushed snapshot");

    // Second server: warm from the snapshot, serve the same grid (all
    // hits, zero evaluations), flush again — bytes must be identical.
    let server = server::start(ServerConfig {
        warm: vec![flush_a.clone()],
        flush_path: Some(flush_b.clone()),
        ..ServerConfig::default()
    })
    .expect("warm server starts");
    let warmed = submit_grid(server.addr(), r#"{"preset":"smoke"}"#).expect("grid accepted");
    assert_eq!(warmed.done.hits, warmed.done.cells, "warm serve must hit");
    assert!(warmed.cells.iter().all(|c| c.cached));
    let metrics = fetch_metrics(server.addr()).expect("metrics");
    assert_eq!(metrics["evaluations"], 0, "{metrics:?}");
    server.shutdown().expect("clean shutdown");
    let bytes_b = std::fs::read(&flush_b).expect("second snapshot");
    assert_eq!(
        bytes_a, bytes_b,
        "flush → warm-load → flush is not byte-stable"
    );

    // And the cell metrics travel bit-exactly through the cycle.
    let (a, b) = (&response.cells, &warmed.cells);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        for (mx, my) in x.metrics.iter().zip(&y.metrics) {
            assert_eq!(mx.to_bits(), my.to_bits(), "cell {}", x.id);
        }
    }

    // A direct in-process reload round-trips too (no server needed).
    let cache = CellCache::new();
    cache.warm_load(&flush_b).expect("snapshot reloads");
    assert_eq!(cache.snapshot_json().into_bytes(), bytes_a);

    std::fs::remove_file(&flush_a).ok();
    std::fs::remove_file(&flush_b).ok();
}

/// The snapshot's run-record form stays loadable by the standard store
/// loaders (it *is* a schema-v3 record), so `sweep diff` can compare a
/// server flush against any committed run.
#[test]
fn flushed_snapshot_is_a_standard_run_record() {
    let cache = CellCache::new();
    let spec = presets::smoke().expand()[0].clone();
    cache.get_or_evaluate(&spec).expect("evaluation");
    let snapshot = cache.snapshot_json();
    let reloaded = StoredRun::from_json_str(&snapshot).expect("snapshot parses");
    assert_eq!(reloaded.cells.len(), 1);
    assert_eq!(reloaded.cells[0].id, spec.id);
    let record: RunRecord = RunRecord::from_stored_cells("cache", &reloaded.cells);
    assert_eq!(serde::json::to_string_pretty(&record) + "\n", snapshot);
}
