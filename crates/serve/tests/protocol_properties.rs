//! Protocol property tests: the hand-rolled HTTP layer and the JSON
//! wire format under seeded adversarial input.
//!
//! Three properties, each fuzzed with the workspace `Prng`
//! (xoshiro256++, fixed seeds — failures reproduce exactly):
//!
//! 1. **Fragmentation-invariance** — a valid request parses to the same
//!    `Request` no matter how the TCP stream slices it.
//! 2. **Totality** — arbitrary garbage (random bytes, and mutations of
//!    valid requests) never panics or hangs the parser; every rejection
//!    is a typed 4xx/5xx.
//! 3. **Round-trip** — every preset `GridSpec` survives
//!    JSON-encode → parse and the live server answers garbage with 4xx
//!    while staying healthy.

use adagp_serve::http::{RequestParser, MAX_BODY_BYTES, MAX_HEAD_BYTES};
use adagp_serve::wire::{grid_to_value, parse_grid_request};
use adagp_serve::{check_invariants, http_request, server, ServerConfig};
use adagp_sweep::presets;
use adagp_tensor::Prng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Feeds `bytes` to a fresh parser in one call.
fn parse_whole(bytes: &[u8]) -> Result<Option<adagp_serve::Request>, adagp_serve::HttpError> {
    RequestParser::new().feed(bytes)
}

/// Splits `bytes` into `cuts + 1` chunks at random boundaries and feeds
/// them one at a time, returning the first non-`Ok(None)` outcome.
fn parse_fragmented(
    bytes: &[u8],
    rng: &mut Prng,
    cuts: usize,
) -> Result<Option<adagp_serve::Request>, adagp_serve::HttpError> {
    let mut boundaries: Vec<usize> = (0..cuts).map(|_| rng.below(bytes.len() + 1)).collect();
    boundaries.push(0);
    boundaries.push(bytes.len());
    boundaries.sort_unstable();
    let mut parser = RequestParser::new();
    for pair in boundaries.windows(2) {
        match parser.feed(&bytes[pair[0]..pair[1]])? {
            Some(req) => return Ok(Some(req)),
            None => continue,
        }
    }
    Ok(None)
}

fn valid_requests() -> Vec<Vec<u8>> {
    let grid_body = serde::json::to_string(&grid_to_value(&presets::smoke()));
    vec![
        b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
        b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".to_vec(),
        b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_vec(),
        format!(
            "POST /grid HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{grid_body}",
            grid_body.len()
        )
        .into_bytes(),
        // Bare-LF head framing is accepted too.
        b"GET /health HTTP/1.1\nHost: x\n\n".to_vec(),
    ]
}

#[test]
fn valid_requests_parse_identically_under_any_fragmentation() {
    let mut rng = Prng::seed_from_u64(0x05e4_1e01);
    for bytes in valid_requests() {
        let whole = parse_whole(&bytes)
            .expect("valid request parses")
            .expect("valid request completes");
        for round in 0..200 {
            let cuts = 1 + rng.below(bytes.len().min(24));
            let fragged = parse_fragmented(&bytes, &mut rng, cuts)
                .unwrap_or_else(|e| panic!("round {round}: fragmented parse failed: {e}"))
                .unwrap_or_else(|| panic!("round {round}: fragmented parse incomplete"));
            assert_eq!(fragged.method, whole.method, "round {round}");
            assert_eq!(fragged.path, whole.path, "round {round}");
            assert_eq!(fragged.headers, whole.headers, "round {round}");
            assert_eq!(fragged.body, whole.body, "round {round}");
        }
    }
}

#[test]
fn random_garbage_never_panics_and_rejections_are_typed() {
    let mut rng = Prng::seed_from_u64(0x05e4_1e02);
    for round in 0..400 {
        let len = 1 + rng.below(512);
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                // Bias toward protocol-ish bytes so parsing gets past the
                // first token often enough to stress the later states.
                match rng.below(4) {
                    0 => b"GET POST HTTP/1.1\r\n: "[rng.below(21)],
                    _ => (rng.next_u64() & 0xff) as u8,
                }
            })
            .collect();
        let mut parser = RequestParser::new();
        let cuts = rng.below(8);
        let mut start = 0;
        let mut outcome = Ok(None);
        for _ in 0..=cuts {
            let end = (start + 1 + rng.below(bytes.len())).min(bytes.len());
            outcome = parser.feed(&bytes[start..end]);
            start = end;
            if !matches!(outcome, Ok(None)) || start == bytes.len() {
                break;
            }
        }
        match outcome {
            Ok(_) => {
                // Incomplete (or improbably valid): EOF must still answer
                // without a panic.
                let _ = parser.finish();
            }
            Err(e) => assert!(
                (400..600).contains(&e.status),
                "round {round}: untyped rejection {e:?} for {bytes:?}"
            ),
        }
    }
}

#[test]
fn mutated_valid_requests_never_panic() {
    let mut rng = Prng::seed_from_u64(0x05e4_1e03);
    let templates = valid_requests();
    for round in 0..400 {
        let mut bytes = templates[rng.below(templates.len())].clone();
        for _ in 0..=rng.below(6) {
            let at = rng.below(bytes.len());
            match rng.below(3) {
                0 => bytes[at] = (rng.next_u64() & 0xff) as u8,
                1 => {
                    bytes.remove(at);
                    if bytes.is_empty() {
                        bytes.push(b' ');
                    }
                }
                _ => bytes.insert(at, (rng.next_u64() & 0xff) as u8),
            }
        }
        let mut parser = RequestParser::new();
        match parser.feed(&bytes) {
            Ok(_) => {
                let _ = parser.finish();
            }
            Err(e) => assert!(
                (400..600).contains(&e.status),
                "round {round}: untyped rejection {e:?}"
            ),
        }
    }
}

#[test]
fn oversized_heads_and_bodies_are_bounded_rejections() {
    // Head larger than the cap: 431, raised before buffering the world.
    let mut parser = RequestParser::new();
    let mut head = b"GET /health HTTP/1.1\r\nX-Pad: ".to_vec();
    head.resize(head.len() + MAX_HEAD_BYTES, b'a');
    let err = parser.feed(&head).expect_err("oversized head rejected");
    assert_eq!(err.status, 431);

    // Declared body over the cap: 413 from the declaration alone.
    let mut parser = RequestParser::new();
    let req = format!(
        "POST /grid HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    let err = parser
        .feed(req.as_bytes())
        .expect_err("oversized body rejected");
    assert_eq!(err.status, 413);

    // Truncated body: EOF mid-body is a 400, not a hang.
    let mut parser = RequestParser::new();
    let outcome = parser
        .feed(b"POST /grid HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        .expect("prefix is well-formed");
    assert!(outcome.is_none(), "body is incomplete");
    let err = parser.finish().expect_err("truncation rejected at EOF");
    assert_eq!(err.status, 400);
}

#[test]
fn every_preset_grid_round_trips_over_the_wire_encoding() {
    for grid in presets::all() {
        let encoded = serde::json::to_string(&grid_to_value(&grid));
        let decoded = parse_grid_request(encoded.as_bytes())
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", grid.name));
        assert_eq!(decoded, grid, "{} drifted across the wire", grid.name);
        // And the cells derived from it are identical, IDs included.
        let (a, b) = (grid.expand(), decoded.expand());
        assert_eq!(a, b, "{} expansion drifted", grid.name);
    }
}

#[test]
fn live_server_answers_garbage_with_4xx_and_stays_healthy() {
    let server = server::start(ServerConfig {
        workers: 2,
        queue_depth: 16,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let mut rng = Prng::seed_from_u64(0x05e4_1e04);
    for round in 0..24 {
        let len = 1 + rng.below(200);
        let garbage: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.write_all(&garbage).expect("write garbage");
        // Half-close so the server sees EOF even when the bytes happen to
        // look like an incomplete head.
        stream.shutdown(std::net::Shutdown::Write).ok();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).expect("read reply");
        if !reply.is_empty() {
            let text = String::from_utf8_lossy(&reply);
            let status: u16 = text
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("round {round}: unparseable reply {text:?}"));
            assert!(
                (400..600).contains(&status),
                "round {round}: garbage earned status {status}"
            );
        }
    }
    // The server is still fully functional afterwards.
    let health = http_request(addr, "GET", "/health", None).expect("health after fuzz");
    assert_eq!(health.status, 200);
    let metrics = adagp_serve::fetch_metrics(addr).expect("metrics after fuzz");
    assert!(metrics["bad_requests"] > 0, "fuzz rounds were all silent");
    assert_eq!(check_invariants(&metrics), None);
    server.shutdown().expect("clean shutdown");
}
