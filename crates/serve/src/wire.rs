//! The JSON wire format: `GridSpec` submissions in, NDJSON result
//! streams out.
//!
//! A grid submission is either a preset reference or explicit axes:
//!
//! ```json
//! {"preset": "smoke"}
//! {"name": "adhoc", "models": ["VGG13"], "datasets": ["Cifar10"],
//!  "designs": ["ADA-GP-MAX"], "dataflows": ["WS"], "schedules": ["paper"],
//!  "bandwidths": [null, 64], "buffers": [null]}
//! ```
//!
//! Axis values are the same stable display names the CSV store writes
//! (`CnnModel::name()` etc.), so a cell row cut out of a committed
//! `runs/*.csv` names exactly the axis values to resubmit. `bandwidths`/
//! `buffers` entries are `null` (evaluator default) or a positive
//! integer; both axes may be omitted entirely (→ `[null]`).
//!
//! The `/grid` response is NDJSON (one JSON object per line): a header
//! line, one line per cell as it completes, and a summary line —
//! streaming-friendly framing that needs no length prefix and lets a
//! client act on early cells while later ones still evaluate. Metric
//! floats ride through the vendored writer's shortest-round-trip
//! formatting, so a client parsing a cell line recovers bit-identical
//! `f64`s — the property the load-test harness asserts.

use adagp_sweep::grid::{DatasetScale, GridSpec, PhaseSchedule};
use adagp_sweep::store::METRICS;
use adagp_sweep::{presets, CellMetrics};
use serde::Value;

/// Looks up one axis value by its stable display name.
fn lookup<T: Copy>(
    axis: &str,
    name: &str,
    all: &[T],
    name_of: fn(&T) -> &'static str,
) -> Result<T, String> {
    all.iter()
        .find(|v| name_of(v) == name)
        .copied()
        .ok_or_else(|| {
            let known: Vec<&str> = all.iter().map(name_of).collect();
            format!("unknown {axis} `{name}` (known: {})", known.join(", "))
        })
}

/// Field of an object `Value`, if present.
fn get<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, val)| val),
        _ => None,
    }
}

/// Parses one display-name axis array.
fn parse_axis<T: Copy>(
    v: &Value,
    axis: &str,
    all: &[T],
    name_of: fn(&T) -> &'static str,
) -> Result<Vec<T>, String> {
    let field = get(v, axis).ok_or_else(|| format!("missing axis `{axis}`"))?;
    let Value::Array(items) = field else {
        return Err(format!(
            "axis `{axis}` must be an array, found {}",
            field.kind()
        ));
    };
    if items.is_empty() {
        return Err(format!("axis `{axis}` must not be empty"));
    }
    items
        .iter()
        .map(|item| {
            item.as_str()
                .ok_or_else(|| {
                    format!(
                        "axis `{axis}` entries must be strings, found {}",
                        item.kind()
                    )
                })
                .and_then(|name| lookup(axis, name, all, name_of))
        })
        .collect()
}

/// Parses an optional `null`-or-integer axis (`bandwidths`/`buffers`).
fn parse_knob_axis(v: &Value, axis: &str) -> Result<Vec<Option<u64>>, String> {
    let Some(field) = get(v, axis) else {
        return Ok(vec![None]);
    };
    let Value::Array(items) = field else {
        return Err(format!(
            "axis `{axis}` must be an array, found {}",
            field.kind()
        ));
    };
    if items.is_empty() {
        return Err(format!("axis `{axis}` must not be empty"));
    }
    items
        .iter()
        .map(|item| match item {
            Value::Null => Ok(None),
            other => {
                other.as_u64().filter(|&n| n > 0).map(Some).ok_or_else(|| {
                    format!("axis `{axis}` entries must be null or a positive integer")
                })
            }
        })
        .collect()
}

/// Decodes a grid submission `Value` (preset reference or explicit axes).
///
/// # Errors
///
/// Returns a message naming the offending field — it becomes the 400
/// response body verbatim.
pub fn grid_from_value(v: &Value) -> Result<GridSpec, String> {
    if !matches!(v, Value::Object(_)) {
        return Err(format!(
            "grid submission must be an object, found {}",
            v.kind()
        ));
    }
    if let Some(preset) = get(v, "preset") {
        let name = preset
            .as_str()
            .ok_or_else(|| format!("preset must be a string, found {}", preset.kind()))?;
        return presets::by_name(name).ok_or_else(|| {
            let known: Vec<String> = presets::all().iter().map(|g| g.name.clone()).collect();
            format!("unknown preset `{name}` (known: {})", known.join(", "))
        });
    }
    use adagp_accel::{AdaGpDesign, Dataflow};
    use adagp_nn::models::CnnModel;
    let name = match get(v, "name") {
        None => "adhoc".to_string(),
        Some(n) => n
            .as_str()
            .ok_or_else(|| format!("grid name must be a string, found {}", n.kind()))?
            .to_string(),
    };
    Ok(GridSpec {
        name,
        models: parse_axis(v, "models", &CnnModel::all(), |m| m.name())?,
        datasets: parse_axis(v, "datasets", &DatasetScale::all(), |d| d.name())?,
        designs: parse_axis(v, "designs", &AdaGpDesign::all(), |d| d.name())?,
        dataflows: parse_axis(v, "dataflows", &Dataflow::all(), |d| d.name())?,
        schedules: parse_axis(v, "schedules", &PhaseSchedule::all(), |s| s.name())?,
        bandwidths: parse_knob_axis(v, "bandwidths")?,
        buffers: parse_knob_axis(v, "buffers")?,
    })
}

/// Parses a `/grid` request body.
///
/// # Errors
///
/// Returns a message suitable for the 400 response body (bad UTF-8, bad
/// JSON with byte offset, or a shape error from [`grid_from_value`]).
pub fn parse_grid_request(body: &[u8]) -> Result<GridSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let value = serde::json::parse_value(text).map_err(|e| e.to_string())?;
    grid_from_value(&value)
}

/// Encodes a grid as its explicit-axes submission `Value` (the form
/// [`grid_from_value`] round-trips).
pub fn grid_to_value(grid: &GridSpec) -> Value {
    let names = |items: Vec<&'static str>| {
        Value::Array(
            items
                .into_iter()
                .map(|n| Value::String(n.to_string()))
                .collect(),
        )
    };
    let knobs = |items: &[Option<u64>]| {
        Value::Array(
            items
                .iter()
                .map(|k| k.map_or(Value::Null, Value::UInt))
                .collect(),
        )
    };
    Value::object(vec![
        ("name", Value::String(grid.name.clone())),
        (
            "models",
            names(grid.models.iter().map(|m| m.name()).collect()),
        ),
        (
            "datasets",
            names(grid.datasets.iter().map(|d| d.name()).collect()),
        ),
        (
            "designs",
            names(grid.designs.iter().map(|d| d.name()).collect()),
        ),
        (
            "dataflows",
            names(grid.dataflows.iter().map(|d| d.name()).collect()),
        ),
        (
            "schedules",
            names(grid.schedules.iter().map(|s| s.name()).collect()),
        ),
        ("bandwidths", knobs(&grid.bandwidths)),
        ("buffers", knobs(&grid.buffers)),
    ])
}

/// One parsed cell line of a `/grid` NDJSON response.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLine {
    /// Content-derived cell ID.
    pub id: String,
    /// Readable cell key.
    pub key: String,
    /// Whether the server had the cell memoized before this request.
    pub cached: bool,
    /// Metric values in [`METRICS`] order.
    pub metrics: [f64; METRICS.len()],
}

/// The summary line terminating a `/grid` NDJSON response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoneLine {
    /// Cells served (== the header line's `cells`).
    pub cells: u64,
    /// Cells answered from the memo store.
    pub hits: u64,
    /// Cells this request evaluated itself.
    pub evaluated: u64,
    /// Cells this request waited on a concurrent evaluation for.
    pub joined: u64,
    /// Wall-clock microseconds spent serving the request.
    pub micros: u64,
}

/// Renders the header line of a `/grid` response.
pub fn header_line(grid: &str, cells: usize) -> String {
    serde::json::to_string(&Value::object(vec![
        ("grid", Value::String(grid.to_string())),
        ("cells", Value::UInt(cells as u64)),
    ]))
}

/// Renders one cell line: identity, cache disposition, and the metrics
/// as a name-keyed object in [`METRICS`] order.
pub fn cell_line(id: &str, key: &str, cached: bool, metrics: &CellMetrics) -> String {
    let values = adagp_sweep::metrics_to_array(metrics);
    let fields = METRICS
        .iter()
        .zip(values)
        .map(|(m, v)| (m.name, Value::Float(v)))
        .collect();
    serde::json::to_string(&Value::object(vec![
        ("id", Value::String(id.to_string())),
        ("key", Value::String(key.to_string())),
        ("cached", Value::Bool(cached)),
        ("metrics", Value::object(fields)),
    ]))
}

/// Renders the terminating summary line.
pub fn done_line(done: &DoneLine) -> String {
    serde::json::to_string(&Value::object(vec![
        ("done", Value::Bool(true)),
        ("cells", Value::UInt(done.cells)),
        ("hits", Value::UInt(done.hits)),
        ("evaluated", Value::UInt(done.evaluated)),
        ("joined", Value::UInt(done.joined)),
        ("micros", Value::UInt(done.micros)),
    ]))
}

fn require_u64(v: &Value, name: &str) -> Result<u64, String> {
    get(v, name)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line has no numeric `{name}` field"))
}

fn require_str(v: &Value, name: &str) -> Result<String, String> {
    get(v, name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line has no string `{name}` field"))
}

/// Parses one cell line back into its typed form (the load-test client's
/// side of the contract).
///
/// # Errors
///
/// Returns a description of the missing/mistyped field.
pub fn parse_cell_line(line: &str) -> Result<CellLine, String> {
    let v = serde::json::parse_value(line).map_err(|e| e.to_string())?;
    let metrics_obj = get(&v, "metrics").ok_or("line has no `metrics` object")?;
    let mut metrics = [0.0f64; METRICS.len()];
    for (slot, m) in metrics.iter_mut().zip(METRICS.iter()) {
        *slot = get(metrics_obj, m.name)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("metrics object has no `{}`", m.name))?;
    }
    let cached = match get(&v, "cached") {
        Some(Value::Bool(b)) => *b,
        _ => return Err("line has no boolean `cached` field".to_string()),
    };
    Ok(CellLine {
        id: require_str(&v, "id")?,
        key: require_str(&v, "key")?,
        cached,
        metrics,
    })
}

/// Parses the terminating summary line.
///
/// # Errors
///
/// Returns a description of the missing/mistyped field.
pub fn parse_done_line(line: &str) -> Result<DoneLine, String> {
    let v = serde::json::parse_value(line).map_err(|e| e.to_string())?;
    if get(&v, "done") != Some(&Value::Bool(true)) {
        return Err("not a done line".to_string());
    }
    Ok(DoneLine {
        cells: require_u64(&v, "cells")?,
        hits: require_u64(&v, "hits")?,
        evaluated: require_u64(&v, "evaluated")?,
        joined: require_u64(&v, "joined")?,
        micros: require_u64(&v, "micros")?,
    })
}

/// Whether an NDJSON line is a mid-stream cell error line (a cell whose
/// evaluation panicked — the stream continues past it).
pub fn is_error_line(line: &str) -> bool {
    serde::json::parse_value(line)
        .ok()
        .is_some_and(|v| get(&v, "error").is_some())
}

/// Renders a mid-stream cell error line.
pub fn error_line(id: &str, message: &str) -> String {
    serde::json::to_string(&Value::object(vec![
        ("id", Value::String(id.to_string())),
        ("error", Value::String(message.to_string())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_round_trips_through_the_wire_form() {
        for grid in presets::all() {
            let v = grid_to_value(&grid);
            let back = grid_from_value(&v).expect(&grid.name);
            assert_eq!(back, grid, "{}", grid.name);
            // And through actual JSON text.
            let text = serde::json::to_string(&v);
            let reparsed = parse_grid_request(text.as_bytes()).expect(&grid.name);
            assert_eq!(reparsed, grid, "{}", grid.name);
        }
    }

    #[test]
    fn preset_references_resolve() {
        let spec = parse_grid_request(br#"{"preset":"smoke"}"#).unwrap();
        assert_eq!(spec.name, "smoke");
        let err = parse_grid_request(br#"{"preset":"nope"}"#).unwrap_err();
        assert!(err.contains("unknown preset"), "{err}");
        assert!(err.contains("smoke"), "names the known presets: {err}");
    }

    #[test]
    fn knob_axes_default_and_validate() {
        let spec = parse_grid_request(
            br#"{"models":["VGG13"],"datasets":["Cifar10"],"designs":["ADA-GP-MAX"],
                "dataflows":["WS"],"schedules":["paper"]}"#,
        )
        .unwrap();
        assert_eq!(spec.bandwidths, vec![None]);
        assert_eq!(spec.buffers, vec![None]);
        assert_eq!(spec.name, "adhoc");
        let with_knobs = parse_grid_request(
            br#"{"models":["VGG13"],"datasets":["Cifar10"],"designs":["ADA-GP-MAX"],
                "dataflows":["WS"],"schedules":["paper"],"bandwidths":[null,64]}"#,
        )
        .unwrap();
        assert_eq!(with_knobs.bandwidths, vec![None, Some(64)]);
        for bad in [
            &br#"{"models":["VGG13"],"datasets":["Cifar10"],"designs":["ADA-GP-MAX"],
                 "dataflows":["WS"],"schedules":["paper"],"bandwidths":[0]}"#[..],
            br#"{"models":["VGG13"],"datasets":["Cifar10"],"designs":["ADA-GP-MAX"],
                 "dataflows":["WS"],"schedules":["paper"],"bandwidths":["fast"]}"#,
            br#"{"models":["VGG13"],"datasets":["Cifar10"],"designs":["ADA-GP-MAX"],
                 "dataflows":["WS"],"schedules":["paper"],"bandwidths":[]}"#,
        ] {
            assert!(parse_grid_request(bad).is_err());
        }
    }

    #[test]
    fn bad_submissions_name_the_problem() {
        assert!(parse_grid_request(b"[1,2]").unwrap_err().contains("object"));
        assert!(parse_grid_request(b"{nope")
            .unwrap_err()
            .contains("at byte"));
        assert!(parse_grid_request(br#"{"models":["VGG13"]}"#)
            .unwrap_err()
            .contains("missing axis `datasets`"));
        let unknown = parse_grid_request(
            br#"{"models":["VGG99"],"datasets":["Cifar10"],"designs":["ADA-GP-MAX"],
                "dataflows":["WS"],"schedules":["paper"]}"#,
        )
        .unwrap_err();
        assert!(unknown.contains("unknown models `VGG99`"), "{unknown}");
        assert!(unknown.contains("VGG13"), "lists known values: {unknown}");
    }

    #[test]
    fn cell_lines_round_trip_bit_exact() {
        let spec = adagp_sweep::grid::CellSpec::new(
            adagp_accel::Dataflow::WeightStationary,
            DatasetScale::Cifar10,
            adagp_nn::models::CnnModel::Vgg13,
            adagp_accel::AdaGpDesign::Max,
            PhaseSchedule::Paper,
        );
        let metrics = adagp_sweep::evaluate_cell(&spec);
        let line = cell_line(&spec.id, &spec.key(), false, &metrics);
        assert!(!line.contains('\n'), "NDJSON lines are single-line");
        let parsed = parse_cell_line(&line).unwrap();
        assert_eq!(parsed.id, spec.id);
        assert_eq!(parsed.key, spec.key());
        assert!(!parsed.cached);
        for (got, want) in parsed
            .metrics
            .iter()
            .zip(adagp_sweep::metrics_to_array(&metrics))
        {
            assert_eq!(got.to_bits(), want.to_bits(), "bit-exact through JSON");
        }
        assert!(parse_cell_line(&header_line("g", 3)).is_err());
    }

    #[test]
    fn done_and_error_lines_round_trip() {
        let done = DoneLine {
            cells: 8,
            hits: 5,
            evaluated: 2,
            joined: 1,
            micros: 1234,
        };
        assert_eq!(parse_done_line(&done_line(&done)).unwrap(), done);
        assert!(parse_done_line(&header_line("g", 1)).is_err());
        assert!(is_error_line(&error_line("abc", "boom")));
        assert!(!is_error_line(&done_line(&done)));
    }
}
