//! A minimal, incremental HTTP/1.1 layer: enough protocol to serve the
//! sweep service over raw `TcpStream`s, nothing more.
//!
//! The parser is a *push* parser — callers [`feed`](RequestParser::feed)
//! it whatever bytes the socket produced, at whatever chunk boundaries
//! the kernel chose, and it either asks for more, yields a complete
//! [`Request`], or fails with a typed [`HttpError`] carrying the 4xx/5xx
//! status the connection should answer with. It never panics on any byte
//! sequence and never needs to look at the socket itself, which is what
//! makes the protocol property tests (arbitrary split points, truncated
//! bodies, garbage bytes) possible without network I/O.
//!
//! Scope intentionally left out: chunked transfer encoding (rejected with
//! 501), keep-alive (every response says `Connection: close`; one request
//! per connection keeps the server's draining logic trivial), and TLS.

use std::fmt;

/// Hard cap on the request head (request line + headers) in bytes.
/// Exceeding it fails with `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Hard cap on a request body in bytes. A larger declared
/// `Content-Length` fails with `413 Content Too Large`.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed request: method, path, headers (name-lowercased), body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (`/grid`, `/metrics`, ...).
    pub path: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A protocol failure: the HTTP status the connection should answer with
/// and a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status code (4xx/5xx).
    pub status: u16,
    /// Reason detail for the response body.
    pub message: String,
}

impl HttpError {
    /// Builds an error from a status and message.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

/// Parsed head: method, path, declared body length.
#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    content_length: usize,
}

/// Incremental request parser; see the module docs for the contract.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    head: Option<Head>,
    received_any: bool,
}

/// Finds the end of the head in `buf`: offset of the terminator and its
/// length. Accepts both `\r\n\r\n` and the lenient bare `\n\n`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i..].starts_with(b"\r\n\r\n") {
            return Some((i, 4));
        }
        if buf[i..].starts_with(b"\n\n") {
            return Some((i, 2));
        }
    }
    None
}

impl RequestParser {
    /// Creates an empty parser (one per connection).
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Consumes the next chunk of socket bytes. Returns `Ok(None)` while
    /// the request is still incomplete, `Ok(Some(_))` exactly once when
    /// it completes.
    ///
    /// # Errors
    ///
    /// Returns the [`HttpError`] the connection should answer with:
    /// 400 for malformed syntax, 413/431 for size-cap violations,
    /// 501 for chunked bodies, 505 for non-HTTP/1.x versions.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        if !bytes.is_empty() {
            self.received_any = true;
        }
        self.buf.extend_from_slice(bytes);
        if self.head.is_none() {
            match find_head_end(&self.buf) {
                None => {
                    if self.buf.len() > MAX_HEAD_BYTES {
                        return Err(HttpError::new(431, "request head too large"));
                    }
                    return Ok(None);
                }
                Some((head_len, term_len)) => {
                    if head_len > MAX_HEAD_BYTES {
                        return Err(HttpError::new(431, "request head too large"));
                    }
                    let head = parse_head(&self.buf[..head_len])?;
                    self.buf.drain(..head_len + term_len);
                    self.head = Some(head);
                }
            }
        }
        let head = self.head.as_ref().expect("head parsed above");
        if self.buf.len() < head.content_length {
            return Ok(None);
        }
        let head = self.head.take().expect("head parsed above");
        let body = self.buf.drain(..head.content_length).collect();
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            headers: head.headers,
            body,
        }))
    }

    /// Signals end-of-stream. `Ok(())` if the connection was silent (no
    /// bytes at all — e.g. the shutdown wake-up probe) or every received
    /// request completed.
    ///
    /// # Errors
    ///
    /// Returns `400 truncated request` when EOF arrived mid-head or
    /// mid-body — the guarantee that a half-sent request can never hang
    /// the connection handler.
    pub fn finish(&self) -> Result<(), HttpError> {
        if self.head.is_some() || !self.buf.is_empty() {
            return Err(HttpError::new(400, "truncated request"));
        }
        Ok(())
    }

    /// Whether the parser has seen any bytes at all.
    pub fn received_any(&self) -> bool {
        self.received_any
    }
}

/// Parses the head (request line + header lines) from its raw bytes.
fn parse_head(raw: &[u8]) -> Result<Head, HttpError> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed request line `{request_line}`"),
            ))
        }
    };
    if !version.starts_with("HTTP/") {
        return Err(HttpError::new(
            400,
            format!("malformed request line `{request_line}`"),
        ));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            505,
            format!("unsupported protocol version `{version}`"),
        ));
    }
    if !method.chars().all(|c| c.is_ascii_uppercase()) || method.is_empty() {
        return Err(HttpError::new(400, format!("malformed method `{method}`")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header line `{line}`")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(
                400,
                format!("malformed header name `{name}`"),
            ));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.to_ascii_lowercase().contains("chunked"))
    {
        return Err(HttpError::new(501, "chunked transfer encoding unsupported"));
    }
    let mut content_length = 0usize;
    let mut seen_length: Option<usize> = None;
    for (k, v) in &headers {
        if k == "content-length" {
            let n: usize = v
                .parse()
                .map_err(|_| HttpError::new(400, format!("bad content-length `{v}`")))?;
            if let Some(prev) = seen_length {
                if prev != n {
                    return Err(HttpError::new(400, "conflicting content-length headers"));
                }
            }
            seen_length = Some(n);
            content_length = n;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body too large"));
    }
    Ok(Head {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        content_length,
    })
}

/// Canonical reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Renders a complete response with a `Content-Length` framed body.
pub fn response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len(),
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Renders the head of a streaming response: no `Content-Length`, the
/// body is framed by connection close (every response closes anyway).
pub fn streaming_head(status: u16, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n",
        status_reason(status),
    )
    .into_bytes()
}

/// Renders the standard JSON error response for `err`.
pub fn error_response(err: &HttpError) -> Vec<u8> {
    let body = serde::json::to_string(&serde::Value::object(vec![
        ("error", serde::Value::String(err.message.clone())),
        ("status", serde::Value::UInt(u64::from(err.status))),
    ]));
    response(err.status, "application/json", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = RequestParser::new();
        p.feed(bytes)
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_across_feeds() {
        let raw = b"POST /grid HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut p = RequestParser::new();
        // One byte at a time — the worst-case TCP fragmentation.
        for &b in &raw[..raw.len() - 1] {
            assert_eq!(p.feed(&[b]).unwrap(), None);
        }
        let req = p.feed(&raw[raw.len() - 1..]).unwrap().unwrap();
        assert_eq!(req.body, b"hello");
        assert!(p.finish().is_ok());
    }

    #[test]
    fn lenient_bare_newlines_parse_too() {
        let req = parse_all(b"GET /health HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/health");
    }

    #[test]
    fn rejects_malformed_syntax_with_400() {
        for raw in [
            &b"NOT A REQUEST\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
        ] {
            assert_eq!(parse_all(raw).unwrap_err().status, 400, "{raw:?}");
        }
    }

    #[test]
    fn rejects_oversize_head_and_body() {
        let huge = format!(
            "GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse_all(huge.as_bytes()).unwrap_err().status, 431);
        let big_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse_all(big_body.as_bytes()).unwrap_err().status, 413);
    }

    #[test]
    fn rejects_unsupported_version_and_chunked() {
        assert_eq!(parse_all(b"GET /x HTTP/2\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(
            parse_all(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
    }

    #[test]
    fn truncation_is_a_clean_400_never_a_hang() {
        let mut p = RequestParser::new();
        assert_eq!(
            p.feed(b"POST /grid HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal")
                .unwrap(),
            None
        );
        assert_eq!(p.finish().unwrap_err().status, 400);
        // A silent connection (shutdown probe) finishes clean.
        assert!(RequestParser::new().finish().is_ok());
    }

    #[test]
    fn responses_are_well_formed() {
        let bytes = response(200, "application/json", "{}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let head = String::from_utf8(streaming_head(200, "application/x-ndjson")).unwrap();
        assert!(!head.contains("Content-Length"));
        assert!(head.ends_with("\r\n\r\n"));
        let err = String::from_utf8(error_response(&HttpError::new(400, "nope"))).unwrap();
        assert!(err.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(err.contains("\"error\":\"nope\""));
    }
}
