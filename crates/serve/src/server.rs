//! The resident sweep server: accept loop, bounded connection queue,
//! worker threads, routing, and graceful drain-and-flush shutdown.
//!
//! Threading model: one accept thread pushes connections onto a
//! [`BoundedQueue`] with [`try_push`](BoundedQueue::try_push) — a full
//! queue answers `503` immediately instead of growing without bound —
//! and a small fixed set of worker threads pops them, parses one request
//! per connection, and serves it. Grid evaluations run on the shared
//! `adagp_runtime::pool()` in windows, so cell results stream back while
//! later windows are still evaluating, and every evaluation is memoized
//! and coalesced by the [`CellCache`].
//!
//! Shutdown (via [`ServerHandle::shutdown`] or `POST /shutdown`) raises
//! a flag and pokes the listener with a wake-up connection; the accept
//! thread stops and closes the queue, the workers finish every already
//! accepted request (draining in-flight evaluations with them), and the
//! cache is flushed to disk as a byte-stable JSON snapshot.
//!
//! Durability does not depend on that graceful flush: with
//! [`ServerConfig::log_dir`] set, every fresh evaluation is appended to
//! a crash-safe shard log (fsync per record) the moment it completes,
//! and a restarted server replays the merged log before accepting
//! traffic — a `kill -9` mid-grid costs zero recomputation.

use crate::cache::{CellCache, Served};
use crate::http::{error_response, response, streaming_head, HttpError, Request, RequestParser};
use crate::metrics::ServerMetrics;
use crate::wire::{cell_line, done_line, error_line, header_line, parse_grid_request, DoneLine};
use adagp_obs as obs;
use adagp_runtime::{BoundedQueue, TryPushError};
use adagp_sweep::grid::GridSpec;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tunables. `Default` is suitable for tests: an ephemeral port,
/// four workers, a 64-connection queue.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Connection-serving worker threads.
    pub workers: usize,
    /// Bounded connection-queue depth; overflow answers 503.
    pub queue_depth: usize,
    /// Cells per streaming window of a `/grid` response.
    pub grid_window: usize,
    /// Run artifacts to warm the cache from before accepting traffic.
    pub warm: Vec<PathBuf>,
    /// Where shutdown flushes the cache snapshot (`None`: no flush).
    pub flush_path: Option<PathBuf>,
    /// Incremental shard-log directory (`None`: snapshot-only
    /// durability). When set, the cache warm-loads every record already
    /// merged from the directory's shard logs and appends each fresh
    /// evaluation to `shard-1-of-1.ndjson` with an fsync per record —
    /// a killed server restarts mid-grid with zero recomputation.
    pub log_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            grid_window: 8,
            warm: Vec::new(),
            flush_path: None,
            log_dir: None,
        }
    }
}

/// Shared server state: the memo cache, the counters, and the shutdown
/// flag.
#[derive(Debug)]
pub struct ServeState {
    /// The memoized, coalescing cell store.
    pub cache: CellCache,
    /// The `/metrics` counters.
    pub metrics: ServerMetrics,
    addr: SocketAddr,
    grid_window: usize,
    stop: AtomicBool,
}

impl ServeState {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests shutdown: raises the flag and pokes the accept loop with
    /// a wake-up connection so a blocking `accept()` observes it.
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The probe connection sends no bytes; the handler ignores it.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// Where a parsed request routes. Pure — computable without a socket,
/// which is what the protocol tests exercise.
#[derive(Debug)]
pub enum Routed {
    /// `GET /health`.
    Health,
    /// `GET /metrics`.
    Metrics,
    /// `GET /profile`.
    Profile,
    /// `GET /critical`.
    Critical,
    /// `POST /shutdown`.
    Shutdown,
    /// `POST /grid` with a decoded submission.
    Grid(GridSpec),
    /// Anything else: the error to answer with.
    Error(HttpError),
}

/// Routes a parsed request.
pub fn route(req: &Request) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => Routed::Health,
        ("GET", "/metrics") => Routed::Metrics,
        ("GET", "/profile") => Routed::Profile,
        ("GET", "/critical") => Routed::Critical,
        ("POST", "/shutdown") => Routed::Shutdown,
        ("POST", "/grid") => match parse_grid_request(&req.body) {
            Ok(spec) => Routed::Grid(spec),
            Err(msg) => Routed::Error(HttpError::new(400, msg)),
        },
        (_, "/health" | "/metrics" | "/profile" | "/critical" | "/shutdown" | "/grid") => {
            Routed::Error(HttpError::new(
                405,
                format!("method {} not allowed on {}", req.method, req.path),
            ))
        }
        (_, path) => Routed::Error(HttpError::new(404, format!("no such endpoint `{path}`"))),
    }
}

/// A running server: its address, state, and joinable threads.
#[derive(Debug)]
pub struct ServerHandle {
    state: Arc<ServeState>,
    flush_path: Option<PathBuf>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Starts a server per `cfg`: warm-loads the cache, binds, and spawns
/// the accept and worker threads. Returns once the server is accepting.
///
/// # Errors
///
/// Returns a description of a warm-load or bind failure.
pub fn start(cfg: ServerConfig) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let state = Arc::new(ServeState {
        cache: CellCache::new(),
        metrics: ServerMetrics::new(),
        addr,
        grid_window: cfg.grid_window.max(1),
        stop: AtomicBool::new(false),
    });
    for path in &cfg.warm {
        state.cache.warm_load(path)?;
    }
    if let Some(dir) = &cfg.log_dir {
        // Replay the crash-safe append log: every record any previous
        // incarnation committed becomes a full warm entry (resume hits
        // on /metrics), then this incarnation appends to the same log.
        let merged = adagp_sweep::shardlog::merge_dir(dir)?;
        for (path, span) in &merged.skipped {
            eprintln!("adagp-serve: warning: {}: skipped {span}", path.display());
        }
        let cells: Vec<_> = merged.by_id.into_values().collect();
        let resumed = state.cache.warm_from_stored(&adagp_sweep::StoredRun {
            cells,
            ..Default::default()
        });
        adagp_sweep::shardlog::note_resume_hits(resumed as u64);
        let writer = adagp_sweep::shardlog::ShardWriter::open(dir, adagp_sweep::Shard::default())
            .map_err(|e| format!("open shard log in {}: {e}", dir.display()))?;
        state.cache.attach_log(writer);
    }
    let queue = Arc::new(BoundedQueue::<TcpStream>::new(cfg.queue_depth.max(1)));
    let workers = (0..cfg.workers.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("adagp-serve-{i}"))
                .spawn(move || {
                    while let Some(stream) = queue.pop() {
                        handle_connection(&state, stream);
                    }
                })
                .expect("spawn serve worker")
        })
        .collect();
    let accept = {
        let state = Arc::clone(&state);
        let queue = Arc::clone(&queue);
        std::thread::Builder::new()
            .name("adagp-serve-accept".to_string())
            .spawn(move || {
                accept_loop(&listener, &state, &queue);
                queue.close();
            })
            .expect("spawn serve accept loop")
    };
    Ok(ServerHandle {
        state,
        flush_path: cfg.flush_path,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, state: &ServeState, queue: &BoundedQueue<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.stopping() {
                    return;
                }
                continue;
            }
        };
        if state.stopping() {
            // The wake-up probe (or a late arrival); drop and stop.
            drop(stream);
            return;
        }
        match queue.try_push(stream) {
            Ok(()) => {}
            Err(TryPushError::Full(stream)) => {
                state
                    .metrics
                    .overload_rejections
                    .fetch_add(1, Ordering::Relaxed);
                reject_overload(stream);
            }
            Err(TryPushError::Closed(_)) => return,
        }
    }
}

/// Answers a connection the queue had no room for: 503 with a
/// `Retry-After` hint, without reading the request.
fn reject_overload(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = r#"{"error":"server overloaded, retry later"}"#;
    let head = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
}

/// Reads, parses and serves one request on `stream` (one request per
/// connection; every response closes).
fn handle_connection(state: &ServeState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut parser = RequestParser::new();
    let mut buf = [0u8; 4096];
    let req = loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                // EOF: a silent wake-up probe closes clean; a truncated
                // request earns its 400.
                if let Err(e) = parser.finish() {
                    state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.write_all(&error_response(&e));
                }
                return;
            }
            Ok(n) => match parser.feed(&buf[..n]) {
                Ok(Some(req)) => break req,
                Ok(None) => {}
                Err(e) => {
                    state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.write_all(&error_response(&e));
                    return;
                }
            },
            // Read timeout or reset: drop the connection. Nothing useful
            // can be said to a peer that stopped talking mid-request.
            Err(_) => return,
        }
    };
    state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    state
        .metrics
        .requests_in_flight
        .fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    // Request-lifecycle span (wall clock, `ADAGP_TRACE`-gated): covers
    // routing, evaluation and the streamed write-out.
    let span_start = if obs::enabled() { obs::now_ns() } else { 0 };
    let _ = respond(state, &req, &mut stream, started);
    if obs::enabled() {
        obs::record_span(
            "serve",
            format!("{} {}", req.method, req.path),
            span_start,
            obs::now_ns(),
        );
    }
    let micros = started.elapsed().as_micros() as u64;
    state.metrics.record_request_micros(micros);
    state.metrics.record_endpoint_micros(&req.path, micros);
    state
        .metrics
        .requests_in_flight
        .fetch_sub(1, Ordering::Relaxed);
}

fn respond(
    state: &ServeState,
    req: &Request,
    stream: &mut TcpStream,
    started: Instant,
) -> std::io::Result<()> {
    match route(req) {
        Routed::Health => stream.write_all(&response(
            200,
            "application/json",
            &format!(r#"{{"ok":true,"cells_cached":{}}}"#, state.cache.len()),
        )),
        Routed::Metrics => {
            // Server counters and endpoint histograms, then the
            // process-global obs registry (runtime pool, sweep) — one
            // scrape covers the whole process.
            let mut body = state.metrics.render();
            body.push_str(&obs::registry().render("adagp_"));
            stream.write_all(&response(200, "text/plain; charset=utf-8", &body))
        }
        Routed::Profile => {
            // The live span-tree profile of this process, aggregated from
            // the recorder's lanes on the spot (empty unless recording is
            // on — run the server under `ADAGP_TRACE`/`ADAGP_PROFILE` or
            // flip `obs::set_enabled`). Request spans are recorded *after*
            // `respond` returns, so a scrape never contains its own
            // in-flight request as a half-open span.
            let body = obs::build_profile(&obs::snapshot()).to_json("adagp-serve live profile");
            stream.write_all(&response(200, "application/json", &body))
        }
        Routed::Critical => {
            // Live stall attribution of this process's recorded lanes
            // (`adagp-critpath-v1`, measured mode): spans folded into
            // busy / queue-wait / idle per lane, with gaps classified
            // against the runtime pool's queue-wait p95. Empty unless
            // recording is on, same as `/profile`.
            let body = obs::analyze_snapshot(
                &obs::snapshot(),
                obs::measured_gap_threshold_ns(),
                "adagp-serve live critical path",
            )
            .to_json();
            stream.write_all(&response(200, "application/json", &body))
        }
        Routed::Shutdown => {
            stream.write_all(&response(
                200,
                "application/json",
                r#"{"ok":true,"draining":true}"#,
            ))?;
            stream.flush()?;
            state.request_shutdown();
            Ok(())
        }
        Routed::Grid(spec) => serve_grid(state, &spec, stream, started),
        Routed::Error(e) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            stream.write_all(&error_response(&e))
        }
    }
}

/// Streams a `/grid` response: header line, cell lines in evaluation
/// windows (flushed per window), summary line.
fn serve_grid(
    state: &ServeState,
    spec: &GridSpec,
    stream: &mut TcpStream,
    started: Instant,
) -> std::io::Result<()> {
    state.metrics.grid_requests.fetch_add(1, Ordering::Relaxed);
    let cells = spec.expand();
    stream.write_all(&streaming_head(200, "application/x-ndjson"))?;
    let mut line = header_line(&spec.name, cells.len());
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    let mut done = DoneLine {
        cells: 0,
        hits: 0,
        evaluated: 0,
        joined: 0,
        micros: 0,
    };
    for window in cells.chunks(state.grid_window) {
        let results = adagp_runtime::pool().parallel_map(window.to_vec(), |cell| {
            let outcome = state.cache.get_or_evaluate(&cell);
            (cell, outcome)
        });
        let mut chunk = String::new();
        for (cell, outcome) in results {
            match outcome {
                Ok((cached, served)) => {
                    state.metrics.cells_served.fetch_add(1, Ordering::Relaxed);
                    done.cells += 1;
                    match served {
                        Served::Hit => {
                            state.metrics.cell_hits.fetch_add(1, Ordering::Relaxed);
                            done.hits += 1;
                        }
                        Served::Evaluated => {
                            state.metrics.cell_misses.fetch_add(1, Ordering::Relaxed);
                            state.metrics.evaluations.fetch_add(1, Ordering::Relaxed);
                            done.evaluated += 1;
                        }
                        Served::Joined => {
                            state.metrics.cell_misses.fetch_add(1, Ordering::Relaxed);
                            state
                                .metrics
                                .coalesced_waits
                                .fetch_add(1, Ordering::Relaxed);
                            done.joined += 1;
                        }
                    }
                    chunk.push_str(&cell_line(
                        &cell.id,
                        &cell.key(),
                        matches!(served, Served::Hit),
                        &cached.metrics(),
                    ));
                }
                Err(msg) => chunk.push_str(&error_line(&cell.id, &msg)),
            }
            chunk.push('\n');
        }
        stream.write_all(chunk.as_bytes())?;
        stream.flush()?;
    }
    done.micros = started.elapsed().as_micros() as u64;
    let mut tail = done_line(&done);
    tail.push('\n');
    stream.write_all(tail.as_bytes())
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The shared state (cache + metrics), for in-process assertions.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain every accepted request
    /// (in-flight evaluations included), join all threads, and flush the
    /// cache snapshot if configured. Returns the number of cells flushed
    /// (`None` when no flush path was configured).
    ///
    /// # Errors
    ///
    /// Returns a description of a flush I/O failure; the threads are
    /// joined regardless.
    pub fn shutdown(mut self) -> Result<Option<usize>, String> {
        self.shutdown_impl()
    }

    /// Blocks until shutdown is requested remotely (`POST /shutdown`),
    /// then drains, joins and flushes exactly like
    /// [`shutdown`](ServerHandle::shutdown). This is the CLI's main
    /// loop.
    ///
    /// # Errors
    ///
    /// Returns a description of a flush I/O failure.
    pub fn serve_forever(mut self) -> Result<Option<usize>, String> {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> Result<Option<usize>, String> {
        self.state.request_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        match self.flush_path.take() {
            None => Ok(None),
            Some(path) => self
                .state
                .cache
                .flush(&path)
                .map(Some)
                .map_err(|e| format!("flush {}: {e}", path.display())),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort cleanup for handles dropped without an explicit
        // shutdown (e.g. a panicking test): threads must not leak.
        let _ = self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    #[test]
    fn routing_is_pure_and_total() {
        assert!(matches!(route(&req("GET", "/health", b"")), Routed::Health));
        assert!(matches!(
            route(&req("GET", "/metrics", b"")),
            Routed::Metrics
        ));
        assert!(matches!(
            route(&req("GET", "/profile", b"")),
            Routed::Profile
        ));
        match route(&req("POST", "/profile", b"")) {
            Routed::Error(e) => assert_eq!(e.status, 405),
            other => panic!("expected 405, got {other:?}"),
        }
        assert!(matches!(
            route(&req("GET", "/critical", b"")),
            Routed::Critical
        ));
        match route(&req("POST", "/critical", b"")) {
            Routed::Error(e) => assert_eq!(e.status, 405),
            other => panic!("expected 405, got {other:?}"),
        }
        assert!(matches!(
            route(&req("POST", "/shutdown", b"")),
            Routed::Shutdown
        ));
        match route(&req("POST", "/grid", br#"{"preset":"smoke"}"#)) {
            Routed::Grid(spec) => assert_eq!(spec.name, "smoke"),
            other => panic!("expected grid route, got {other:?}"),
        }
        match route(&req("POST", "/grid", b"not json")) {
            Routed::Error(e) => assert_eq!(e.status, 400),
            other => panic!("expected 400, got {other:?}"),
        }
        match route(&req("DELETE", "/grid", b"")) {
            Routed::Error(e) => assert_eq!(e.status, 405),
            other => panic!("expected 405, got {other:?}"),
        }
        match route(&req("GET", "/nope", b"")) {
            Routed::Error(e) => assert_eq!(e.status, 404),
            other => panic!("expected 404, got {other:?}"),
        }
    }
}
