//! Server observability: lock-free atomic counters rendered on the
//! `/metrics` endpoint in the flat `name value` text form.
//!
//! The counters are not independent — they satisfy two invariants the CI
//! smoke asserts after every load test:
//!
//! * `cell_hits + cell_misses == cells_served` — every served cell was
//!   either memoized or not.
//! * `evaluations + coalesced_waits == cell_misses` — every miss either
//!   ran the evaluator or joined a concurrent in-flight evaluation
//!   (request coalescing), never both.
//!
//! [`ServerMetrics::consistent`] checks both, and [`parse_metrics`]
//! reads a scraped `/metrics` body back into a map so tests can assert
//! them from outside the process.
//!
//! Since the `adagp-obs` integration, `/metrics` additionally carries
//! per-endpoint request-latency **histograms** in the three-line-shape
//! form documented in `adagp_obs::metric` (`_bucket{le="…"}` lines with
//! disjoint log2 buckets, `_sum`, `_count`), plus the process-global
//! `adagp_obs` registry (runtime pool and sweep metrics) rendered under
//! the plain `adagp_` prefix. Histograms add a third machine-checkable
//! invariant: on a quiescent scrape, the `_bucket` lines of each family
//! sum to its `_count`.

use adagp_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Metric name prefix on the wire.
const PREFIX: &str = "adagp_serve_";

/// The server's counter set. All counters are monotonically increasing
/// except `requests_in_flight`, which is a gauge.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests that parsed successfully (any endpoint).
    pub requests_total: AtomicU64,
    /// Requests currently being served (gauge).
    pub requests_in_flight: AtomicU64,
    /// `/grid` submissions accepted.
    pub grid_requests: AtomicU64,
    /// Cells answered across all `/grid` responses.
    pub cells_served: AtomicU64,
    /// Cells answered straight from the memo store.
    pub cell_hits: AtomicU64,
    /// Cells not memoized at request time.
    pub cell_misses: AtomicU64,
    /// Cell evaluations actually executed.
    pub evaluations: AtomicU64,
    /// Misses that joined a concurrent evaluation instead of running one.
    pub coalesced_waits: AtomicU64,
    /// Connections refused with 503 because the request queue was full.
    pub overload_rejections: AtomicU64,
    /// Requests answered with a 4xx/5xx protocol or decode error.
    pub bad_requests: AtomicU64,
    /// Total wall-clock microseconds across served requests.
    pub request_micros_total: AtomicU64,
    /// Largest single-request wall-clock microseconds.
    pub request_micros_max: AtomicU64,
    /// `/health` request latency (microseconds).
    pub health_micros: obs::Histogram,
    /// `/metrics` request latency (microseconds).
    pub metrics_micros: obs::Histogram,
    /// `/grid` request latency (microseconds).
    pub grid_micros: obs::Histogram,
    /// `/shutdown` request latency (microseconds).
    pub shutdown_micros: obs::Histogram,
    /// Latency of requests that routed to an error (microseconds).
    pub other_micros: obs::Histogram,
}

impl ServerMetrics {
    /// Fresh all-zero counters.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// Records one served request taking `micros` wall-clock.
    pub fn record_request_micros(&self, micros: u64) {
        self.request_micros_total
            .fetch_add(micros, Ordering::Relaxed);
        self.request_micros_max.fetch_max(micros, Ordering::Relaxed);
    }

    /// The per-endpoint latency histograms, with their wire names.
    fn endpoint_histograms(&self) -> [(&'static str, &obs::Histogram); 5] {
        [
            ("health_micros", &self.health_micros),
            ("metrics_micros", &self.metrics_micros),
            ("grid_micros", &self.grid_micros),
            ("shutdown_micros", &self.shutdown_micros),
            ("other_micros", &self.other_micros),
        ]
    }

    /// Records one request to `path` into that endpoint's latency
    /// histogram (unknown paths land in `other_micros`).
    pub fn record_endpoint_micros(&self, path: &str, micros: u64) {
        let h = match path {
            "/health" => &self.health_micros,
            "/metrics" => &self.metrics_micros,
            "/grid" => &self.grid_micros,
            "/shutdown" => &self.shutdown_micros,
            _ => &self.other_micros,
        };
        h.record(micros);
    }

    /// Name/value pairs in stable render order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let v = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("requests_total", v(&self.requests_total)),
            ("requests_in_flight", v(&self.requests_in_flight)),
            ("grid_requests", v(&self.grid_requests)),
            ("cells_served", v(&self.cells_served)),
            ("cell_hits", v(&self.cell_hits)),
            ("cell_misses", v(&self.cell_misses)),
            ("evaluations", v(&self.evaluations)),
            ("coalesced_waits", v(&self.coalesced_waits)),
            ("overload_rejections", v(&self.overload_rejections)),
            ("bad_requests", v(&self.bad_requests)),
            ("request_micros_total", v(&self.request_micros_total)),
            ("request_micros_max", v(&self.request_micros_max)),
        ]
    }

    /// Renders the `/metrics` body: one `adagp_serve_<name> <value>`
    /// line per counter (stable order), then the per-endpoint latency
    /// histograms in the `_bucket`/`_sum`/`_count` form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            out.push_str(PREFIX);
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, h) in self.endpoint_histograms() {
            h.render_into(&mut out, PREFIX, name);
        }
        out
    }

    /// Checks the cross-counter invariants (see module docs). `None`
    /// means consistent; `Some(why)` describes the first violation.
    pub fn consistent(&self) -> Option<String> {
        check_invariants(
            &self
                .snapshot()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v as i128))
                .collect(),
        )
    }
}

/// Parses a scraped `/metrics` body back into a name → value map.
///
/// The server's own lines have their `adagp_serve_` prefix stripped
/// (preserving the historical keys); lines from the process-global
/// `adagp_obs` registry — which render under the shorter `adagp_`
/// prefix — keep their full name. Histogram `_bucket{le="…"}` lines are
/// stored under their full labelled name, so
/// [`check_invariants`] can sum each family against its `_count`.
///
/// Values are `i128`: wide enough for the full `u64` range a histogram
/// `_sum` can reach **and** for the negative values a gauge (e.g. an
/// `adagp_obs` registry `Gauge`, which is `i64` underneath) legally
/// renders.
///
/// # Errors
///
/// Returns a description of the first malformed line, naming its
/// 1-indexed line number.
pub fn parse_metrics(text: &str) -> Result<HashMap<String, i128>, String> {
    let mut out = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let (name, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {lineno}: malformed metrics line `{line}`"))?;
        let name = match name.strip_prefix(PREFIX) {
            Some(stripped) => stripped,
            None if name.starts_with("adagp_") => name,
            None => {
                return Err(format!(
                    "line {lineno}: metrics line without `adagp_` prefix: `{line}`"
                ))
            }
        };
        let value: i128 = value
            .parse()
            .map_err(|_| format!("line {lineno}: non-integer metrics value in `{line}`"))?;
        out.insert(name.to_string(), value);
    }
    Ok(out)
}

/// The invariant checker both [`ServerMetrics::consistent`] and external
/// scrapers use. `None` means consistent.
///
/// Checks the two cross-counter identities from the module docs plus,
/// for every histogram family present (any `<family>_count` key), that
/// the family's disjoint `_bucket` lines sum to its `_count`. A family
/// whose only bucket line is the `+Inf` one is fine — every recorded
/// value landing in the top bucket still has to reconcile with `_count`.
pub fn check_invariants(m: &HashMap<String, i128>) -> Option<String> {
    let get = |name: &str| m.get(name).copied().unwrap_or(0);
    let (hits, misses, served) = (get("cell_hits"), get("cell_misses"), get("cells_served"));
    if hits + misses != served {
        return Some(format!(
            "cell_hits ({hits}) + cell_misses ({misses}) != cells_served ({served})"
        ));
    }
    let (evals, joined) = (get("evaluations"), get("coalesced_waits"));
    if evals + joined != misses {
        return Some(format!(
            "evaluations ({evals}) + coalesced_waits ({joined}) != cell_misses ({misses})"
        ));
    }
    for (key, &count) in m {
        let Some(family) = key.strip_suffix("_count") else {
            continue;
        };
        if !m.contains_key(&format!("{family}_sum")) {
            // Not a histogram family (no `_sum` companion line).
            continue;
        }
        let bucket_prefix = format!("{family}_bucket{{");
        let bucket_total: i128 = m
            .iter()
            .filter(|(k, _)| k.starts_with(&bucket_prefix))
            .map(|(_, v)| *v)
            .sum();
        if bucket_total != count {
            return Some(format!(
                "histogram `{family}`: _bucket lines sum to {bucket_total}, _count is {count}"
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let m = ServerMetrics::new();
        m.requests_total.store(7, Ordering::Relaxed);
        m.cells_served.store(10, Ordering::Relaxed);
        m.cell_hits.store(6, Ordering::Relaxed);
        m.cell_misses.store(4, Ordering::Relaxed);
        m.evaluations.store(3, Ordering::Relaxed);
        m.coalesced_waits.store(1, Ordering::Relaxed);
        m.record_request_micros(120);
        m.record_request_micros(80);
        m.record_endpoint_micros("/grid", 120);
        m.record_endpoint_micros("/health", 80);
        m.record_endpoint_micros("/health", 81);
        m.record_endpoint_micros("/bogus", 5);
        let text = m.render();
        let parsed = parse_metrics(&text).unwrap();
        assert_eq!(parsed["requests_total"], 7);
        assert_eq!(parsed["request_micros_total"], 200);
        assert_eq!(parsed["request_micros_max"], 120);
        // Histogram line shapes survive the round trip.
        assert_eq!(parsed["grid_micros_count"], 1);
        assert_eq!(parsed["grid_micros_sum"], 120);
        assert_eq!(parsed["health_micros_bucket{le=\"127\"}"], 2);
        assert_eq!(parsed["other_micros_count"], 1);
        assert_eq!(m.consistent(), None);
        assert_eq!(check_invariants(&parsed), None);
    }

    #[test]
    fn histogram_bucket_sums_are_checked() {
        let mut m: HashMap<String, i128> = HashMap::new();
        m.insert("lat_us_bucket{le=\"7\"}".into(), 2);
        m.insert("lat_us_bucket{le=\"63\"}".into(), 1);
        m.insert("lat_us_sum 0".into(), 0); // red herring: malformed key, ignored
        m.insert("lat_us_sum".into(), 30);
        m.insert("lat_us_count".into(), 3);
        assert_eq!(check_invariants(&m), None);
        m.insert("lat_us_count".into(), 4);
        let why = check_invariants(&m).expect("bucket/count mismatch");
        assert!(why.contains("lat_us"), "{why}");
        // A `_count`-suffixed plain counter without a `_sum` companion is
        // not treated as a histogram family.
        let mut plain: HashMap<String, i128> = HashMap::new();
        plain.insert("widget_count".into(), 9);
        assert_eq!(check_invariants(&plain), None);
    }

    #[test]
    fn inf_bucket_only_histograms_are_consistent() {
        // Every recorded value in the top bucket: one `+Inf` line must
        // reconcile with `_count` like any other family.
        let text =
            "adagp_big_us_bucket{le=\"+Inf\"} 3\nadagp_big_us_sum 300\nadagp_big_us_count 3\n";
        let m = parse_metrics(text).expect("inf-bucket-only family parses");
        assert_eq!(m["adagp_big_us_bucket{le=\"+Inf\"}"], 3);
        assert_eq!(check_invariants(&m), None);
        // ... and a reconciliation failure is still caught.
        let bad =
            "adagp_big_us_bucket{le=\"+Inf\"} 2\nadagp_big_us_sum 300\nadagp_big_us_count 3\n";
        let m = parse_metrics(bad).unwrap();
        assert!(check_invariants(&m).expect("mismatch").contains("big_us"));
    }

    #[test]
    fn negative_gauges_and_full_u64_range_parse() {
        let text = format!(
            "adagp_serve_requests_in_flight -2\nadagp_pool_queue_depth -7\nadagp_serve_big_sum {}\n",
            u64::MAX
        );
        let m = parse_metrics(&text).expect("negative gauges are legal");
        assert_eq!(m["requests_in_flight"], -2);
        assert_eq!(m["adagp_pool_queue_depth"], -7);
        assert_eq!(m["big_sum"], u64::MAX as i128);
        assert_eq!(check_invariants(&m), None);
    }

    #[test]
    fn obs_registry_lines_parse_with_their_full_names() {
        let text = "adagp_serve_requests_total 1\nadagp_runtime_pool_tasks_total 5\n";
        let parsed = parse_metrics(text).unwrap();
        assert_eq!(parsed["requests_total"], 1);
        assert_eq!(parsed["adagp_runtime_pool_tasks_total"], 5);
    }

    #[test]
    fn inconsistencies_are_named() {
        let m = ServerMetrics::new();
        m.cells_served.store(3, Ordering::Relaxed);
        m.cell_hits.store(1, Ordering::Relaxed);
        let why = m.consistent().expect("inconsistent");
        assert!(why.contains("cells_served"), "{why}");
        let m2 = ServerMetrics::new();
        m2.cells_served.store(2, Ordering::Relaxed);
        m2.cell_misses.store(2, Ordering::Relaxed);
        m2.evaluations.store(2, Ordering::Relaxed);
        m2.coalesced_waits.store(1, Ordering::Relaxed);
        assert!(m2.consistent().unwrap().contains("coalesced_waits"));
    }

    #[test]
    fn malformed_scrapes_are_rejected_with_line_numbers() {
        assert!(parse_metrics("adagp_serve_x 1\n\nadagp_serve_y 2\n").is_ok());
        let e = parse_metrics("adagp_serve_ok 1\nno_prefix 1\n").unwrap_err();
        assert!(e.starts_with("line 2:"), "{e}");
        let e = parse_metrics("adagp_serve_x one\n").unwrap_err();
        assert!(e.starts_with("line 1:"), "{e}");
        let e = parse_metrics("adagp_serve_a 1\n\nadagp_serve_x\n").unwrap_err();
        assert!(e.starts_with("line 3:"), "{e}");
    }
}
