//! # adagp-serve
//!
//! Sweep-as-a-service: a resident TCP server that answers `GridSpec`
//! submissions from a **memoized cell store** instead of re-deriving
//! every design-space point from scratch. `adagp-sweep`'s content-derived
//! cell IDs (FNV-1a over the canonical axis key) are perfect cache keys:
//! the same cell submitted by any client, in any grid, at any time maps
//! to the same entry, so the server evaluates each point of the paper's
//! design space **once** — the ROADMAP's "resident sweep service" item.
//!
//! Layers (std-only, hand-rolled in the same vendoring spirit as the
//! workspace's serde stand-in):
//!
//! * [`http`] — an incremental HTTP/1.1 push parser tolerant of
//!   arbitrary TCP fragmentation, with typed 4xx/5xx errors; one request
//!   per connection, `Connection: close` framing.
//! * [`wire`] — `GridSpec` ⇄ JSON (preset references or explicit axes
//!   under their stable display names) and the NDJSON result stream
//!   (header line, one line per cell as it completes, summary line).
//!   Metric floats use shortest-round-trip formatting, so clients
//!   recover bit-identical `f64`s.
//! * [`cache`] — the coalescing memo store: exactly one evaluation per
//!   cell across any number of concurrent requests, warm-loadable from
//!   committed `runs/*` artifacts (CSV/JSON, schema v1–v3), flushed on
//!   shutdown as a byte-stable full-precision JSON snapshot.
//! * [`metrics`] — atomic hit/miss/evaluation/in-flight counters on
//!   `/metrics`, with machine-checkable cross-counter invariants.
//! * [`server`] — accept loop + bounded connection queue (503 on
//!   overload via `BoundedQueue::try_push`) + worker threads; cell
//!   evaluation runs on the shared `adagp_runtime::pool()`; graceful
//!   shutdown drains accepted requests and flushes the cache.
//! * [`client`] — the blocking client the load-test harness and the
//!   integration tests drive the server with.
//!
//! ## Endpoints
//!
//! | Endpoint         | Reply                                          |
//! |------------------|------------------------------------------------|
//! | `GET /health`    | `{"ok":true,"cells_cached":n}`                 |
//! | `GET /metrics`   | `adagp_serve_<counter> <value>` lines          |
//! | `POST /grid`     | NDJSON stream of evaluated cells               |
//! | `POST /shutdown` | `{"ok":true,"draining":true}`, then drain      |

pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod server;
pub mod wire;

pub use cache::{CachedCell, CellCache, Served};
pub use client::{
    fetch_metrics, http_request, http_request_retrying, submit_grid, GridResponse, HttpReply,
    RetryPolicy,
};
pub use http::{HttpError, Request, RequestParser, MAX_BODY_BYTES, MAX_HEAD_BYTES};
pub use metrics::{check_invariants, parse_metrics, ServerMetrics};
pub use server::{route, start, Routed, ServeState, ServerConfig, ServerHandle};
pub use wire::{grid_from_value, grid_to_value, parse_grid_request, CellLine, DoneLine};
