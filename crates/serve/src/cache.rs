//! The memoized cell store: content-derived cell IDs → evaluated
//! metrics, with request coalescing and a byte-stable disk snapshot.
//!
//! ## Coalescing
//!
//! [`CellCache::get_or_evaluate`] guarantees **exactly one evaluation
//! per cell**, no matter how many requests ask concurrently: the first
//! asker installs an in-flight marker and evaluates on its own thread;
//! everyone else parks on the marker's condvar and receives the shared
//! result ([`Served::Joined`]). The marker only ever exists while its
//! creator is actively evaluating, so a waiter always waits on a running
//! computation — there is no lock-holding across the evaluation and no
//! cross-flight waiting, hence no deadlock on any pool size (including
//! `ADAGP_THREADS=1`, where pool regions run inline).
//!
//! ## Warm start vs. bit-exactness
//!
//! The cache warm-loads from any committed `runs/*` artifact (CSV or
//! JSON, schema v1–v3). Legacy files carry fewer metric columns, so
//! their entries are **partial**: they answer nothing by themselves —
//! a request for such a cell re-evaluates and upgrades the entry. Full
//! CSV entries are quantized to 6 decimals (byte-stable, not bit-exact);
//! callers that require bit-exact metrics (the load-test harness) start
//! cold instead of warm.
//!
//! ## Snapshot
//!
//! [`CellCache::snapshot_json`] emits the full-precision JSON run-record
//! form, cells sorted by ID, timing zeroed — reloading and re-flushing
//! is byte-identical (asserted by the cache-consistency tests). CSV is
//! deliberately *not* used here: 6-decimal quantization of ~4e11-cycle
//! metrics exceeds an `f64`'s ~17 significant digits, so CSV would not
//! reload byte-stably. [`CellCache::flush`] stages the snapshot in a
//! temp sibling and renames it into place, so a crash mid-flush never
//! leaves a torn snapshot where the last good one stood.
//!
//! ## Incremental append log
//!
//! With a [`ShardWriter`] attached ([`CellCache::attach_log`]), every
//! *fresh* evaluation is appended to the crash-safe shard log the moment
//! it completes — the server no longer depends on a graceful shutdown
//! flush for durability. A killed server warm-loads the merged log on
//! restart and re-evaluates nothing that already reached the disk.

use adagp_sweep::grid::CellSpec;
use adagp_sweep::shardlog::ShardWriter;
use adagp_sweep::store::{RunRecord, StoredCell, StoredRun, METRICS};
use adagp_sweep::{evaluate_cell, metrics_from_array, CellMetrics};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

/// One memoized cell with how many of its metric slots are real (legacy
/// warm loads carry a prefix; the rest are zero-filled).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedCell {
    /// The cell's stored form (id, axes, metrics).
    pub cell: StoredCell,
    /// Leading valid entries of `cell.metrics`.
    pub metric_count: usize,
}

impl CachedCell {
    /// Whether every metric slot is valid (a current-schema entry).
    pub fn is_full(&self) -> bool {
        self.metric_count == METRICS.len()
    }

    /// The typed metrics view. Only meaningful when [`is_full`]
    /// (partial entries have zero-filled tails).
    ///
    /// [`is_full`]: CachedCell::is_full
    pub fn metrics(&self) -> CellMetrics {
        metrics_from_array(&self.cell.metrics)
    }
}

/// How a cell was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Already memoized in full.
    Hit,
    /// This call ran the evaluator.
    Evaluated,
    /// A concurrent call was already evaluating; this one waited for it.
    Joined,
}

/// Completion slot of one in-flight evaluation.
#[derive(Debug)]
enum FlightState {
    Pending,
    Done(Arc<CachedCell>),
    Failed(String),
}

#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Arc<CachedCell>, String>) {
        let mut s = self.state.lock().unwrap();
        *s = match result {
            Ok(cell) => FlightState::Done(cell),
            Err(msg) => FlightState::Failed(msg),
        };
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<CachedCell>, String> {
        let mut s = self.state.lock().unwrap();
        loop {
            match &*s {
                FlightState::Pending => s = self.done.wait(s).unwrap(),
                FlightState::Done(cell) => return Ok(Arc::clone(cell)),
                FlightState::Failed(msg) => return Err(msg.clone()),
            }
        }
    }
}

#[derive(Debug)]
enum Entry {
    Ready(Arc<CachedCell>),
    InFlight(Arc<Flight>),
}

/// What the map lookup decided this caller should do.
enum Claim {
    Hit(Arc<CachedCell>),
    Wait(Arc<Flight>),
    Evaluate(Arc<Flight>),
}

/// The concurrent memo store. See the module docs for the contract.
#[derive(Debug, Default)]
pub struct CellCache {
    map: Mutex<HashMap<String, Entry>>,
    /// The attached incremental append log (`None`: snapshot-only
    /// durability). Its own mutex, never held together with `map`:
    /// appends happen after the entry is published.
    log: Mutex<Option<ShardWriter>>,
}

impl CellCache {
    /// An empty (cold) cache.
    pub fn new() -> Self {
        CellCache::default()
    }

    /// Attaches an append-only shard log: from now on every fresh
    /// evaluation is durably appended (fsync per record) as soon as it
    /// completes. Replaces any previously attached writer.
    pub fn attach_log(&self, writer: ShardWriter) {
        *self.log.lock().unwrap() = Some(writer);
    }

    /// Appends a freshly evaluated cell to the attached log, if any.
    /// Append failures are reported on stderr but do not fail the
    /// serving path — the entry is already published in memory, and the
    /// next graceful flush still captures it.
    fn log_append(&self, cell: &StoredCell) {
        let mut log = self.log.lock().unwrap();
        if let Some(writer) = log.as_mut() {
            if let Err(e) = writer.append(cell) {
                eprintln!(
                    "adagp-serve: warning: append to {} failed: {e}",
                    writer.path().display()
                );
            }
        }
    }

    /// Number of ready (memoized) cells, partial entries included.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap()
            .values()
            .filter(|e| matches!(e, Entry::Ready(_)))
            .count()
    }

    /// Whether no cell is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serves `spec` from the memo store, evaluating it (exactly once
    /// across all concurrent callers) on a miss. Partial warm-loaded
    /// entries count as misses and are upgraded in place.
    ///
    /// # Errors
    ///
    /// Returns the panic message if the evaluation itself panicked (the
    /// entry is removed so a later request can retry).
    pub fn get_or_evaluate(&self, spec: &CellSpec) -> Result<(Arc<CachedCell>, Served), String> {
        let claim = {
            let mut map = self.map.lock().unwrap();
            match map.get(&spec.id) {
                Some(Entry::Ready(cell)) if cell.is_full() => Claim::Hit(Arc::clone(cell)),
                Some(Entry::InFlight(flight)) => Claim::Wait(Arc::clone(flight)),
                _ => {
                    // Absent or partial: this caller evaluates.
                    let flight = Arc::new(Flight::new());
                    map.insert(spec.id.clone(), Entry::InFlight(Arc::clone(&flight)));
                    Claim::Evaluate(flight)
                }
            }
        };
        match claim {
            Claim::Hit(cell) => Ok((cell, Served::Hit)),
            Claim::Wait(flight) => flight.wait().map(|cell| (cell, Served::Joined)),
            Claim::Evaluate(flight) => {
                let result = catch_unwind(AssertUnwindSafe(|| evaluate_cell(spec)));
                let mut map = self.map.lock().unwrap();
                match result {
                    Ok(metrics) => {
                        let cell = Arc::new(CachedCell {
                            cell: StoredCell::from_evaluation(spec, &metrics),
                            metric_count: METRICS.len(),
                        });
                        map.insert(spec.id.clone(), Entry::Ready(Arc::clone(&cell)));
                        drop(map);
                        flight.complete(Ok(Arc::clone(&cell)));
                        self.log_append(&cell.cell);
                        Ok((cell, Served::Evaluated))
                    }
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        map.remove(&spec.id);
                        drop(map);
                        flight.complete(Err(msg.clone()));
                        Err(msg)
                    }
                }
            }
        }
    }

    /// Memoizes every cell of an already-loaded stored run. Entries that
    /// are already memoized in full (or mid-evaluation) are left alone;
    /// a fuller record upgrades a partial one. Returns how many entries
    /// were inserted or upgraded.
    pub fn warm_from_stored(&self, run: &StoredRun) -> usize {
        let mut map = self.map.lock().unwrap();
        let mut loaded = 0;
        for cell in &run.cells {
            let upgrade = match map.get(&cell.id) {
                None => true,
                Some(Entry::Ready(existing)) => existing.metric_count < run.metric_count,
                Some(Entry::InFlight(_)) => false,
            };
            if upgrade {
                map.insert(
                    cell.id.clone(),
                    Entry::Ready(Arc::new(CachedCell {
                        cell: cell.clone(),
                        metric_count: run.metric_count,
                    })),
                );
                loaded += 1;
            }
        }
        loaded
    }

    /// Warm-loads a committed run artifact (CSV or JSON, any supported
    /// schema version). Returns how many entries were inserted/upgraded.
    ///
    /// # Errors
    ///
    /// Returns the loader's description of an I/O or parse failure.
    pub fn warm_load(&self, path: &Path) -> Result<usize, String> {
        Ok(self.warm_from_stored(&StoredRun::load(path)?))
    }

    /// Renders the byte-stable snapshot: every *full* entry, sorted by
    /// cell ID, as a full-precision schema-v3 JSON run record (grid name
    /// `cache`, timing zeroed). Partial legacy entries are skipped —
    /// flushing their zero-filled tails would masquerade as real data.
    pub fn snapshot_json(&self) -> String {
        let mut cells: Vec<StoredCell> = {
            let map = self.map.lock().unwrap();
            map.values()
                .filter_map(|e| match e {
                    Entry::Ready(c) if c.is_full() => Some(c.cell.clone()),
                    _ => None,
                })
                .collect()
        };
        cells.sort_by(|a, b| a.id.cmp(&b.id));
        let mut text =
            serde::json::to_string_pretty(&RunRecord::from_stored_cells("cache", &cells));
        text.push('\n');
        text
    }

    /// Writes [`CellCache::snapshot_json`] to `path`, returning how many
    /// cells it holds. Crash-safe: the snapshot is staged in a
    /// `.{pid}.tmp` sibling and atomically renamed into place (the same
    /// discipline as `adagp_nn::checkpoint`), so an interrupted flush
    /// never truncates or tears an existing snapshot.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or renaming the file.
    pub fn flush(&self, path: &Path) -> std::io::Result<usize> {
        let full = {
            let map = self.map.lock().unwrap();
            map.values()
                .filter(|e| matches!(e, Entry::Ready(c) if c.is_full()))
                .count()
        };
        let mut tmp_name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "snapshot".into());
        tmp_name.push(format!(".{}.tmp", std::process::id()));
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, self.snapshot_json())?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(full)
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("evaluation panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("evaluation panicked: {s}")
    } else {
        "evaluation panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_sweep::grid::{DatasetScale, PhaseSchedule};
    use adagp_sweep::metrics_to_array;

    fn spec() -> CellSpec {
        CellSpec::new(
            adagp_accel::Dataflow::WeightStationary,
            DatasetScale::Cifar10,
            adagp_nn::models::CnnModel::Vgg13,
            adagp_accel::AdaGpDesign::Efficient,
            PhaseSchedule::Paper,
        )
    }

    #[test]
    fn evaluate_then_hit_bit_exact() {
        let cache = CellCache::new();
        assert!(cache.is_empty());
        let (first, served) = cache.get_or_evaluate(&spec()).unwrap();
        assert_eq!(served, Served::Evaluated);
        let (second, served) = cache.get_or_evaluate(&spec()).unwrap();
        assert_eq!(served, Served::Hit);
        assert_eq!(cache.len(), 1);
        let direct = metrics_to_array(&evaluate_cell(&spec()));
        for ((a, b), d) in first
            .cell
            .metrics
            .iter()
            .zip(&second.cell.metrics)
            .zip(&direct)
        {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), d.to_bits());
        }
        assert_eq!(first.metrics(), evaluate_cell(&spec()));
    }

    #[test]
    fn partial_warm_entries_are_upgraded_by_evaluation() {
        let cache = CellCache::new();
        let s = spec();
        let partial = StoredRun {
            cells: vec![StoredCell::from_evaluation(&s, &evaluate_cell(&s))],
            metric_count: 5, // pretend it came from a schema-v1 file
        };
        assert_eq!(cache.warm_from_stored(&partial), 1);
        assert_eq!(cache.len(), 1);
        // A partial entry is a miss: the cell is re-evaluated in full.
        let (cell, served) = cache.get_or_evaluate(&s).unwrap();
        assert_eq!(served, Served::Evaluated);
        assert!(cell.is_full());
        // And now it hits.
        assert_eq!(cache.get_or_evaluate(&s).unwrap().1, Served::Hit);
        // Re-warming with a *less* complete record does not downgrade.
        assert_eq!(cache.warm_from_stored(&partial), 0);
        assert_eq!(cache.get_or_evaluate(&s).unwrap().1, Served::Hit);
    }

    #[test]
    fn snapshot_skips_partial_entries_and_sorts_by_id() {
        let cache = CellCache::new();
        let s = spec();
        let partial = StoredRun {
            cells: vec![StoredCell::from_evaluation(&s, &evaluate_cell(&s))],
            metric_count: 5,
        };
        cache.warm_from_stored(&partial);
        let empty = StoredRun::from_json_str(&cache.snapshot_json()).unwrap();
        assert!(empty.cells.is_empty(), "partial entries must not flush");
        cache.get_or_evaluate(&s).unwrap();
        let full = StoredRun::from_json_str(&cache.snapshot_json()).unwrap();
        assert_eq!(full.cells.len(), 1);
        assert_eq!(full.cells[0].id, s.id);
    }
}
