//! A small blocking client for the serve wire protocol — what the
//! load-test harness, the CLI and the integration tests talk through.
//!
//! One request per connection, `Connection: close` framing: the client
//! writes the request, shutting down its write half, and reads to EOF.

use crate::metrics::parse_metrics;
use crate::wire::{is_error_line, parse_cell_line, parse_done_line, CellLine, DoneLine};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A raw HTTP exchange: status code, body text, and the `Retry-After`
/// hint when the server sent one (overload responses do).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// Response status code.
    pub status: u16,
    /// Response body (header section stripped).
    pub body: String,
    /// Parsed `Retry-After` header, in seconds, if present.
    pub retry_after: Option<u64>,
}

/// Bounded-retry policy for overloaded (`503`) replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff before a retry when the server sent no `Retry-After`
    /// hint; doubles per attempt.
    pub base_backoff_ms: u64,
    /// Cap on any single sleep, hinted or not. Keeps a hostile or
    /// misconfigured `Retry-After: 3600` from wedging a client.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// Milliseconds to sleep before retry number `attempt` (1-based),
    /// honoring the server's `Retry-After` hint when present.
    fn backoff_ms(&self, attempt: u32, retry_after: Option<u64>) -> u64 {
        let ms = match retry_after {
            Some(secs) => secs.saturating_mul(1_000),
            None => self
                .base_backoff_ms
                .saturating_mul(1u64 << (attempt - 1).min(16)),
        };
        ms.min(self.max_backoff_ms)
    }
}

/// Performs one request against `addr` and reads the reply to EOF.
///
/// # Errors
///
/// Returns a description of a connect/write/read failure or a reply
/// that is not parseable HTTP.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpReply, String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_reply(&raw)
}

/// Splits a raw reply into status, `Retry-After` hint, and body.
fn parse_reply(raw: &[u8]) -> Result<HttpReply, String> {
    let text = String::from_utf8(raw.to_vec()).map_err(|_| "reply is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("reply without head terminator: `{text}`"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    let retry_after = head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse::<u64>().ok())
            .flatten()
    });
    Ok(HttpReply {
        status,
        body: body.to_string(),
        retry_after,
    })
}

/// Like [`http_request`], but retries `503 Service Unavailable` replies
/// per `policy`, honoring the server's `Retry-After` hint (seconds,
/// capped by the policy). Transport errors are **not** retried — a dead
/// server is a different failure than a busy one. After the retry budget
/// is spent, the final `503` reply is returned for the caller to report.
///
/// # Errors
///
/// Returns a description of a connect/write/read failure or an
/// unparseable reply.
pub fn http_request_retrying(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: RetryPolicy,
) -> Result<HttpReply, String> {
    let mut attempt = 0u32;
    loop {
        let reply = http_request(addr, method, path, body)?;
        if reply.status != 503 || attempt >= policy.max_retries {
            return Ok(reply);
        }
        attempt += 1;
        let ms = policy.backoff_ms(attempt, reply.retry_after);
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// A fully read `/grid` response.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResponse {
    /// Grid name echoed by the header line.
    pub grid: String,
    /// Cell count announced by the header line.
    pub announced_cells: u64,
    /// Every successfully served cell, in stream order.
    pub cells: Vec<CellLine>,
    /// Mid-stream cell error lines, verbatim.
    pub cell_errors: Vec<String>,
    /// The terminating summary.
    pub done: DoneLine,
}

/// Submits a grid (JSON text) and parses the NDJSON stream. Overload
/// (`503`) replies are retried under the default [`RetryPolicy`] before
/// giving up.
///
/// # Errors
///
/// Returns a description of a transport failure, a non-200 status (with
/// the server's error body), or a malformed stream.
pub fn submit_grid(addr: SocketAddr, spec_json: &str) -> Result<GridResponse, String> {
    let reply = http_request_retrying(
        addr,
        "POST",
        "/grid",
        Some(spec_json),
        RetryPolicy::default(),
    )?;
    if reply.status != 200 {
        return Err(format!(
            "/grid answered {}: {}",
            reply.status,
            reply.body.trim()
        ));
    }
    let mut lines = reply.body.lines().filter(|l| !l.is_empty());
    let header = lines.next().ok_or("empty /grid stream")?;
    let header_v = serde::json::parse_value(header).map_err(|e| e.to_string())?;
    let grid = header_v
        .field("grid")
        .ok()
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("malformed header line `{header}`"))?
        .to_string();
    let announced_cells = header_v
        .field("cells")
        .ok()
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| format!("malformed header line `{header}`"))?;
    let mut cells = Vec::new();
    let mut cell_errors = Vec::new();
    let mut done = None;
    for line in lines {
        if let Ok(d) = parse_done_line(line) {
            done = Some(d);
        } else if is_error_line(line) {
            cell_errors.push(line.to_string());
        } else {
            cells.push(parse_cell_line(line)?);
        }
    }
    Ok(GridResponse {
        grid,
        announced_cells,
        cells,
        cell_errors,
        done: done.ok_or("stream ended without a done line")?,
    })
}

/// Scrapes `/metrics` into a name → value map (`i128` values: gauges
/// may be negative, histogram `_sum`s may exceed `i64`).
///
/// # Errors
///
/// Returns a description of a transport failure, a non-200 status, or a
/// malformed metrics body.
pub fn fetch_metrics(addr: SocketAddr) -> Result<HashMap<String, i128>, String> {
    let reply = http_request(addr, "GET", "/metrics", None)?;
    if reply.status != 200 {
        return Err(format!("/metrics answered {}", reply.status));
    }
    parse_metrics(&reply.body)
}

/// Requests remote shutdown.
///
/// # Errors
///
/// Returns a description of a transport failure or a non-200 status.
pub fn request_shutdown(addr: SocketAddr) -> Result<(), String> {
    let reply = http_request(addr, "POST", "/shutdown", None)?;
    if reply.status != 200 {
        return Err(format!("/shutdown answered {}", reply.status));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A scripted stub server: answers each accepted connection with the
    /// next raw response, counting requests served. Closes each
    /// connection after answering (the client's framing).
    fn stub(responses: Vec<String>) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = Arc::new(AtomicUsize::new(0));
        let served_in_thread = Arc::clone(&served);
        std::thread::spawn(move || {
            for resp in responses {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                // Drain the request head before answering.
                let mut buf = [0u8; 4096];
                let mut head: Vec<u8> = Vec::new();
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            head.extend_from_slice(&buf[..n]);
                            if head.windows(4).any(|w| w == b"\r\n\r\n") {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                served_in_thread.fetch_add(1, Ordering::SeqCst);
                let _ = stream.write_all(resp.as_bytes());
            }
        });
        (addr, served)
    }

    fn overloaded(retry_after: &str) -> String {
        format!(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 4\r\nRetry-After: {retry_after}\r\n\r\nbusy"
        )
    }

    fn ok() -> String {
        "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok".to_string()
    }

    fn fast_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff_ms: 1,
            max_backoff_ms: 5,
        }
    }

    #[test]
    fn retry_after_header_is_parsed_case_insensitively() {
        let reply = parse_reply(
            b"HTTP/1.1 503 Service Unavailable\r\nretry-after: 7\r\nContent-Length: 1\r\n\r\nx",
        )
        .unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.retry_after, Some(7));
        let reply = parse_reply(b"HTTP/1.1 200 OK\r\n\r\nok").unwrap();
        assert_eq!(reply.retry_after, None);
    }

    #[test]
    fn overload_is_retried_until_success() {
        let (addr, served) = stub(vec![overloaded("0"), overloaded("0"), ok()]);
        let reply =
            http_request_retrying(addr, "GET", "/health", None, fast_policy(3)).expect("reply");
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, "ok");
        assert_eq!(served.load(Ordering::SeqCst), 3, "two retries then success");
    }

    #[test]
    fn retry_budget_is_bounded_and_the_final_503_is_returned() {
        let (addr, served) = stub(vec![overloaded("0"), overloaded("0"), overloaded("0")]);
        let reply =
            http_request_retrying(addr, "GET", "/health", None, fast_policy(2)).expect("reply");
        assert_eq!(reply.status, 503, "gives up with the last overload reply");
        assert_eq!(served.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
    }

    #[test]
    fn zero_retries_means_one_attempt() {
        let (addr, served) = stub(vec![overloaded("0")]);
        let reply =
            http_request_retrying(addr, "GET", "/health", None, fast_policy(0)).expect("reply");
        assert_eq!(reply.status, 503);
        assert_eq!(served.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn backoff_honors_hints_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
        };
        assert_eq!(p.backoff_ms(1, Some(1)), 1_000, "hinted seconds");
        assert_eq!(p.backoff_ms(1, Some(3_600)), 2_000, "hint is capped");
        assert_eq!(p.backoff_ms(1, None), 50, "unhinted: base");
        assert_eq!(p.backoff_ms(2, None), 100, "unhinted: doubles");
        assert_eq!(p.backoff_ms(10, None), 2_000, "unhinted: capped");
    }
}
