//! A small blocking client for the serve wire protocol — what the
//! load-test harness, the CLI and the integration tests talk through.
//!
//! One request per connection, `Connection: close` framing: the client
//! writes the request, shutting down its write half, and reads to EOF.

use crate::metrics::parse_metrics;
use crate::wire::{is_error_line, parse_cell_line, parse_done_line, CellLine, DoneLine};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A raw HTTP exchange: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// Response status code.
    pub status: u16,
    /// Response body (header section stripped).
    pub body: String,
}

/// Performs one request against `addr` and reads the reply to EOF.
///
/// # Errors
///
/// Returns a description of a connect/write/read failure or a reply
/// that is not parseable HTTP.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpReply, String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_reply(&raw)
}

/// Splits a raw reply into status and body.
fn parse_reply(raw: &[u8]) -> Result<HttpReply, String> {
    let text = String::from_utf8(raw.to_vec()).map_err(|_| "reply is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("reply without head terminator: `{text}`"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    Ok(HttpReply {
        status,
        body: body.to_string(),
    })
}

/// A fully read `/grid` response.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResponse {
    /// Grid name echoed by the header line.
    pub grid: String,
    /// Cell count announced by the header line.
    pub announced_cells: u64,
    /// Every successfully served cell, in stream order.
    pub cells: Vec<CellLine>,
    /// Mid-stream cell error lines, verbatim.
    pub cell_errors: Vec<String>,
    /// The terminating summary.
    pub done: DoneLine,
}

/// Submits a grid (JSON text) and parses the NDJSON stream.
///
/// # Errors
///
/// Returns a description of a transport failure, a non-200 status (with
/// the server's error body), or a malformed stream.
pub fn submit_grid(addr: SocketAddr, spec_json: &str) -> Result<GridResponse, String> {
    let reply = http_request(addr, "POST", "/grid", Some(spec_json))?;
    if reply.status != 200 {
        return Err(format!(
            "/grid answered {}: {}",
            reply.status,
            reply.body.trim()
        ));
    }
    let mut lines = reply.body.lines().filter(|l| !l.is_empty());
    let header = lines.next().ok_or("empty /grid stream")?;
    let header_v = serde::json::parse_value(header).map_err(|e| e.to_string())?;
    let grid = header_v
        .field("grid")
        .ok()
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("malformed header line `{header}`"))?
        .to_string();
    let announced_cells = header_v
        .field("cells")
        .ok()
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| format!("malformed header line `{header}`"))?;
    let mut cells = Vec::new();
    let mut cell_errors = Vec::new();
    let mut done = None;
    for line in lines {
        if let Ok(d) = parse_done_line(line) {
            done = Some(d);
        } else if is_error_line(line) {
            cell_errors.push(line.to_string());
        } else {
            cells.push(parse_cell_line(line)?);
        }
    }
    Ok(GridResponse {
        grid,
        announced_cells,
        cells,
        cell_errors,
        done: done.ok_or("stream ended without a done line")?,
    })
}

/// Scrapes `/metrics` into a name → value map.
///
/// # Errors
///
/// Returns a description of a transport failure, a non-200 status, or a
/// malformed metrics body.
pub fn fetch_metrics(addr: SocketAddr) -> Result<HashMap<String, u64>, String> {
    let reply = http_request(addr, "GET", "/metrics", None)?;
    if reply.status != 200 {
        return Err(format!("/metrics answered {}", reply.status));
    }
    parse_metrics(&reply.body)
}

/// Requests remote shutdown.
///
/// # Errors
///
/// Returns a description of a transport failure or a non-200 status.
pub fn request_shutdown(addr: SocketAddr) -> Result<(), String> {
    let reply = http_request(addr, "POST", "/shutdown", None)?;
    if reply.status != 200 {
        return Err(format!("/shutdown answered {}", reply.status));
    }
    Ok(())
}
