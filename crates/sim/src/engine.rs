//! The discrete-event core: tasks, resources, a virtual clock and an
//! event heap.
//!
//! A simulation is a DAG of [`TaskSpec`]s. Each task has a fixed cycle
//! duration, an optional resource it occupies for that duration, and a
//! list of dependencies. The engine advances a virtual clock from
//! completion event to completion event; a task starts as soon as all of
//! its dependencies have completed *and* its resource has a free unit of
//! capacity. Everything is deterministic:
//!
//! * completion events are ordered by `(time, task id)` — equal-time
//!   completions are processed in task-id order;
//! * tasks that become ready are appended to their resource's FIFO wait
//!   queue in task-id order, and admitted strictly FIFO;
//! * the engine is single-threaded — callers may run many simulations in
//!   parallel (the sweep runner does), but one simulation never races.
//!
//! The output is the full execution trace: one [`Span`] per task, plus
//! per-resource busy cycles and a buffer-occupancy curve fed by each
//! task's `buffer_delta`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Index of a resource registered with [`SimBuilder::add_resource`].
pub type ResourceId = usize;
/// Index of a task registered with [`SimBuilder::add_task`].
pub type TaskId = usize;

/// What kind of work a task models — the category shown in the Gantt
/// timeline and the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Original-model forward pass of one layer.
    Forward,
    /// Backward data-gradient pass of one layer.
    BackwardData,
    /// Backward weight-gradient pass of one layer.
    BackwardWeight,
    /// Predictor forward (gradient prediction), latency α.
    PredictorFill,
    /// Predictor training step, latency 2α.
    PredictorUpdate,
    /// Off-chip weight streaming for one layer.
    WeightLoad,
    /// Excess DRAM traffic a too-small on-chip buffer forces for one
    /// layer (operand re-reads beyond the ideal single pass).
    Spill,
    /// ADA-GP-LOW's per-layer predictor weight reload on the shared array.
    PredictorReload,
    /// Zero-or-more-cycle synchronization node (no resource).
    Join,
}

impl TaskKind {
    /// Short label used in trace categories and reports.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Forward => "fwd",
            TaskKind::BackwardData => "bwd-data",
            TaskKind::BackwardWeight => "bwd-weight",
            TaskKind::PredictorFill => "pred-fill",
            TaskKind::PredictorUpdate => "pred-update",
            TaskKind::WeightLoad => "weight-load",
            TaskKind::Spill => "spill",
            TaskKind::PredictorReload => "pred-reload",
            TaskKind::Join => "join",
        }
    }
}

/// A resource with a name and a capacity (how many tasks may occupy it
/// simultaneously — the PE array has capacity 1, a multi-ported buffer
/// or a DRAM channel could have more).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSpec {
    /// Display name (becomes a timeline lane).
    pub name: String,
    /// Simultaneous occupants.
    pub capacity: u32,
}

/// One node of the simulation DAG.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Display label, e.g. `fwd conv3`.
    pub label: String,
    /// Work category.
    pub kind: TaskKind,
    /// Layer index this task belongs to (`None` for synthetic nodes).
    pub layer: Option<usize>,
    /// Resource occupied while running; `None` runs without occupying
    /// anything (synchronization nodes).
    pub resource: Option<ResourceId>,
    /// Cycles the task takes.
    pub duration: u64,
    /// Tasks that must complete before this one may start.
    pub deps: Vec<TaskId>,
    /// Signed change to the tracked buffer occupancy (words), applied at
    /// the task's completion time.
    pub buffer_delta: i64,
}

impl TaskSpec {
    /// A resourceless zero-duration synchronization node.
    pub fn join(label: impl Into<String>, deps: Vec<TaskId>) -> Self {
        TaskSpec {
            label: label.into(),
            kind: TaskKind::Join,
            layer: None,
            resource: None,
            duration: 0,
            deps,
            buffer_delta: 0,
        }
    }
}

/// Accumulates resources and tasks, then runs the simulation.
#[derive(Debug, Default)]
pub struct SimBuilder {
    resources: Vec<ResourceSpec>,
    tasks: Vec<TaskSpec>,
}

/// One executed task: where and when it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The task that ran.
    pub task: TaskId,
    /// Start cycle.
    pub start: u64,
    /// End cycle (`start + duration`).
    pub end: u64,
}

/// The completed simulation: makespan, the full span trace, per-resource
/// busy cycles and the buffer-occupancy curve.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Cycle at which the last task completed.
    pub makespan: u64,
    /// One span per task, sorted by `(start, task)`.
    pub spans: Vec<Span>,
    /// The task specs, for labeling spans.
    pub tasks: Vec<TaskSpec>,
    /// The resource specs, for labeling lanes.
    pub resources: Vec<ResourceSpec>,
    /// Busy cycles per resource (sum of resident span durations).
    pub busy: Vec<u64>,
    /// Buffer occupancy after each change, as `(cycle, words)` steps.
    pub buffer_curve: Vec<(u64, i64)>,
    /// Peak buffer occupancy in words.
    pub buffer_peak: i64,
    /// Cycle each task became ready (its last dependency completed; 0
    /// for dependency-free tasks), indexed by task id. A task's start
    /// minus its ready cycle is its admission-queueing slack.
    pub ready_of: Vec<u64>,
    /// For each task that waited in a resource FIFO: the task whose
    /// completion freed the capacity it was admitted on (that task's
    /// end cycle equals this task's start cycle, exactly). `None` for
    /// tasks admitted at their ready cycle and for resourceless tasks.
    pub unblocked_by: Vec<Option<TaskId>>,
}

impl SimResult {
    /// Fraction of `makespan × capacity` the resource spent busy.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.busy[r] as f64 / (self.makespan as f64 * self.resources[r].capacity as f64)
    }

    /// The span of a task (panics if the task id is out of range).
    pub fn span_of(&self, task: TaskId) -> Span {
        *self
            .spans
            .iter()
            .find(|s| s.task == task)
            .expect("every task has a span")
    }

    /// Cycles the task sat ready in its resource's FIFO before starting.
    pub fn queue_wait_of(&self, task: TaskId) -> u64 {
        self.span_of(task).start - self.ready_of[task]
    }
}

impl SimBuilder {
    /// A fresh, empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: u32) -> ResourceId {
        assert!(capacity > 0, "resource capacity must be positive");
        self.resources.push(ResourceSpec {
            name: name.into(),
            capacity,
        });
        self.resources.len() - 1
    }

    /// Registers a task and returns its id. Dependencies must refer to
    /// already-registered tasks, which makes cycles unrepresentable.
    ///
    /// # Panics
    ///
    /// Panics on a forward dependency or an unknown resource id.
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskId {
        let id = self.tasks.len();
        for &d in &spec.deps {
            assert!(d < id, "task {id} depends on not-yet-registered task {d}");
        }
        if let Some(r) = spec.resource {
            assert!(r < self.resources.len(), "task {id} uses unknown resource");
        }
        self.tasks.push(spec);
        id
    }

    /// Runs the simulation to completion and returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if any task never becomes runnable (impossible for graphs
    /// built through [`SimBuilder::add_task`], which forbids cycles).
    pub fn simulate(self) -> SimResult {
        let n = self.tasks.len();
        let mut indegree: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(id);
            }
        }

        // Mutable engine state shared by `enqueue`/`drain` — bundled so the
        // admission helpers stay readable now that they also record slack.
        struct RunState {
            available: Vec<u32>,
            queues: Vec<VecDeque<TaskId>>,
            /// Min-heap of completion events ordered by (time, task id).
            heap: BinaryHeap<Reverse<(u64, TaskId)>>,
            start_of: Vec<Option<u64>>,
            ready_of: Vec<u64>,
            unblocked_by: Vec<Option<TaskId>>,
            busy: Vec<u64>,
        }

        let mut st = RunState {
            available: self.resources.iter().map(|r| r.capacity).collect(),
            queues: vec![VecDeque::new(); self.resources.len()],
            heap: BinaryHeap::new(),
            start_of: vec![None; n],
            ready_of: vec![0; n],
            unblocked_by: vec![None; n],
            busy: vec![0; self.resources.len()],
        };
        let mut spans: Vec<Span> = Vec::with_capacity(n);
        let mut occupancy: i64 = 0;
        let mut peak: i64 = 0;
        let mut curve: Vec<(u64, i64)> = Vec::new();
        let mut clock: u64 = 0;
        let mut completed = 0usize;

        // Admits ready tasks: resourceless ones start immediately, the rest
        // join their resource's FIFO queue. `cause` is the task whose
        // completion is being processed (`None` during the t=0 seeding).
        fn enqueue(
            st: &mut RunState,
            tasks: &[TaskSpec],
            id: TaskId,
            clock: u64,
            cause: Option<TaskId>,
        ) {
            st.ready_of[id] = clock;
            match tasks[id].resource {
                None => {
                    st.start_of[id] = Some(clock);
                    st.heap.push(Reverse((clock + tasks[id].duration, id)));
                }
                Some(r) => {
                    st.queues[r].push_back(id);
                    drain(st, tasks, r, clock, cause);
                }
            }
        }

        /// Starts queued tasks on `r` while capacity remains. Any task
        /// admitted later than its ready cycle records `cause` — the
        /// completion freed the capacity, so `cause`'s end cycle equals
        /// the admitted task's start cycle exactly.
        fn drain(
            st: &mut RunState,
            tasks: &[TaskSpec],
            r: ResourceId,
            clock: u64,
            cause: Option<TaskId>,
        ) {
            while st.available[r] > 0 {
                let Some(id) = st.queues[r].pop_front() else {
                    break;
                };
                st.available[r] -= 1;
                st.start_of[id] = Some(clock);
                if clock > st.ready_of[id] {
                    st.unblocked_by[id] = cause;
                }
                st.busy[r] += tasks[id].duration;
                st.heap.push(Reverse((clock + tasks[id].duration, id)));
            }
        }

        for id in 0..n {
            if indegree[id] == 0 {
                enqueue(&mut st, &self.tasks, id, clock, None);
            }
        }

        while let Some(Reverse((end, id))) = st.heap.pop() {
            clock = end;
            completed += 1;
            spans.push(Span {
                task: id,
                start: st.start_of[id].expect("started task has a start"),
                end,
            });
            let freed = self.tasks[id].resource;
            if let Some(r) = freed {
                st.available[r] += 1;
            }
            if self.tasks[id].buffer_delta != 0 {
                occupancy += self.tasks[id].buffer_delta;
                peak = peak.max(occupancy);
                curve.push((clock, occupancy));
            }
            for &dep in &dependents[id] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    enqueue(&mut st, &self.tasks, dep, clock, Some(id));
                }
            }
            if let Some(r) = freed {
                drain(&mut st, &self.tasks, r, clock, Some(id));
            }
        }

        assert_eq!(
            completed,
            n,
            "simulation stalled: {} of {n} tasks never ran",
            n - completed
        );
        spans.sort_by_key(|s| (s.start, s.task));
        SimResult {
            makespan: clock,
            spans,
            tasks: self.tasks,
            resources: self.resources,
            busy: st.busy,
            buffer_curve: curve,
            buffer_peak: peak,
            ready_of: st.ready_of,
            unblocked_by: st.unblocked_by,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(resource: Option<ResourceId>, duration: u64, deps: Vec<TaskId>) -> TaskSpec {
        TaskSpec {
            label: "t".into(),
            kind: TaskKind::Forward,
            layer: None,
            resource,
            duration,
            deps,
            buffer_delta: 0,
        }
    }

    #[test]
    fn serial_chain_sums_durations() {
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        let t0 = b.add_task(task(Some(pe), 10, vec![]));
        let t1 = b.add_task(task(Some(pe), 20, vec![t0]));
        let t2 = b.add_task(task(Some(pe), 5, vec![t1]));
        let r = b.simulate();
        assert_eq!(r.makespan, 35);
        assert_eq!(r.span_of(t2).start, 30);
        assert_eq!(r.utilization(pe), 1.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        let pred = b.add_resource("pred", 1);
        let a = b.add_task(task(Some(pe), 100, vec![]));
        let p = b.add_task(task(Some(pred), 30, vec![]));
        let r = b.simulate();
        assert_eq!(r.makespan, 100);
        assert_eq!(r.span_of(p).start, 0);
        assert_eq!(r.span_of(a).end, 100);
        assert!((r.utilization(pred) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn capacity_one_serializes_ready_tasks_in_id_order() {
        // Both ready at t=0 on one resource: lower id runs first, always.
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        let a = b.add_task(task(Some(pe), 7, vec![]));
        let c = b.add_task(task(Some(pe), 3, vec![]));
        let r = b.simulate();
        assert_eq!(
            r.span_of(a),
            Span {
                task: a,
                start: 0,
                end: 7
            }
        );
        assert_eq!(
            r.span_of(c),
            Span {
                task: c,
                start: 7,
                end: 10
            }
        );
    }

    #[test]
    fn equal_time_completions_resolve_in_task_id_order() {
        // Two tasks complete at t=10; both unblock one successor each on
        // the same capacity-1 resource. The successor of the lower-id
        // predecessor is enqueued first.
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        let aux = b.add_resource("aux", 2);
        let a = b.add_task(task(Some(aux), 10, vec![]));
        let c = b.add_task(task(Some(aux), 10, vec![]));
        let sa = b.add_task(task(Some(pe), 4, vec![a]));
        let sc = b.add_task(task(Some(pe), 4, vec![c]));
        let r = b.simulate();
        assert_eq!(r.span_of(sa).start, 10);
        assert_eq!(r.span_of(sc).start, 14);
    }

    #[test]
    fn capacity_two_admits_two() {
        let mut b = SimBuilder::new();
        let ports = b.add_resource("ports", 2);
        let ids: Vec<_> = (0..4)
            .map(|_| b.add_task(task(Some(ports), 10, vec![])))
            .collect();
        let r = b.simulate();
        assert_eq!(r.makespan, 20);
        assert_eq!(r.span_of(ids[0]).start, 0);
        assert_eq!(r.span_of(ids[1]).start, 0);
        assert_eq!(r.span_of(ids[2]).start, 10);
        assert_eq!(r.utilization(ports), 1.0);
    }

    #[test]
    fn join_nodes_cost_nothing_and_gate() {
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        let pred = b.add_resource("pred", 1);
        let a = b.add_task(task(Some(pe), 10, vec![]));
        let p = b.add_task(task(Some(pred), 25, vec![]));
        let j = b.add_task(TaskSpec::join("barrier", vec![a, p]));
        let after = b.add_task(task(Some(pe), 5, vec![j]));
        let r = b.simulate();
        assert_eq!(r.span_of(j).start, 25);
        assert_eq!(r.span_of(j).end, 25);
        assert_eq!(r.span_of(after).start, 25);
        assert_eq!(r.makespan, 30);
    }

    #[test]
    fn buffer_curve_tracks_deltas_and_peak() {
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        let mut alloc = task(Some(pe), 10, vec![]);
        alloc.buffer_delta = 100;
        let a = b.add_task(alloc);
        let mut alloc2 = task(Some(pe), 10, vec![a]);
        alloc2.buffer_delta = 50;
        let a2 = b.add_task(alloc2);
        let mut free = task(Some(pe), 10, vec![a2]);
        free.buffer_delta = -150;
        b.add_task(free);
        let r = b.simulate();
        assert_eq!(r.buffer_peak, 150);
        assert_eq!(r.buffer_curve, vec![(10, 100), (20, 150), (30, 0)]);
    }

    #[test]
    fn ready_and_unblocked_by_attribute_fifo_waits() {
        // a occupies pe [0,7); c is ready at 0 but waits for a's slot.
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        let a = b.add_task(task(Some(pe), 7, vec![]));
        let c = b.add_task(task(Some(pe), 3, vec![]));
        let r = b.simulate();
        assert_eq!(r.ready_of[a], 0);
        assert_eq!(r.ready_of[c], 0);
        assert_eq!(r.unblocked_by[a], None);
        assert_eq!(r.unblocked_by[c], Some(a));
        assert_eq!(r.span_of(a).end, r.span_of(c).start);
        assert_eq!(r.queue_wait_of(c), 7);
    }

    #[test]
    fn unobstructed_tasks_start_at_their_ready_cycle() {
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        let pred = b.add_resource("pred", 1);
        let a = b.add_task(task(Some(pe), 10, vec![]));
        let p = b.add_task(task(Some(pred), 5, vec![a]));
        let j = b.add_task(TaskSpec::join("sync", vec![p]));
        let r = b.simulate();
        // p became ready when its dependency a finished, and started then.
        assert_eq!(r.ready_of[p], 10);
        assert_eq!(r.span_of(p).start, 10);
        assert_eq!(r.unblocked_by[p], None);
        assert_eq!(r.queue_wait_of(p), 0);
        // The resourceless join never queues, so it never blames anyone.
        assert_eq!(r.ready_of[j], 15);
        assert_eq!(r.unblocked_by[j], None);
    }

    #[test]
    fn unblocked_by_names_the_freeing_task_not_the_readying_dep() {
        // w becomes ready when d completes at t=5, but pe is held by the
        // long task a until t=20: the admission blames a, not d.
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        let aux = b.add_resource("aux", 1);
        let a = b.add_task(task(Some(pe), 20, vec![]));
        let d = b.add_task(task(Some(aux), 5, vec![]));
        let w = b.add_task(task(Some(pe), 3, vec![d]));
        let r = b.simulate();
        assert_eq!(r.ready_of[w], 5);
        assert_eq!(r.span_of(w).start, 20);
        assert_eq!(r.unblocked_by[w], Some(a));
        assert_eq!(r.span_of(a).end, r.span_of(w).start);
    }

    #[test]
    #[should_panic(expected = "not-yet-registered")]
    fn forward_deps_are_rejected() {
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe", 1);
        b.add_task(task(Some(pe), 1, vec![3]));
    }
}
