//! The §3.7 step timeline (Figures 7–9), re-based on the simulator.
//!
//! This used to live in `adagp_accel::timeline` as a closed form; it now
//! *runs* the schedules: each layer costs one step forward and two steps
//! backward, the predictor costs α of a step, and the three numbers are
//! the simulated makespans of the baseline, Phase-BP and Phase-GP batch
//! graphs on the shared-array (Efficient) design. There is exactly one
//! place that computes overlap windows — the event engine — and the
//! paper's `12 / 12 + 12α / 4 + 4α` step counts fall out of it.
//!
//! Steps are simulated in a `2^20`-cycles-per-step fixed point, so every
//! α representable in 20 fractional bits (0.25, 0.5, …) is exact.

use crate::workload::{simulate_batch, Phase, SimConfig, SimLayer};
use adagp_accel::layer_cost::LayerCost;
use adagp_accel::AdaGpDesign;

/// Cycles per step in the fixed-point encoding.
const STEP: u64 = 1 << 20;

/// Timeline of a single batch in steps (one step = one layer's FW time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTimeline {
    /// Baseline steps (FW + BW for every layer).
    pub baseline: f64,
    /// Phase BP steps including predictor work (α per layer FW, 2α BW).
    pub phase_bp: f64,
    /// Phase GP steps (FW plus α per layer; no BW).
    pub phase_gp: f64,
}

/// Simulates the §3.7 step timeline for an `n_layers` model with relative
/// predictor latency `alpha` (fraction of one FW step).
///
/// # Panics
///
/// Panics if `n_layers == 0` or `alpha < 0`.
pub fn step_timeline(n_layers: usize, alpha: f64) -> StepTimeline {
    assert!(n_layers > 0, "need at least one layer");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let alpha_cycles = (alpha * STEP as f64).round() as u64;
    let layers: Vec<SimLayer> = (0..n_layers)
        .map(|i| {
            SimLayer::from_cost(
                format!("layer{i}"),
                LayerCost {
                    fw: STEP,
                    bw: 2 * STEP,
                    alpha: alpha_cycles,
                },
            )
        })
        .collect();
    let cfg = SimConfig::no_contention();
    let steps = |phase, design| {
        simulate_batch(phase, design, &layers, &cfg).makespan() as f64 / STEP as f64
    };
    StepTimeline {
        baseline: steps(Phase::Baseline, None),
        phase_bp: steps(Phase::Bp, Some(AdaGpDesign::Efficient)),
        phase_gp: steps(Phase::Gp, Some(AdaGpDesign::Efficient)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_layer_baseline_is_12_steps() {
        // Figure 7: "the baseline system requires 12 time steps ... for a
        // 4-layer model".
        let t = step_timeline(4, 0.1);
        assert_eq!(t.baseline, 12.0);
    }

    #[test]
    fn phase_bp_adds_12_alpha() {
        // Figure 8: "ADA-GP increases the model's training time by 12α".
        let alpha = 0.25;
        let t = step_timeline(4, alpha);
        assert!((t.phase_bp - (12.0 + 12.0 * alpha)).abs() < 1e-12);
    }

    #[test]
    fn phase_gp_is_4_plus_4_alpha() {
        // Figure 9: "ADA-GP can minimize the processing time to merely
        // 4 + 4α steps".
        let alpha = 0.25;
        let t = step_timeline(4, alpha);
        assert!((t.phase_gp - (4.0 + 4.0 * alpha)).abs() < 1e-12);
    }

    #[test]
    fn two_epoch_claim_16_plus_16_alpha() {
        // §3.7: two epochs drop from 24 steps to 16 + 16α (one BP batch +
        // one GP batch).
        let alpha = 0.0;
        let t = step_timeline(4, alpha);
        assert_eq!(t.phase_bp + t.phase_gp, 16.0);
        assert_eq!(2.0 * t.baseline, 24.0);
    }

    #[test]
    fn unrepresentable_alpha_stays_close() {
        // 0.1 has no exact 20-bit fixed-point form; the simulated
        // timeline must still land within a part in a million.
        let t = step_timeline(8, 0.1);
        assert!((t.phase_gp - 8.8).abs() < 1e-5, "{}", t.phase_gp);
    }
}
