//! Chrome-trace JSON export: load a simulated batch into
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The emitted file uses the Trace Event Format's JSON-object form:
//! complete (`"ph": "X"`) events carry each task span, thread-name
//! metadata labels one lane per resource, and counter (`"ph": "C"`)
//! events plot the buffer-occupancy curve. Timestamps are microseconds in
//! the format; the exporter writes **1 cycle = 1 µs**, so the viewer's
//! time axis reads directly in cycles.
//!
//! Event assembly goes through [`adagp_obs::trace::TraceEvents`], the
//! same builder the measured (pid 2) exporter uses — the two trace
//! families share one field layout by construction.

use crate::engine::SimResult;
use adagp_obs::trace::TraceEvents;
use serde::Value;
use std::path::Path;

/// Process id used for compute lanes in the exported trace.
const PID: u64 = 1;

/// Renders a simulation as a Chrome-trace JSON string.
pub fn chrome_trace(result: &SimResult, title: &str) -> String {
    let mut t = TraceEvents::new();
    t.process_name(PID, title);
    for (tid, r) in result.resources.iter().enumerate() {
        t.thread_name(PID, tid as u64, &r.name);
    }
    for span in &result.spans {
        let task = &result.tasks[span.task];
        let Some(tid) = task.resource else {
            continue; // synchronization nodes are not drawn
        };
        let mut args = vec![("task", Value::UInt(span.task as u64))];
        if let Some(layer) = task.layer {
            args.push(("layer", Value::UInt(layer as u64)));
        }
        t.complete(
            PID,
            tid as u64,
            &task.label,
            task.kind.name(),
            Value::UInt(span.start),
            Value::UInt(span.end - span.start),
            Some(Value::object(args)),
        );
    }
    for &(cycle, words) in &result.buffer_curve {
        t.counter(
            PID,
            "buffer occupancy",
            Value::UInt(cycle),
            Value::object(vec![("words", Value::Int(words))]),
        );
    }
    t.finish("ns", vec![])
}

/// Writes the Chrome trace of `result` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_chrome_trace(path: &Path, result: &SimResult, title: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(result, title))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimBuilder, TaskKind, TaskSpec};

    fn tiny_result() -> SimResult {
        let mut b = SimBuilder::new();
        let pe = b.add_resource("pe-array", 1);
        let t0 = TaskSpec {
            label: "fwd l0".into(),
            kind: TaskKind::Forward,
            layer: Some(0),
            resource: Some(pe),
            duration: 10,
            deps: vec![],
            buffer_delta: 64,
        };
        let a = b.add_task(t0);
        b.add_task(TaskSpec::join("end", vec![a]));
        b.simulate()
    }

    #[test]
    fn trace_is_valid_json_with_expected_events() {
        let text = chrome_trace(&tiny_result(), "unit test");
        let v = serde::json::parse_value(&text).expect("valid JSON");
        let Value::Object(fields) = v else {
            panic!("trace root must be an object")
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents present");
        let Value::Array(events) = events else {
            panic!("traceEvents must be an array")
        };
        // process_name + thread_name + 1 span (join skipped) + 1 counter.
        assert_eq!(events.len(), 4);
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"ph\": \"C\""));
        assert!(text.contains("fwd l0"));
        assert!(!text.contains("\"join"), "joins are not drawn");
    }

    #[test]
    fn cycle_timestamps_survive_the_round_trip() {
        let text = chrome_trace(&tiny_result(), "t");
        assert!(text.contains("\"ts\": 0"));
        assert!(text.contains("\"dur\": 10"));
    }
}
