//! # adagp-sim
//!
//! A discrete-event, layer-granular simulator of the ADA-GP training
//! accelerator. Where `adagp-accel` sums closed-form per-layer costs,
//! this crate *executes* one training step as a DAG of per-layer tasks
//! (forward, backward-data, backward-weight, predictor-fill,
//! predictor-update, weight streaming) over capacity-limited resources —
//! the PE array, ADA-GP-MAX's predictor array, and the off-chip DRAM
//! channel — on a virtual cycle clock, and reports *where* the overlap
//! lands: per-task spans (a Gantt timeline), per-resource utilization,
//! buffer occupancy, and Chrome-trace JSON for `chrome://tracing` /
//! Perfetto.
//!
//! The two models are pinned together: with contention disabled
//! ([`SimConfig::no_contention`]) the simulated makespans equal the
//! analytic per-batch cycle counts of [`adagp_accel::designs`] exactly,
//! and the derived training speed-ups are bit-identical to
//! [`adagp_accel::speedup::training_speedup`] (golden-tested over the
//! full fig17 grid in `adagp-bench`). With contention enabled, weight
//! streaming serializes on the DRAM channel and the difference between
//! simulated and analytic cycles *is* the bandwidth stall — a number the
//! closed forms cannot produce. A finite [`SimConfig::buffer_words`]
//! adds the second axis: layers whose working set exceeds the on-chip
//! buffer re-stream operands ([`adagp_accel::buffer`]'s tiling model
//! decides how many words) as [`TaskKind::Spill`] tasks on the same DRAM
//! channel, and [`SimConfig`] port counts turn any resource multi-ported
//! (the engine admits up to `capacity` tasks at once).
//!
//! * [`engine`] — the deterministic event core: tasks, resources, event
//!   heap, spans, busy/occupancy accounting.
//! * [`workload`] — batch task graphs per phase × design, mirroring the
//!   paper's §3.7 overlap semantics layer by layer.
//! * [`step`] — training-run aggregation (epoch-mix weighting) to cycles,
//!   speed-up, utilization and overlap-efficiency metrics.
//! * [`steps`] — the §3.7 step timeline (Figures 7–9), now *simulated*
//!   instead of closed-form.
//! * [`trace`] — Chrome-trace JSON export.
//! * [`report`] — plain-text timeline and utilization reports, and the
//!   bridge into `adagp-obs`'s critical-path analyzer
//!   ([`report::critical_path`]): the engine records each task's ready
//!   cycle and admission cause, so the zero-slack chain walk reproduces
//!   the makespan bit-exactly and attributes it per resource and kind.
//!
//! ## Example
//!
//! ```
//! use adagp_accel::{AcceleratorConfig, AdaGpDesign, Dataflow};
//! use adagp_accel::speedup::EpochMix;
//! use adagp_nn::models::{shapes, CnnModel};
//! use adagp_sim::{model_sim_layers, SimConfig, StepSim};
//!
//! let shapes = shapes::model_shapes(CnnModel::Vgg13, shapes::InputScale::Cifar);
//! let cfg = SimConfig::no_contention();
//! let layers = model_sim_layers(
//!     &AcceleratorConfig::default(),
//!     Dataflow::WeightStationary,
//!     &Default::default(),
//!     &shapes,
//!     &cfg,
//! );
//! let sim = StepSim::run(AdaGpDesign::Max, &layers, &EpochMix::paper(), &cfg);
//! assert!(sim.training_speedup() > 1.0);
//! assert!(sim.overlap_efficiency() > 0.9); // MAX hides the predictor
//! ```

pub mod engine;
pub mod report;
pub mod step;
pub mod steps;
pub mod trace;
pub mod workload;

pub use engine::{
    ResourceId, ResourceSpec, SimBuilder, SimResult, Span, TaskId, TaskKind, TaskSpec,
};
pub use report::{crit_tasks, critical_path};
pub use step::StepSim;
pub use steps::{step_timeline, StepTimeline};
pub use trace::{chrome_trace, write_chrome_trace};
pub use workload::{
    layer_spill_words, model_sim_layers, simulate_batch, BatchSim, Phase, SimConfig, SimLayer,
};
