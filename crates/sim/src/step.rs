//! Training-run aggregation: from simulated batch makespans to the
//! paper's end-to-end cycle totals and speed-ups.
//!
//! The epoch weighting deliberately mirrors
//! [`adagp_accel::speedup::adagp_training_cycles`] *expression for
//! expression* — same stage order, same `f64` operations — so that when
//! the simulated per-batch makespans equal the analytic per-batch cycle
//! counts (the no-contention configuration), the resulting training
//! totals and speed-up ratios are bit-identical to the closed forms, not
//! merely close. The fig17-grid golden test relies on this.

use crate::workload::{simulate_batch, BatchSim, Phase, SimConfig, SimLayer};
use adagp_accel::speedup::EpochMix;
use adagp_accel::AdaGpDesign;

/// The three simulated batches of one (design, schedule) training run
/// plus the derived training-level statistics.
#[derive(Debug, Clone)]
pub struct StepSim {
    /// Baseline batch (no predictor).
    pub baseline: BatchSim,
    /// Warm-up / Phase BP batch.
    pub bp: BatchSim,
    /// Phase GP batch.
    pub gp: BatchSim,
    /// The epoch mix the totals are weighted by.
    pub mix: EpochMix,
}

impl StepSim {
    /// Simulates the three batch schedules of `design` over `layers`.
    pub fn run(design: AdaGpDesign, layers: &[SimLayer], mix: &EpochMix, cfg: &SimConfig) -> Self {
        StepSim {
            baseline: simulate_batch(Phase::Baseline, None, layers, cfg),
            bp: simulate_batch(Phase::Bp, Some(design), layers, cfg),
            gp: simulate_batch(Phase::Gp, Some(design), layers, cfg),
            mix: *mix,
        }
    }

    /// Simulated baseline training cycles — the analytic
    /// [`adagp_accel::speedup::baseline_training_cycles`] shape:
    /// `total epochs × baseline batch`.
    pub fn baseline_training_cycles(&self) -> f64 {
        self.mix.total() as f64 * self.baseline.makespan() as f64
    }

    /// The analytic [`adagp_accel::speedup::adagp_training_cycles`]
    /// shape, applied to any per-batch statistic: per stage, `epochs ×
    /// (g × GP value + (1 − g) × BP value)`, summed. Every epoch-weighted
    /// number this type reports goes through this one expression so the
    /// bit-exactness contract cannot drift between metrics.
    fn epoch_total(&self, bp: f64, gp: f64) -> f64 {
        self.mix
            .stages()
            .iter()
            .map(|&(g, epochs)| epochs as f64 * (g * gp + (1.0 - g) * bp))
            .sum()
    }

    /// Simulated ADA-GP training cycles — the analytic
    /// [`adagp_accel::speedup::adagp_training_cycles`] shape: per stage,
    /// `epochs × (g × GP batch + (1 − g) × BP batch)`.
    pub fn adagp_training_cycles(&self) -> f64 {
        self.epoch_total(self.bp.makespan() as f64, self.gp.makespan() as f64)
    }

    /// Simulated end-to-end training speed-up.
    pub fn training_speedup(&self) -> f64 {
        self.baseline_training_cycles() / self.adagp_training_cycles()
    }

    /// Epoch-weighted mean of a per-batch statistic over the ADA-GP run
    /// (warm-up and BP stages weigh the BP batch, GP shares the GP batch).
    fn epoch_weighted(&self, bp: f64, gp: f64) -> f64 {
        self.epoch_total(bp, gp) / self.mix.total() as f64
    }

    /// Epoch-weighted main-array utilization of the ADA-GP run.
    pub fn pe_utilization(&self) -> f64 {
        self.epoch_weighted(self.bp.pe_utilization(), self.gp.pe_utilization())
    }

    /// Epoch-weighted predictor-overlap efficiency of the ADA-GP run.
    pub fn overlap_efficiency(&self) -> f64 {
        self.epoch_weighted(self.bp.overlap_efficiency(), self.gp.overlap_efficiency())
    }

    /// Simulated ADA-GP spill cycles over the training run — the same
    /// epoch weighting as [`StepSim::adagp_training_cycles`], applied to
    /// each batch's [`crate::workload::BatchSim::spill_cycles`]. Exactly
    /// zero with an unbounded buffer or with the DRAM channel disabled.
    pub fn adagp_spill_cycles(&self) -> f64 {
        self.epoch_total(self.bp.spill_cycles as f64, self.gp.spill_cycles as f64)
    }

    /// Largest buffer occupancy any of the three batches reached (words).
    pub fn peak_buffer_words(&self) -> i64 {
        self.baseline
            .result
            .buffer_peak
            .max(self.bp.result.buffer_peak)
            .max(self.gp.result.buffer_peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_accel::layer_cost::LayerCost;
    use adagp_accel::speedup::{adagp_training_cycles, baseline_training_cycles, training_speedup};
    use adagp_accel::{AcceleratorConfig, Dataflow};
    use adagp_nn::models::shapes::{model_shapes, InputScale};
    use adagp_nn::models::CnnModel;

    #[test]
    fn no_contention_training_speedup_is_bit_exact_vs_analytic() {
        let cfg = AcceleratorConfig::default();
        let shapes = model_shapes(CnnModel::Vgg13, InputScale::Cifar);
        let mix = EpochMix::paper();
        let sim_cfg = SimConfig::no_contention();
        let layers = crate::workload::model_sim_layers(
            &cfg,
            Dataflow::WeightStationary,
            &Default::default(),
            &shapes,
            &sim_cfg,
        );
        for design in AdaGpDesign::all() {
            let sim = StepSim::run(design, &layers, &mix, &sim_cfg);
            let direct = training_speedup(&cfg, Dataflow::WeightStationary, design, &shapes, &mix);
            assert_eq!(
                sim.training_speedup().to_bits(),
                direct.to_bits(),
                "{}",
                design.name()
            );
            assert_eq!(
                sim.baseline_training_cycles().to_bits(),
                baseline_training_cycles(&cfg, Dataflow::WeightStationary, &shapes, &mix).to_bits()
            );
            assert_eq!(
                sim.adagp_training_cycles().to_bits(),
                adagp_training_cycles(&cfg, Dataflow::WeightStationary, design, &shapes, &mix)
                    .to_bits()
            );
        }
    }

    #[test]
    fn weighted_stats_sit_between_their_phase_values() {
        let layers: Vec<SimLayer> = (0..4u64)
            .map(|i| {
                SimLayer::from_cost(
                    format!("l{i}"),
                    LayerCost {
                        fw: 1000 + i * 100,
                        bw: 2000,
                        alpha: 90,
                    },
                )
            })
            .collect();
        let sim = StepSim::run(
            AdaGpDesign::Max,
            &layers,
            &EpochMix::paper(),
            &SimConfig::no_contention(),
        );
        let (lo, hi) = (
            sim.bp.pe_utilization().min(sim.gp.pe_utilization()),
            sim.bp.pe_utilization().max(sim.gp.pe_utilization()),
        );
        let u = sim.pe_utilization();
        assert!(u >= lo && u <= hi, "{lo} <= {u} <= {hi}");
        assert!(sim.training_speedup() > 1.0);
    }
}
