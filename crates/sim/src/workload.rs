//! Training-step task graphs: one batch of the baseline, Phase-BP and
//! Phase-GP schedules for each ADA-GP hardware design.
//!
//! The graphs encode the *paper's* overlap semantics (§3.7, Figures 7–9),
//! layer by layer, so that with contention disabled the simulated
//! makespan equals the analytic per-batch cycle counts of
//! [`adagp_accel::designs`] exactly — not approximately. That equality is
//! what lets the sweep's golden tests pin the simulator to the closed
//! forms bit-for-bit (see `crates/bench/tests/sim_golden.rs`). Per design
//! the schedule shape is:
//!
//! * **Baseline** — forward sweep, then backward sweep (data + weight
//!   gradients), everything serial on the PE array: `Σ (FW + BW)`.
//! * **Efficient** — the predictor shares the PE array: its fill (α)
//!   follows each layer's FW and its update (2α) follows each layer's BW.
//! * **LOW** — like Efficient plus a [`AdaGpDesign::reload_cycles`] weight
//!   reload on the array before every predictor use.
//! * **MAX** — a dedicated predictor array. In Phase GP the predictor fill
//!   for layer *i* runs concurrently with layer *i*'s FW (its input — the
//!   previous layer's output activation — is already on chip), with a
//!   per-layer synchronization barrier: `Σ max(FW, α)` plus the trailing
//!   output-layer fill. In Phase BP each layer forms a window in which the
//!   model's FW+BW runs against the predictor's fill+update:
//!   `Σ max(FW + BW, 3α)`.
//!
//! Contention is opt-in through [`SimConfig::dram_words_per_cycle`]: each
//! layer's weights then stream over a DRAM channel before its
//! FW may start (double-buffered prefetch — loads run ahead of compute
//! but serialize against each other), which exposes bandwidth stalls the
//! closed forms cannot see. A finite [`SimConfig::buffer_words`] adds the
//! second contention axis: layers whose working set exceeds the buffer
//! re-stream operands ([`adagp_accel::buffer::tiled_fw_traffic`] decides
//! how many extra words), modeled as a [`TaskKind::Spill`] task on the
//! same DRAM channel that must drain before the layer's FW starts. With
//! the channel disabled (`dram_words_per_cycle: None`) neither weight
//! loads nor spills exist, whatever the buffer knobs say — so
//! `--no-contention` always reproduces the closed forms bit-for-bit.

use crate::engine::{ResourceId, SimBuilder, SimResult, TaskKind, TaskSpec};
use adagp_accel::buffer::{tiled_fw_traffic, BufferConfig};
use adagp_accel::dataflow::{AcceleratorConfig, Dataflow};
use adagp_accel::layer_cost::{model_costs, LayerCost, PredictorCostModel};
use adagp_accel::speedup::MODEL_BATCH;
use adagp_accel::AdaGpDesign;
use adagp_nn::models::shapes::LayerShape;

/// Simulator configuration: batch size plus the contention axes — DRAM
/// bandwidth, on-chip buffer capacity and per-resource port counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Off-chip bandwidth in words per cycle; `None` disables the DRAM
    /// channel entirely (no weight streaming, no spills) — the
    /// no-contention configuration that matches the analytic model
    /// bit-for-bit.
    pub dram_words_per_cycle: Option<u64>,
    /// Mini-batch size fed to the cycle model (paper standard: 128).
    pub batch: usize,
    /// On-chip global-buffer capacity in 4-byte words; `None` models an
    /// unbounded buffer (perfect reuse, no spill traffic). Only matters
    /// while the DRAM channel exists — spills *are* DRAM traffic.
    pub buffer_words: Option<u64>,
    /// DRAM channel ports (engine resource capacity): with 1 the weight
    /// stream and spill traffic serialize head-of-line; 2 lets a spill
    /// bypass the prefetch stream (each port moves
    /// `dram_words_per_cycle`, so this scales aggregate bandwidth too).
    pub dram_ports: u32,
    /// Main PE-array ports. The paper's schedules serialize through
    /// dependency chains, so >1 changes nothing today; the knob exists
    /// for hypothetical split-array studies.
    pub pe_ports: u32,
    /// ADA-GP-MAX predictor-array ports (same caveat as `pe_ports`).
    pub pred_ports: u32,
}

impl Default for SimConfig {
    /// Contention on at 64 words/cycle over a single-ported channel, with
    /// the paper-class 128K-word (512 KB) buffer — wide enough that large
    /// conv layers stay compute-bound, narrow enough that early
    /// high-resolution layers, FC heads and over-capacity working sets
    /// expose real streaming stalls and spills.
    fn default() -> Self {
        SimConfig {
            dram_words_per_cycle: Some(64),
            batch: MODEL_BATCH,
            buffer_words: Some(BufferConfig::default().capacity_words),
            dram_ports: 1,
            pe_ports: 1,
            pred_ports: 1,
        }
    }
}

impl SimConfig {
    /// Infinite-bandwidth, unbounded-buffer configuration: the simulated
    /// makespans equal the analytic per-batch cycle counts exactly.
    pub fn no_contention() -> Self {
        SimConfig {
            dram_words_per_cycle: None,
            batch: MODEL_BATCH,
            buffer_words: None,
            dram_ports: 1,
            pe_ports: 1,
            pred_ports: 1,
        }
    }

    /// This configuration with the DRAM bandwidth replaced.
    pub fn with_bandwidth(self, words_per_cycle: u64) -> Self {
        SimConfig {
            dram_words_per_cycle: Some(words_per_cycle),
            ..self
        }
    }

    /// This configuration with the buffer capacity replaced.
    pub fn with_buffer_words(self, words: Option<u64>) -> Self {
        SimConfig {
            buffer_words: words,
            ..self
        }
    }
}

/// Which batch schedule to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Plain backpropagation (no predictor).
    Baseline,
    /// ADA-GP warm-up / Phase BP: backprop plus predictor training.
    Bp,
    /// ADA-GP Phase GP: forward plus gradient prediction, backward skipped.
    Gp,
}

impl Phase {
    /// Stable lowercase name (CLI and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Baseline => "baseline",
            Phase::Bp => "bp",
            Phase::Gp => "gp",
        }
    }
}

/// One layer as the simulator sees it: cycle costs plus the word counts
/// that drive contention and buffer-occupancy modeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimLayer {
    /// Display label.
    pub label: String,
    /// Cycle costs (FW / BW / α) of the layer.
    pub cost: LayerCost,
    /// Weight words streamed from DRAM before the layer's FW (0 = none).
    pub weight_words: u64,
    /// Output-activation words held in the buffer while alive (0 = none).
    pub activation_words: u64,
    /// Excess DRAM words the finite buffer forces the layer's FW to
    /// re-stream (tiled traffic minus ideal traffic; 0 = fits).
    pub spill_words: u64,
}

impl SimLayer {
    /// A layer with costs only — no streaming, no buffer footprint.
    /// (Property tests over random cost mixes use this.)
    pub fn from_cost(label: impl Into<String>, cost: LayerCost) -> Self {
        SimLayer {
            label: label.into(),
            cost,
            weight_words: 0,
            activation_words: 0,
            spill_words: 0,
        }
    }
}

/// Excess forward-pass DRAM words of one layer under a finite buffer:
/// the tiling model's traffic minus the infinite-buffer ideal. Monotone
/// non-increasing in the capacity (a bigger buffer never spills more).
pub fn layer_spill_words(
    buffer_words: Option<u64>,
    df: Dataflow,
    layer: &LayerShape,
    batch: usize,
) -> u64 {
    let Some(capacity_words) = buffer_words else {
        return 0;
    };
    let tiled = tiled_fw_traffic(&BufferConfig { capacity_words }, df, layer, batch).total();
    let ideal = tiled_fw_traffic(
        &BufferConfig {
            capacity_words: u64::MAX,
        },
        df,
        layer,
        batch,
    )
    .total();
    tiled - ideal
}

/// Derives the simulator's layer list for a model the same way the
/// analytic model does: [`model_costs`] on the same shapes, plus the
/// weight/activation word counts the shapes imply and the spill traffic
/// the configured buffer capacity forces ([`layer_spill_words`]).
pub fn model_sim_layers(
    cfg: &AcceleratorConfig,
    df: Dataflow,
    pred: &PredictorCostModel,
    layers: &[LayerShape],
    sim: &SimConfig,
) -> Vec<SimLayer> {
    let batch = sim.batch;
    let costs = model_costs(cfg, df, pred, layers, batch);
    layers
        .iter()
        .zip(costs)
        .map(|(l, cost)| SimLayer {
            label: l.label.clone(),
            cost,
            weight_words: l.weight_count(),
            activation_words: l.out_activations() * batch as u64,
            spill_words: layer_spill_words(sim.buffer_words, df, l, batch),
        })
        .collect()
}

/// Resource ids of one built batch graph.
#[derive(Debug, Clone, Copy)]
struct Lanes {
    pe: ResourceId,
    pred: Option<ResourceId>,
    dram: Option<ResourceId>,
}

/// One simulated batch: the trace plus the work totals the derived
/// statistics need.
#[derive(Debug, Clone)]
pub struct BatchSim {
    /// Which schedule ran.
    pub phase: Phase,
    /// Which design ran it (`None` for the baseline).
    pub design: Option<AdaGpDesign>,
    /// The execution trace.
    pub result: SimResult,
    /// Σ durations of model tasks (FW, BW-data, BW-weight).
    pub model_cycles: u64,
    /// Σ durations of predictor tasks (fill, update, reload).
    pub predictor_cycles: u64,
    /// Σ durations of buffer-spill tasks (excess DRAM traffic a
    /// too-small buffer forced; 0 with an unbounded buffer or with the
    /// DRAM channel disabled).
    pub spill_cycles: u64,
    /// Resource id of the main PE array in [`BatchSim::result`].
    pub pe_array: ResourceId,
}

impl BatchSim {
    /// Batch makespan in cycles.
    pub fn makespan(&self) -> u64 {
        self.result.makespan
    }

    /// Busy fraction of the main PE array over the batch.
    pub fn pe_utilization(&self) -> f64 {
        self.result.utilization(self.pe_array)
    }

    /// How much of the predictor's work the schedule hid: `1 −
    /// (makespan − model cycles) / predictor cycles`, clamped to `[0, 1]`.
    /// 1 means every predictor cycle overlapped model compute (MAX with
    /// α ≪ FW); 0 means every predictor cycle extended the critical path
    /// (Efficient/LOW on the shared array). Stall cycles from contention
    /// count against the overlap. Returns 1 when there is no predictor
    /// work (baseline).
    pub fn overlap_efficiency(&self) -> f64 {
        if self.predictor_cycles == 0 {
            return 1.0;
        }
        let overhead = self.result.makespan.saturating_sub(self.model_cycles) as f64;
        (1.0 - overhead / self.predictor_cycles as f64).clamp(0.0, 1.0)
    }
}

/// Streaming-cycle cost of `words` at the configured bandwidth.
fn load_cycles(cfg: &SimConfig, words: u64) -> Option<u64> {
    cfg.dram_words_per_cycle.map(|bw| words.div_ceil(bw))
}

/// Builder-side helper: adds the per-layer DRAM prefetch task when
/// contention is enabled; returns the dependency FW must wait on.
fn add_weight_load(
    b: &mut SimBuilder,
    lanes: &Lanes,
    cfg: &SimConfig,
    layer_idx: usize,
    layer: &SimLayer,
) -> Option<usize> {
    let dram = lanes.dram?;
    let cycles = load_cycles(cfg, layer.weight_words)?;
    if layer.weight_words == 0 {
        return None;
    }
    Some(b.add_task(TaskSpec {
        label: format!("load {}", layer.label),
        kind: TaskKind::WeightLoad,
        layer: Some(layer_idx),
        resource: Some(dram),
        duration: cycles,
        deps: Vec::new(), // prefetch: ready at t=0, serialized by the channel
        buffer_delta: 0,
    }))
}

/// Builder-side helper: adds the layer's buffer-spill task (the excess
/// re-stream traffic a too-small buffer forces) when contention is
/// enabled; returns the dependency FW must wait on. Unlike weight loads,
/// a spill re-reads *operands the previous layer produced*, so it carries
/// `deps` (the same readiness dependency the FW has) instead of
/// prefetching from t = 0.
fn add_spill(
    b: &mut SimBuilder,
    lanes: &Lanes,
    cfg: &SimConfig,
    layer_idx: usize,
    layer: &SimLayer,
    deps: Vec<usize>,
) -> Option<usize> {
    let dram = lanes.dram?;
    let cycles = load_cycles(cfg, layer.spill_words)?;
    if layer.spill_words == 0 {
        return None;
    }
    Some(b.add_task(TaskSpec {
        label: format!("spill {}", layer.label),
        kind: TaskKind::Spill,
        layer: Some(layer_idx),
        resource: Some(dram),
        duration: cycles,
        deps,
        buffer_delta: 0,
    }))
}

fn compute_task(
    kind: TaskKind,
    layer_idx: usize,
    label: &str,
    resource: ResourceId,
    duration: u64,
    deps: Vec<usize>,
) -> TaskSpec {
    TaskSpec {
        label: format!("{} {}", kind.name(), label),
        kind,
        layer: Some(layer_idx),
        resource: Some(resource),
        duration,
        deps,
        buffer_delta: 0,
    }
}

/// Splits a layer's BW cycles into the data-gradient and weight-gradient
/// halves; the halves always sum back to `bw`.
pub fn split_bw(bw: u64) -> (u64, u64) {
    let data = bw.div_ceil(2);
    (data, bw - data)
}

/// Simulates one batch of `phase` under `design` over `layers`.
///
/// # Panics
///
/// Panics if `layers` is empty, if `phase` is not [`Phase::Baseline`]
/// while `design` is `None`, or if the configured DRAM bandwidth is
/// `Some(0)` (disable contention with `None` instead).
pub fn simulate_batch(
    phase: Phase,
    design: Option<AdaGpDesign>,
    layers: &[SimLayer],
    cfg: &SimConfig,
) -> BatchSim {
    assert!(!layers.is_empty(), "need at least one layer");
    assert!(
        cfg.dram_words_per_cycle != Some(0),
        "DRAM bandwidth must be positive (use None to disable contention)"
    );
    if phase != Phase::Baseline {
        assert!(design.is_some(), "ADA-GP phases need a design");
    }
    let mut b = SimBuilder::new();
    let pe = b.add_resource("pe-array", cfg.pe_ports);
    let pred = match design {
        Some(AdaGpDesign::Max) if phase != Phase::Baseline => {
            Some(b.add_resource("predictor-array", cfg.pred_ports))
        }
        _ => None,
    };
    let dram = cfg
        .dram_words_per_cycle
        .map(|_| b.add_resource("dram", cfg.dram_ports));
    let lanes = Lanes { pe, pred, dram };

    match (phase, design) {
        (Phase::Baseline, _) => build_baseline(&mut b, &lanes, layers, cfg),
        (Phase::Bp, Some(AdaGpDesign::Max)) => build_bp_max(&mut b, &lanes, layers, cfg),
        (Phase::Bp, Some(d)) => build_bp_shared(&mut b, &lanes, layers, cfg, d),
        (Phase::Gp, Some(AdaGpDesign::Max)) => build_gp_max(&mut b, &lanes, layers, cfg),
        (Phase::Gp, Some(d)) => build_gp_shared(&mut b, &lanes, layers, cfg, d),
        _ => unreachable!("design checked above"),
    }

    let result = b.simulate();
    let mut model_cycles = 0u64;
    let mut predictor_cycles = 0u64;
    let mut spill_cycles = 0u64;
    for t in &result.tasks {
        match t.kind {
            TaskKind::Forward | TaskKind::BackwardData | TaskKind::BackwardWeight => {
                model_cycles += t.duration
            }
            TaskKind::PredictorFill | TaskKind::PredictorUpdate | TaskKind::PredictorReload => {
                predictor_cycles += t.duration
            }
            TaskKind::Spill => spill_cycles += t.duration,
            TaskKind::WeightLoad | TaskKind::Join => {}
        }
    }
    BatchSim {
        phase,
        design,
        result,
        model_cycles,
        predictor_cycles,
        spill_cycles,
        pe_array: pe,
    }
}

/// Baseline: FW sweep then BW sweep (data + weight), all on the PE array.
fn build_baseline(b: &mut SimBuilder, lanes: &Lanes, layers: &[SimLayer], cfg: &SimConfig) {
    let mut prev: Option<usize> = None;
    for (i, l) in layers.iter().enumerate() {
        let ready: Vec<usize> = prev.into_iter().collect();
        let mut deps = ready.clone();
        deps.extend(add_weight_load(b, lanes, cfg, i, l));
        deps.extend(add_spill(b, lanes, cfg, i, l, ready));
        let mut fwd = compute_task(TaskKind::Forward, i, &l.label, lanes.pe, l.cost.fw, deps);
        fwd.buffer_delta = l.activation_words as i64;
        prev = Some(b.add_task(fwd));
    }
    for (i, l) in layers.iter().enumerate().rev() {
        let (data, weight) = split_bw(l.cost.bw);
        let bd = b.add_task(compute_task(
            TaskKind::BackwardData,
            i,
            &l.label,
            lanes.pe,
            data,
            prev.into_iter().collect(),
        ));
        let mut bw = compute_task(
            TaskKind::BackwardWeight,
            i,
            &l.label,
            lanes.pe,
            weight,
            vec![bd],
        );
        bw.buffer_delta = -(l.activation_words as i64);
        prev = Some(b.add_task(bw));
    }
}

/// Phase BP on a shared array (Efficient / LOW): the predictor's fill
/// follows each FW and its update follows each layer's BW, with LOW
/// paying a weight reload before every predictor use.
fn build_bp_shared(
    b: &mut SimBuilder,
    lanes: &Lanes,
    layers: &[SimLayer],
    cfg: &SimConfig,
    design: AdaGpDesign,
) {
    let reload = design.reload_cycles();
    let mut prev: Option<usize> = None;
    for (i, l) in layers.iter().enumerate() {
        let ready: Vec<usize> = prev.into_iter().collect();
        let mut deps = ready.clone();
        deps.extend(add_weight_load(b, lanes, cfg, i, l));
        deps.extend(add_spill(b, lanes, cfg, i, l, ready));
        let mut fwd = compute_task(TaskKind::Forward, i, &l.label, lanes.pe, l.cost.fw, deps);
        fwd.buffer_delta = l.activation_words as i64;
        prev = Some(b.add_task(fwd));
        if reload > 0 {
            prev = Some(b.add_task(compute_task(
                TaskKind::PredictorReload,
                i,
                &l.label,
                lanes.pe,
                reload,
                prev.into_iter().collect(),
            )));
        }
        prev = Some(b.add_task(compute_task(
            TaskKind::PredictorFill,
            i,
            &l.label,
            lanes.pe,
            l.cost.alpha,
            prev.into_iter().collect(),
        )));
    }
    for (i, l) in layers.iter().enumerate().rev() {
        let (data, weight) = split_bw(l.cost.bw);
        prev = Some(b.add_task(compute_task(
            TaskKind::BackwardData,
            i,
            &l.label,
            lanes.pe,
            data,
            prev.into_iter().collect(),
        )));
        prev = Some(b.add_task(compute_task(
            TaskKind::BackwardWeight,
            i,
            &l.label,
            lanes.pe,
            weight,
            prev.into_iter().collect(),
        )));
        if reload > 0 {
            prev = Some(b.add_task(compute_task(
                TaskKind::PredictorReload,
                i,
                &l.label,
                lanes.pe,
                reload,
                prev.into_iter().collect(),
            )));
        }
        let mut upd = compute_task(
            TaskKind::PredictorUpdate,
            i,
            &l.label,
            lanes.pe,
            2 * l.cost.alpha,
            prev.into_iter().collect(),
        );
        upd.buffer_delta = -(l.activation_words as i64);
        prev = Some(b.add_task(upd));
    }
}

/// Phase BP on ADA-GP-MAX: per-layer windows. The model's FW→BW chain
/// and the predictor's fill→update chain start together at the window
/// barrier and the next window opens when both finish — the per-layer
/// `max(FW + BW, 3α)` of the analytic model.
fn build_bp_max(b: &mut SimBuilder, lanes: &Lanes, layers: &[SimLayer], cfg: &SimConfig) {
    let pred = lanes.pred.expect("MAX has a predictor array");
    let mut barrier: Option<usize> = None;
    for (i, l) in layers.iter().enumerate() {
        let window: Vec<usize> = barrier.into_iter().collect();
        let mut fwd_deps = window.clone();
        fwd_deps.extend(add_weight_load(b, lanes, cfg, i, l));
        fwd_deps.extend(add_spill(b, lanes, cfg, i, l, window.clone()));
        let mut fwd = compute_task(
            TaskKind::Forward,
            i,
            &l.label,
            lanes.pe,
            l.cost.fw,
            fwd_deps,
        );
        fwd.buffer_delta = l.activation_words as i64;
        let fwd = b.add_task(fwd);
        let (data, weight) = split_bw(l.cost.bw);
        let bd = b.add_task(compute_task(
            TaskKind::BackwardData,
            i,
            &l.label,
            lanes.pe,
            data,
            vec![fwd],
        ));
        let bw = b.add_task(compute_task(
            TaskKind::BackwardWeight,
            i,
            &l.label,
            lanes.pe,
            weight,
            vec![bd],
        ));
        // The predictor consumes the layer's *input* activation (already
        // on chip at the window barrier), so its chain needs no FW dep.
        let fill = b.add_task(compute_task(
            TaskKind::PredictorFill,
            i,
            &l.label,
            pred,
            l.cost.alpha,
            window,
        ));
        let upd = b.add_task(compute_task(
            TaskKind::PredictorUpdate,
            i,
            &l.label,
            pred,
            2 * l.cost.alpha,
            vec![fill],
        ));
        let mut join = TaskSpec::join(format!("window {}", l.label), vec![bw, upd]);
        join.buffer_delta = -(l.activation_words as i64);
        barrier = Some(b.add_task(join));
    }
}

/// Phase GP on a shared array (Efficient / LOW): FW then predictor fill
/// per layer, serial, with LOW's reload in between.
fn build_gp_shared(
    b: &mut SimBuilder,
    lanes: &Lanes,
    layers: &[SimLayer],
    cfg: &SimConfig,
    design: AdaGpDesign,
) {
    let reload = design.reload_cycles();
    let mut prev: Option<usize> = None;
    for (i, l) in layers.iter().enumerate() {
        let ready: Vec<usize> = prev.into_iter().collect();
        let mut deps = ready.clone();
        deps.extend(add_weight_load(b, lanes, cfg, i, l));
        deps.extend(add_spill(b, lanes, cfg, i, l, ready));
        let mut fwd = compute_task(TaskKind::Forward, i, &l.label, lanes.pe, l.cost.fw, deps);
        fwd.buffer_delta = l.activation_words as i64;
        prev = Some(b.add_task(fwd));
        if reload > 0 {
            prev = Some(b.add_task(compute_task(
                TaskKind::PredictorReload,
                i,
                &l.label,
                lanes.pe,
                reload,
                prev.into_iter().collect(),
            )));
        }
        let mut fill = compute_task(
            TaskKind::PredictorFill,
            i,
            &l.label,
            lanes.pe,
            l.cost.alpha,
            prev.into_iter().collect(),
        );
        fill.buffer_delta = -(l.activation_words as i64);
        prev = Some(b.add_task(fill));
    }
}

/// Phase GP on ADA-GP-MAX: per-layer slots — FW on the PE array runs
/// concurrently with the layer's predictor fill on the predictor array
/// (`max(FW, α)` per slot), plus the trailing output-layer fill.
fn build_gp_max(b: &mut SimBuilder, lanes: &Lanes, layers: &[SimLayer], cfg: &SimConfig) {
    let pred = lanes.pred.expect("MAX has a predictor array");
    let mut barrier: Option<usize> = None;
    for (i, l) in layers.iter().enumerate() {
        let slot: Vec<usize> = barrier.into_iter().collect();
        let mut fwd_deps = slot.clone();
        fwd_deps.extend(add_weight_load(b, lanes, cfg, i, l));
        fwd_deps.extend(add_spill(b, lanes, cfg, i, l, slot.clone()));
        let mut fwd = compute_task(
            TaskKind::Forward,
            i,
            &l.label,
            lanes.pe,
            l.cost.fw,
            fwd_deps,
        );
        fwd.buffer_delta = l.activation_words as i64;
        let fwd = b.add_task(fwd);
        let fill = b.add_task(compute_task(
            TaskKind::PredictorFill,
            i,
            &l.label,
            pred,
            l.cost.alpha,
            slot,
        ));
        let mut join = TaskSpec::join(format!("slot {}", l.label), vec![fwd, fill]);
        join.buffer_delta = -(l.activation_words as i64);
        barrier = Some(b.add_task(join));
    }
    // The last layer's own prediction cannot hide behind a next layer.
    let last = layers.last().expect("non-empty");
    b.add_task(compute_task(
        TaskKind::PredictorFill,
        layers.len() - 1,
        &format!("{} (out)", last.label),
        pred,
        last.cost.alpha,
        barrier.into_iter().collect(),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_accel::designs::{baseline_batch_cycles, bp_batch_cycles, gp_batch_cycles};

    fn layers() -> Vec<SimLayer> {
        [
            LayerCost {
                fw: 1000,
                bw: 2000,
                alpha: 100,
            },
            LayerCost {
                fw: 500,
                bw: 1001,
                alpha: 80,
            },
            LayerCost {
                fw: 2000,
                bw: 4000,
                alpha: 150,
            },
        ]
        .iter()
        .enumerate()
        .map(|(i, &cost)| SimLayer {
            label: format!("l{i}"),
            cost,
            weight_words: 10_000,
            activation_words: 5_000,
            spill_words: 0,
        })
        .collect()
    }

    fn spilling_layers() -> Vec<SimLayer> {
        layers()
            .into_iter()
            .map(|mut l| {
                l.spill_words = 50_000;
                l
            })
            .collect()
    }

    fn costs() -> Vec<LayerCost> {
        layers().iter().map(|l| l.cost).collect()
    }

    #[test]
    fn no_contention_matches_analytic_batch_cycles_exactly() {
        let cfg = SimConfig::no_contention();
        let ls = layers();
        assert_eq!(
            simulate_batch(Phase::Baseline, None, &ls, &cfg).makespan(),
            baseline_batch_cycles(&costs())
        );
        for d in AdaGpDesign::all() {
            assert_eq!(
                simulate_batch(Phase::Bp, Some(d), &ls, &cfg).makespan(),
                bp_batch_cycles(d, &costs()),
                "BP {}",
                d.name()
            );
            assert_eq!(
                simulate_batch(Phase::Gp, Some(d), &ls, &cfg).makespan(),
                gp_batch_cycles(d, &costs()),
                "GP {}",
                d.name()
            );
        }
    }

    #[test]
    fn max_bp_with_huge_alpha_hits_the_predictor_bound() {
        // One layer where 3α > FW+BW: the window is predictor-bound.
        let ls = vec![SimLayer::from_cost(
            "fat",
            LayerCost {
                fw: 100,
                bw: 200,
                alpha: 400,
            },
        )];
        let sim = simulate_batch(
            Phase::Bp,
            Some(AdaGpDesign::Max),
            &ls,
            &SimConfig::no_contention(),
        );
        assert_eq!(sim.makespan(), 1200); // 3α
        assert_eq!(
            sim.makespan(),
            bp_batch_cycles(AdaGpDesign::Max, &[ls[0].cost])
        );
    }

    #[test]
    fn contention_only_adds_cycles() {
        let ls = layers();
        for (phase, design) in [
            (Phase::Baseline, None),
            (Phase::Bp, Some(AdaGpDesign::Max)),
            (Phase::Gp, Some(AdaGpDesign::Efficient)),
        ] {
            let free = simulate_batch(phase, design, &ls, &SimConfig::no_contention()).makespan();
            let tight = simulate_batch(
                phase,
                design,
                &ls,
                &SimConfig::no_contention().with_bandwidth(4),
            )
            .makespan();
            let loose = simulate_batch(
                phase,
                design,
                &ls,
                &SimConfig::no_contention().with_bandwidth(1_000_000),
            )
            .makespan();
            assert!(tight >= loose, "{phase:?}");
            assert!(loose >= free, "{phase:?}");
        }
    }

    #[test]
    fn overlap_efficiency_separates_the_designs() {
        let ls = layers();
        let cfg = SimConfig::no_contention();
        let eff = simulate_batch(Phase::Gp, Some(AdaGpDesign::Efficient), &ls, &cfg);
        let max = simulate_batch(Phase::Gp, Some(AdaGpDesign::Max), &ls, &cfg);
        let base = simulate_batch(Phase::Baseline, None, &ls, &cfg);
        assert_eq!(eff.overlap_efficiency(), 0.0); // fully exposed
        assert!(
            max.overlap_efficiency() > 0.5,
            "{}",
            max.overlap_efficiency()
        );
        assert_eq!(base.overlap_efficiency(), 1.0); // nothing to hide
        assert_eq!(base.pe_utilization(), 1.0);
        assert!(max.pe_utilization() < 1.0); // trailing fill idles the array
    }

    #[test]
    fn buffer_occupancy_rises_through_fw_and_returns_to_zero() {
        let ls = layers();
        let sim = simulate_batch(Phase::Baseline, None, &ls, &SimConfig::no_contention());
        assert_eq!(sim.result.buffer_peak, 15_000); // all three alive at FW end
        assert_eq!(sim.result.buffer_curve.last().unwrap().1, 0);
        let gp = simulate_batch(
            Phase::Gp,
            Some(AdaGpDesign::Efficient),
            &ls,
            &SimConfig::no_contention(),
        );
        // GP frees each activation right after its prediction: lower peak.
        assert!(gp.result.buffer_peak < sim.result.buffer_peak);
    }

    #[test]
    fn spills_add_cycles_and_are_metered() {
        let cfg = SimConfig::default(); // 64 w/c: 50_000 words ≈ 782 cycles/layer
        for (phase, design) in [
            (Phase::Baseline, None),
            (Phase::Bp, Some(AdaGpDesign::Max)),
            (Phase::Gp, Some(AdaGpDesign::Efficient)),
        ] {
            let clean = simulate_batch(phase, design, &layers(), &cfg);
            let spilled = simulate_batch(phase, design, &spilling_layers(), &cfg);
            assert_eq!(clean.spill_cycles, 0, "{phase:?}");
            assert_eq!(
                spilled.spill_cycles,
                3 * 50_000u64.div_ceil(64),
                "{phase:?}"
            );
            assert!(spilled.makespan() > clean.makespan(), "{phase:?}");
        }
    }

    #[test]
    fn no_contention_ignores_spill_words_and_buffer_knobs() {
        // The DRAM channel is the only place spill traffic can land: with
        // it disabled the buffer knobs are inert and the analytic equality
        // holds even for layers that would spill.
        let cfg = SimConfig {
            buffer_words: Some(1), // absurdly small — must not matter
            ..SimConfig::no_contention()
        };
        let ls = spilling_layers();
        let cs = costs();
        let sim = simulate_batch(Phase::Baseline, None, &ls, &cfg);
        assert_eq!(sim.spill_cycles, 0);
        assert_eq!(sim.makespan(), baseline_batch_cycles(&cs));
    }

    #[test]
    fn spill_gates_the_layers_forward_pass() {
        // One layer, huge spill: FW may only start once the re-stream
        // drains, so the makespan is load + spill + FW exactly.
        let mut l = SimLayer::from_cost(
            "solo",
            LayerCost {
                fw: 1000,
                bw: 2000,
                alpha: 10,
            },
        );
        l.weight_words = 640;
        l.spill_words = 6_400;
        let cfg = SimConfig::default(); // 64 words/cycle
        let sim = simulate_batch(Phase::Baseline, None, &[l], &cfg);
        assert_eq!(sim.makespan(), 10 + 100 + 1000 + 2000);
    }

    #[test]
    fn second_dram_port_lets_spills_bypass_the_weight_stream() {
        // Single-ported: layer 1's spill queues behind layer 2's prefetch;
        // a second port serves them concurrently, so the makespan can only
        // shrink (and here strictly does).
        let one = SimConfig::default();
        let two = SimConfig {
            dram_ports: 2,
            ..SimConfig::default()
        };
        let ls: Vec<SimLayer> = spilling_layers()
            .into_iter()
            .map(|mut l| {
                l.weight_words = 500_000;
                l
            })
            .collect();
        let serial = simulate_batch(Phase::Baseline, None, &ls, &one);
        let ported = simulate_batch(Phase::Baseline, None, &ls, &two);
        assert!(ported.makespan() < serial.makespan());
    }

    #[test]
    fn model_layers_spill_only_when_the_buffer_is_too_small() {
        use adagp_nn::models::shapes::LayerShape;
        let shapes = vec![
            LayerShape::conv("small", 8, 8, 3, 14),    // 576 weights
            LayerShape::conv("huge", 512, 512, 3, 14), // 2.36M weights
        ];
        let acfg = AcceleratorConfig::default();
        let pred = PredictorCostModel::default();
        let sim_cfg = SimConfig::default(); // 128K-word buffer
        let ls = model_sim_layers(&acfg, Dataflow::WeightStationary, &pred, &shapes, &sim_cfg);
        assert_eq!(ls[0].spill_words, 0, "fitting layer must not spill");
        assert!(ls[1].spill_words > 0, "over-capacity layer must spill");
        let unbounded = model_sim_layers(
            &acfg,
            Dataflow::WeightStationary,
            &pred,
            &shapes,
            &sim_cfg.with_buffer_words(None),
        );
        assert!(unbounded.iter().all(|l| l.spill_words == 0));
        // A bigger buffer never spills more, layer by layer.
        let bigger = model_sim_layers(
            &acfg,
            Dataflow::WeightStationary,
            &pred,
            &shapes,
            &sim_cfg.with_buffer_words(Some(1 << 22)),
        );
        for (b, s) in bigger.iter().zip(&ls) {
            assert!(b.spill_words <= s.spill_words);
        }
    }

    #[test]
    #[should_panic(expected = "DRAM bandwidth must be positive")]
    fn zero_bandwidth_is_rejected_not_clamped() {
        let ls = layers();
        simulate_batch(
            Phase::Baseline,
            None,
            &ls,
            &SimConfig::no_contention().with_bandwidth(0),
        );
    }

    #[test]
    fn split_bw_halves_sum_back() {
        for bw in [0u64, 1, 2, 3, 1001, 4000] {
            let (d, w) = split_bw(bw);
            assert_eq!(d + w, bw);
            assert!(d >= w);
        }
    }

    #[test]
    fn task_graph_has_expected_span_counts() {
        let ls = layers();
        let sim = simulate_batch(
            Phase::Bp,
            Some(AdaGpDesign::Low),
            &ls,
            &SimConfig::no_contention(),
        );
        // Per layer: fwd, reload, fill, bwd-data, bwd-weight, reload, update.
        assert_eq!(sim.result.spans.len(), 7 * ls.len());
        let sim = simulate_batch(
            Phase::Gp,
            Some(AdaGpDesign::Max),
            &ls,
            &SimConfig::default(),
        );
        // Per layer: load, fwd, fill, join; plus one trailing fill.
        assert_eq!(sim.result.spans.len(), 4 * ls.len() + 1);
    }
}
