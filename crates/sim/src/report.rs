//! Plain-text reports of a simulated batch: the span timeline (a textual
//! Gantt chart), per-resource utilization and the buffer-occupancy
//! summary — what the `sim_timeline` binary prints — plus the bridge
//! into `adagp-obs`'s critical-path analyzer ([`critical_path`]).

use crate::engine::SimResult;
use crate::workload::BatchSim;
use adagp_obs::crit::{analyze_dag, CritReport, CritTask};

/// Renders the span table: one line per executed task, in start order.
/// `limit` truncates long timelines (0 = everything).
pub fn span_table(result: &SimResult, limit: usize) -> String {
    let mut out = String::from("  start      end        dur        resource         task\n");
    let shown = if limit == 0 {
        result.spans.len()
    } else {
        limit.min(result.spans.len())
    };
    for span in &result.spans[..shown] {
        let task = &result.tasks[span.task];
        let resource = match task.resource {
            Some(r) => result.resources[r].name.as_str(),
            None => "-",
        };
        out.push_str(&format!(
            "  {:<10} {:<10} {:<10} {:<16} {}\n",
            span.start,
            span.end,
            span.end - span.start,
            resource,
            task.label
        ));
    }
    if shown < result.spans.len() {
        out.push_str(&format!(
            "  … {} more spans (raise --limit or export --trace)\n",
            result.spans.len() - shown
        ));
    }
    out
}

/// Renders the utilization/occupancy summary of one simulated batch.
pub fn utilization_report(sim: &BatchSim) -> String {
    let r = &sim.result;
    let mut out = format!(
        "phase {} ({}): makespan {} cycles\n",
        sim.phase.name(),
        sim.design.map_or("baseline", |d| d.name()),
        r.makespan
    );
    for (i, res) in r.resources.iter().enumerate() {
        out.push_str(&format!(
            "  {:<16} busy {:>12} cycles  utilization {:>6.1}%\n",
            res.name,
            r.busy[i],
            100.0 * r.utilization(i)
        ));
    }
    out.push_str(&format!(
        "  model {} + predictor {} + buffer-spill {} cycles; overlap efficiency {:.1}%\n",
        sim.model_cycles,
        sim.predictor_cycles,
        sim.spill_cycles,
        100.0 * sim.overlap_efficiency()
    ));
    out.push_str(&format!(
        "  peak buffer occupancy {} words over {} change points\n",
        r.buffer_peak,
        r.buffer_curve.len()
    ));
    out
}

/// Converts a finished simulation into the neutral task form
/// `adagp_obs::crit` analyzes: exact start/end cycles from the spans,
/// the engine's ready cycles and admission causes, and resource names as
/// lanes (`-` for resourceless synchronization nodes).
pub fn crit_tasks(result: &SimResult) -> Vec<CritTask> {
    let mut start = vec![0u64; result.tasks.len()];
    let mut end = vec![0u64; result.tasks.len()];
    for s in &result.spans {
        start[s.task] = s.start;
        end[s.task] = s.end;
    }
    result
        .tasks
        .iter()
        .enumerate()
        .map(|(id, t)| CritTask {
            label: t.label.clone(),
            kind: t.kind.name().to_string(),
            lane: t
                .resource
                .map_or_else(|| "-".to_string(), |r| result.resources[r].name.clone()),
            start: start[id],
            end: end[id],
            ready: result.ready_of[id],
            deps: t.deps.clone(),
            unblocked_by: result.unblocked_by[id],
        })
        .collect()
}

/// The zero-slack chain and blame report of one finished simulation.
/// The chain's summed segment durations equal `result.makespan`
/// bit-exactly (the engine invariant `adagp_obs::validate_critpath`
/// machine-checks).
pub fn critical_path(result: &SimResult, title: &str) -> CritReport {
    analyze_dag(&crit_tasks(result), title)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{simulate_batch, Phase, SimConfig, SimLayer};
    use adagp_accel::layer_cost::LayerCost;
    use adagp_accel::AdaGpDesign;

    fn sim() -> BatchSim {
        let layers: Vec<SimLayer> = (0..3u64)
            .map(|i| SimLayer {
                label: format!("l{i}"),
                cost: LayerCost {
                    fw: 100 * (i + 1),
                    bw: 200 * (i + 1),
                    alpha: 10,
                },
                weight_words: 256,
                activation_words: 64,
                spill_words: 512,
            })
            .collect();
        simulate_batch(
            Phase::Gp,
            Some(AdaGpDesign::Max),
            &layers,
            &SimConfig::default(),
        )
    }

    #[test]
    fn span_table_lists_and_truncates() {
        let s = sim();
        let full = span_table(&s.result, 0);
        assert!(full.contains("fwd l0") && full.contains("pred-fill l2"));
        assert!(full.contains("spill l0"), "spill tasks appear in the table");
        let short = span_table(&s.result, 2);
        assert!(short.contains("more spans"));
        assert_eq!(short.lines().count(), 1 + 2 + 1); // header + 2 + ellipsis
    }

    #[test]
    fn utilization_report_names_every_lane() {
        let text = utilization_report(&sim());
        assert!(text.contains("pe-array"));
        assert!(text.contains("predictor-array"));
        assert!(text.contains("dram"));
        assert!(text.contains("overlap efficiency"));
        assert!(text.contains("peak buffer occupancy"));
    }

    #[test]
    fn critical_path_chain_equals_makespan_bit_exactly() {
        let s = sim();
        let report = critical_path(&s.result, "unit");
        assert_eq!(report.makespan, s.result.makespan);
        let chain_sum: u64 = report.chain.iter().map(|c| c.end - c.start).sum();
        assert_eq!(chain_sum, s.result.makespan);
        let blame_sum: u64 = report.blame.iter().map(|b| b.time).sum();
        assert_eq!(blame_sum, s.result.makespan);
        adagp_obs::validate_critpath(&report.to_json()).expect("valid report");
    }

    #[test]
    fn contended_sim_blames_dram_somewhere_on_the_chain() {
        // Starve the DRAM port so weight loads and spills serialize: the
        // zero-slack chain must spend time on the dram lane.
        let layers: Vec<SimLayer> = (0..3u64)
            .map(|i| SimLayer {
                label: format!("l{i}"),
                cost: LayerCost {
                    fw: 50,
                    bw: 100,
                    alpha: 10,
                },
                weight_words: 100_000,
                activation_words: 64,
                spill_words: 200_000,
            })
            .collect();
        let cfg = SimConfig {
            dram_words_per_cycle: Some(1),
            ..SimConfig::default()
        };
        let s = simulate_batch(Phase::Gp, Some(AdaGpDesign::Max), &layers, &cfg);
        let report = critical_path(&s.result, "contended");
        assert!(
            report.blame.iter().any(|b| b.lane == "dram"),
            "no dram blame in {:?}",
            report.blame
        );
        adagp_obs::validate_critpath(&report.to_json()).expect("valid report");
    }
}
