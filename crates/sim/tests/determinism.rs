//! Simulator-core guarantees, integration-level:
//!
//! 1. **Seeded property sweep** — over random layer-cost mixes, the
//!    no-contention simulation reproduces the analytic per-batch cycle
//!    counts *exactly* (the closed forms are the sim's zero-contention
//!    special case), and enabling contention can only add cycles, so the
//!    analytic number is always a lower bound.
//! 2. **Determinism** — re-running a simulation yields the identical
//!    span trace, and equal-time event ties always resolve the same way.
//! 3. **Sanity of derived stats** — utilizations and overlap
//!    efficiencies stay inside [0, 1], buffer occupancy returns to zero.

use adagp_accel::designs::{baseline_batch_cycles, bp_batch_cycles, gp_batch_cycles};
use adagp_accel::layer_cost::LayerCost;
use adagp_accel::AdaGpDesign;
use adagp_sim::{simulate_batch, Phase, SimConfig, SimLayer};
use adagp_tensor::Prng;

/// A random model: 1–24 layers with FW in [1, 10⁶], BW = 2×FW ± jitter,
/// α in [0, 2×FW] (deliberately allowed to exceed FW to exercise the
/// predictor-bound branches of the MAX schedules).
fn random_layers(rng: &mut Prng) -> Vec<SimLayer> {
    let n = 1 + (rng.next_u64() % 24) as usize;
    (0..n)
        .map(|i| {
            let fw = 1 + rng.next_u64() % 1_000_000;
            let jitter = rng.next_u64() % (fw / 2 + 1);
            let bw = 2 * fw + jitter;
            let alpha = rng.next_u64() % (2 * fw);
            SimLayer {
                label: format!("l{i}"),
                cost: LayerCost { fw, bw, alpha },
                weight_words: rng.next_u64() % 1_000_000,
                activation_words: rng.next_u64() % 1_000_000,
                spill_words: rng.next_u64() % 500_000,
            }
        })
        .collect()
}

fn phases() -> Vec<(Phase, Option<AdaGpDesign>)> {
    let mut cases = vec![(Phase::Baseline, None)];
    for d in AdaGpDesign::all() {
        cases.push((Phase::Bp, Some(d)));
        cases.push((Phase::Gp, Some(d)));
    }
    cases
}

fn analytic_batch(phase: Phase, design: Option<AdaGpDesign>, costs: &[LayerCost]) -> u64 {
    match (phase, design) {
        (Phase::Baseline, _) => baseline_batch_cycles(costs),
        (Phase::Bp, Some(d)) => bp_batch_cycles(d, costs),
        (Phase::Gp, Some(d)) => gp_batch_cycles(d, costs),
        _ => unreachable!(),
    }
}

#[test]
fn no_contention_equals_analytic_on_random_mixes() {
    let mut rng = Prng::seed_from_u64(0xADA6_2023);
    for case in 0..200 {
        let layers = random_layers(&mut rng);
        let costs: Vec<LayerCost> = layers.iter().map(|l| l.cost).collect();
        for (phase, design) in phases() {
            let sim = simulate_batch(phase, design, &layers, &SimConfig::no_contention());
            assert_eq!(
                sim.makespan(),
                analytic_batch(phase, design, &costs),
                "case {case}: {phase:?} {design:?} over {} layers",
                layers.len()
            );
        }
    }
}

#[test]
fn contention_never_beats_the_analytic_lower_bound() {
    let mut rng = Prng::seed_from_u64(0xBEEF);
    for case in 0..100 {
        let layers = random_layers(&mut rng);
        let costs: Vec<LayerCost> = layers.iter().map(|l| l.cost).collect();
        let bw = 1 + rng.next_u64() % 256;
        let cfg = SimConfig {
            dram_words_per_cycle: Some(bw),
            ..SimConfig::no_contention()
        };
        for (phase, design) in phases() {
            let sim = simulate_batch(phase, design, &layers, &cfg);
            let bound = analytic_batch(phase, design, &costs);
            assert!(
                sim.makespan() >= bound,
                "case {case}: {phase:?} {design:?} at {bw} w/c: {} < {bound}",
                sim.makespan()
            );
            assert!(sim.pe_utilization() > 0.0 && sim.pe_utilization() <= 1.0);
            let eff = sim.overlap_efficiency();
            assert!((0.0..=1.0).contains(&eff), "{eff}");
            if let Some((_, words)) = sim.result.buffer_curve.last() {
                assert_eq!(*words, 0, "buffer must drain by the end of the batch");
            }
        }
    }
}

#[test]
fn repeated_simulation_reproduces_the_identical_trace() {
    let mut rng = Prng::seed_from_u64(7);
    let layers = random_layers(&mut rng);
    let cfg = SimConfig::default();
    let a = simulate_batch(Phase::Bp, Some(AdaGpDesign::Max), &layers, &cfg);
    for _ in 0..5 {
        let b = simulate_batch(Phase::Bp, Some(AdaGpDesign::Max), &layers, &cfg);
        assert_eq!(a.result.spans, b.result.spans);
        assert_eq!(a.result.busy, b.result.busy);
        assert_eq!(a.result.buffer_curve, b.result.buffer_curve);
    }
}

#[test]
fn event_ties_resolve_by_task_id_even_with_equal_costs() {
    // Every layer identical → masses of equal-time completions; the GP-MAX
    // graph (two lanes + joins) must still order its spans identically and
    // keep FIFO admission: fwd of slot i always precedes fwd of slot i+1.
    let layers: Vec<SimLayer> = (0..16)
        .map(|i| {
            SimLayer::from_cost(
                format!("l{i}"),
                LayerCost {
                    fw: 100,
                    bw: 200,
                    alpha: 100, // == fw: fill and fwd of a slot tie exactly
                },
            )
        })
        .collect();
    let a = simulate_batch(
        Phase::Gp,
        Some(AdaGpDesign::Max),
        &layers,
        &SimConfig::no_contention(),
    );
    let b = simulate_batch(
        Phase::Gp,
        Some(AdaGpDesign::Max),
        &layers,
        &SimConfig::no_contention(),
    );
    assert_eq!(a.result.spans, b.result.spans);
    let fwd_starts: Vec<u64> = a
        .result
        .spans
        .iter()
        .filter(|s| a.result.tasks[s.task].kind == adagp_sim::TaskKind::Forward)
        .map(|s| s.start)
        .collect();
    let mut sorted = fwd_starts.clone();
    sorted.sort_unstable();
    assert_eq!(fwd_starts, sorted, "forward sweep must stay in layer order");
    // 16 slots of max(fw, α) = 100 plus the trailing fill.
    assert_eq!(a.makespan(), 16 * 100 + 100);
}
