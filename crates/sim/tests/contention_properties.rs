//! Contention-study properties, integration-level (seeded `Prng` sweep
//! over ≥200 random layer mixes built from real [`LayerShape`]s so the
//! buffer tiling model is in the loop):
//!
//! 1. **Bandwidth monotonicity** — the simulated makespan is monotone
//!    non-increasing in `dram_words_per_cycle` (more bandwidth never
//!    hurts; the DRAM service order is fixed, so shrinking task durations
//!    can only pull completions earlier).
//! 2. **Buffer monotonicity** — the makespan is monotone non-increasing
//!    in the buffer capacity (a bigger buffer spills fewer words per
//!    layer, shrinking or deleting spill tasks).
//! 3. **Analytic lower bound** — every contended makespan is ≥ the
//!    closed-form per-batch cycle count, and the no-contention
//!    configuration reproduces it exactly.

use adagp_accel::designs::{baseline_batch_cycles, bp_batch_cycles, gp_batch_cycles};
use adagp_accel::layer_cost::{model_costs, LayerCost, PredictorCostModel};
use adagp_accel::{AcceleratorConfig, AdaGpDesign, Dataflow};
use adagp_nn::models::shapes::LayerShape;
use adagp_sim::{model_sim_layers, simulate_batch, Phase, SimConfig};
use adagp_tensor::Prng;

/// A random model: 1–12 conv/linear layers with channel counts and
/// spatial sizes spanning buffer-friendly through badly over-capacity
/// working sets.
fn random_shapes(rng: &mut Prng) -> Vec<LayerShape> {
    let n = 1 + (rng.next_u64() % 12) as usize;
    (0..n)
        .map(|i| {
            if rng.next_u64().is_multiple_of(4) {
                let in_f = 64 << (rng.next_u64() % 5); // 64..1024
                let out_f = 16 << (rng.next_u64() % 7); // 16..1024
                LayerShape::linear(format!("fc{i}"), in_f as usize, out_f as usize)
            } else {
                let in_ch = 1 + (rng.next_u64() % 512) as usize;
                let out_ch = 1 + (rng.next_u64() % 512) as usize;
                let spatial = 4 + (rng.next_u64() % 56) as usize;
                LayerShape::conv(format!("conv{i}"), in_ch, out_ch, 3, spatial)
            }
        })
        .collect()
}

fn phases() -> Vec<(Phase, Option<AdaGpDesign>)> {
    let mut cases = vec![(Phase::Baseline, None)];
    for d in AdaGpDesign::all() {
        cases.push((Phase::Bp, Some(d)));
        cases.push((Phase::Gp, Some(d)));
    }
    cases
}

fn analytic_batch(phase: Phase, design: Option<AdaGpDesign>, costs: &[LayerCost]) -> u64 {
    match (phase, design) {
        (Phase::Baseline, _) => baseline_batch_cycles(costs),
        (Phase::Bp, Some(d)) => bp_batch_cycles(d, costs),
        (Phase::Gp, Some(d)) => gp_batch_cycles(d, costs),
        _ => unreachable!(),
    }
}

const DATAFLOWS: [Dataflow; 4] = [
    Dataflow::WeightStationary,
    Dataflow::OutputStationary,
    Dataflow::InputStationary,
    Dataflow::RowStationary,
];

#[test]
fn makespan_is_monotone_in_bandwidth_and_buffer_and_bounded_by_analytic() {
    let acfg = AcceleratorConfig::default();
    let pred = PredictorCostModel::default();
    let mut rng = Prng::seed_from_u64(0x0C0F_FEE5);
    let cases = phases();
    // Ladders descend in capacity/bandwidth, so monotone non-increasing
    // makespan in the resource reads as non-decreasing along the ladder.
    let bandwidths = [1024u64, 256, 64, 16, 4];
    let buffers = [1u64 << 22, 1 << 17, 1 << 13];

    for case in 0..200 {
        let shapes = random_shapes(&mut rng);
        let df = DATAFLOWS[(rng.next_u64() % 4) as usize];
        let batch = 1 + (rng.next_u64() % 32) as usize;
        let (phase, design) = cases[case % cases.len()];
        let base = SimConfig {
            batch,
            ..SimConfig::no_contention()
        };
        let costs = model_costs(&acfg, df, &pred, &shapes, batch);
        let bound = analytic_batch(phase, design, &costs);

        // Contention off: exact equality, whatever the shapes.
        let free_layers = model_sim_layers(&acfg, df, &pred, &shapes, &base);
        let free = simulate_batch(phase, design, &free_layers, &base).makespan();
        assert_eq!(free, bound, "case {case}: {phase:?} {design:?} {df:?}");

        // Buffer ladder at fixed bandwidth: a bigger buffer never loses.
        for &bw in &[16u64, 256] {
            let mut prev = 0u64;
            for &buf in &buffers {
                let cfg = base.with_bandwidth(bw).with_buffer_words(Some(buf));
                let layers = model_sim_layers(&acfg, df, &pred, &shapes, &cfg);
                let span = simulate_batch(phase, design, &layers, &cfg).makespan();
                assert!(
                    span >= prev,
                    "case {case}: shrinking the buffer to {buf} words sped \
                     things up ({prev} -> {span} at bw {bw})"
                );
                assert!(span >= bound, "case {case}: {span} < analytic {bound}");
                prev = span;
            }
        }

        // Bandwidth ladder at fixed buffer: more bandwidth, never slower.
        for &buf in &[None, Some(1u64 << 15)] {
            let layers = model_sim_layers(&acfg, df, &pred, &shapes, &base.with_buffer_words(buf));
            let mut prev = 0u64;
            for &bw in &bandwidths {
                let cfg = base.with_bandwidth(bw).with_buffer_words(buf);
                let span = simulate_batch(phase, design, &layers, &cfg).makespan();
                assert!(
                    span >= prev,
                    "case {case}: lowering bandwidth to {bw} w/c sped the \
                     sim up ({prev} -> {span}, buffer {buf:?})"
                );
                assert!(span >= bound, "case {case}: {span} < analytic {bound}");
                prev = span;
            }
        }
    }
}

#[test]
fn port_counts_never_slow_the_simulation_down() {
    let acfg = AcceleratorConfig::default();
    let pred = PredictorCostModel::default();
    let mut rng = Prng::seed_from_u64(0x9047);
    for case in 0..40 {
        let shapes = random_shapes(&mut rng);
        let cfg = SimConfig {
            dram_words_per_cycle: Some(16),
            buffer_words: Some(1 << 14),
            ..SimConfig::default()
        };
        let layers = model_sim_layers(&acfg, Dataflow::WeightStationary, &pred, &shapes, &cfg);
        let (phase, design) = phases()[case % phases().len()];
        let single = simulate_batch(phase, design, &layers, &cfg).makespan();
        let multi = simulate_batch(
            phase,
            design,
            &layers,
            &SimConfig {
                dram_ports: 2,
                ..cfg
            },
        )
        .makespan();
        assert!(
            multi <= single,
            "case {case}: a second DRAM port slowed {phase:?} {design:?} \
             down ({single} -> {multi})"
        );
    }
}
