//! The [`Module`] trait: explicit forward/backward layers with parameter and
//! prediction-site visitors.
//!
//! ADA-GP needs two non-standard hooks from its training substrate:
//!
//! 1. Access to the **output activations** of every parameterized layer
//!    during the forward pass (the predictor's input, Figure 1b of the
//!    paper), and
//! 2. The ability to read/write each layer's **weight gradient** directly
//!    (true gradients train the predictor in Phase BP; predicted gradients
//!    replace backprop in Phase GP).
//!
//! Both are provided by [`PredictionSite`], which parameterized layers
//! implement and containers expose via [`Module::visit_sites`].

use crate::param::Param;
use adagp_tensor::Tensor;

/// Context threaded through a forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardCtx {
    /// `true` during training (batch-norm batch statistics, dropout active).
    pub train: bool,
    /// When `true`, parameterized layers cache their output activation so
    /// that [`PredictionSite::take_activation`] can hand it to the ADA-GP
    /// predictor after the pass.
    pub record_activations: bool,
}

impl ForwardCtx {
    /// Training-mode context without activation recording.
    pub fn train() -> Self {
        ForwardCtx {
            train: true,
            record_activations: false,
        }
    }

    /// Training-mode context that records activations at prediction sites.
    pub fn train_recording() -> Self {
        ForwardCtx {
            train: true,
            record_activations: true,
        }
    }

    /// Inference-mode context.
    pub fn eval() -> Self {
        ForwardCtx {
            train: false,
            record_activations: false,
        }
    }
}

/// What kind of parameterized layer a prediction site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A 2-D convolution; weight shape `(out_ch, in_ch, kh, kw)`.
    Conv2d,
    /// A fully connected layer; weight shape `(out_features, in_features)`.
    Linear,
}

/// Static metadata describing a prediction site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteMeta {
    /// Layer kind.
    pub kind: SiteKind,
    /// Weight tensor shape.
    pub weight_shape: Vec<usize>,
    /// Human-readable layer label (e.g. `"conv3_1"`).
    pub label: String,
}

impl SiteMeta {
    /// Number of gradients the predictor must produce for this site.
    pub fn grad_count(&self) -> usize {
        self.weight_shape.iter().product()
    }

    /// For conv sites: `in_ch * kh * kw`, the per-output-channel gradient
    /// row predicted after tensor reorganization (§3.6). For linear sites:
    /// `in_features`.
    pub fn grads_per_out_channel(&self) -> usize {
        match self.kind {
            SiteKind::Conv2d => self.weight_shape[1] * self.weight_shape[2] * self.weight_shape[3],
            SiteKind::Linear => self.weight_shape[1],
        }
    }

    /// Output channels (conv) or output features (linear).
    pub fn out_channels(&self) -> usize {
        self.weight_shape[0]
    }
}

/// A parameterized layer that ADA-GP can predict gradients for.
///
/// Implemented by [`crate::layers::Conv2d`] and [`crate::layers::Linear`].
pub trait PredictionSite {
    /// Site metadata (kind, weight shape, label).
    fn meta(&self) -> SiteMeta;
    /// The weight parameter (gradient holds the true gradient after a
    /// backward pass; ADA-GP writes predicted gradients here in Phase GP).
    fn weight_param(&mut self) -> &mut Param;
    /// The output activation cached by the last recording forward pass, if
    /// any. Does not consume the cache.
    fn activation(&self) -> Option<&Tensor>;
    /// Removes and returns the cached activation.
    fn take_activation(&mut self) -> Option<Tensor>;
}

/// A neural-network layer (or container of layers) with explicit
/// backpropagation.
///
/// `forward` must be called before `backward`; layers cache whatever they
/// need in between. Gradients accumulate into [`Param::grad`] — callers
/// zero them via an optimizer or [`zero_grads`].
pub trait Module {
    /// Forward pass. May cache inputs/activations for the backward pass.
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor;

    /// Backward pass: consumes the upstream gradient, accumulates parameter
    /// gradients, and returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visits every trainable parameter in a deterministic order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every prediction site in forward order. Default: none.
    fn visit_sites(&mut self, _f: &mut dyn FnMut(&mut dyn PredictionSite)) {}
}

/// Total scalar parameter count of a module.
pub fn count_params(m: &mut dyn Module) -> usize {
    let mut n = 0;
    m.visit_params(&mut |p| n += p.len());
    n
}

/// Zeroes every parameter gradient in the module.
pub fn zero_grads(m: &mut dyn Module) {
    m.visit_params(&mut |p| p.zero_grad());
}

/// Number of prediction sites in the module.
pub fn count_sites(m: &mut dyn Module) -> usize {
    let mut n = 0;
    m.visit_sites(&mut |_| n += 1);
    n
}

/// Collects the site metadata of a module in forward order.
pub fn site_metas(m: &mut dyn Module) -> Vec<SiteMeta> {
    let mut v = Vec::new();
    m.visit_sites(&mut |s| v.push(s.meta()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_constructors() {
        assert!(ForwardCtx::train().train);
        assert!(!ForwardCtx::train().record_activations);
        assert!(ForwardCtx::train_recording().record_activations);
        assert!(!ForwardCtx::eval().train);
    }

    #[test]
    fn site_meta_grad_counts() {
        let conv = SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![256, 128, 3, 3],
            label: "conv4".into(),
        };
        assert_eq!(conv.grad_count(), 256 * 128 * 9);
        assert_eq!(conv.grads_per_out_channel(), 128 * 9);
        assert_eq!(conv.out_channels(), 256);

        let lin = SiteMeta {
            kind: SiteKind::Linear,
            weight_shape: vec![10, 512],
            label: "fc".into(),
        };
        assert_eq!(lin.grad_count(), 5120);
        assert_eq!(lin.grads_per_out_channel(), 512);
        assert_eq!(lin.out_channels(), 10);
    }
}
