//! # adagp-nn
//!
//! Neural-network building blocks for the ADA-GP reproduction (MICRO 2023):
//! a [`Module`] trait with explicit forward/backward, the layer set used by
//! the paper's fifteen evaluated models, containers for residual / densely
//! connected / branched topologies, optimizers and learning-rate schedulers
//! matching the paper's training setup (§5.2), synthetic datasets standing
//! in for CIFAR/ImageNet/Multi30k/PascalVOC, and evaluation metrics
//! (top-1 accuracy, BLEU, mAP).
//!
//! The crate deliberately exposes **prediction sites** ([`PredictionSite`]):
//! every parameterized layer can cache its output activation during the
//! forward pass and hand out its weight gradient, which is exactly the
//! interface ADA-GP's predictor model needs (`adagp-core`).
//!
//! ## Example
//!
//! ```
//! use adagp_nn::{layers::Linear, module::{Module, ForwardCtx}};
//! use adagp_tensor::{Prng, Tensor};
//!
//! let mut rng = Prng::seed_from_u64(0);
//! let mut layer = Linear::new(4, 2, true, &mut rng);
//! let x = Tensor::ones(&[3, 4]);
//! let y = layer.forward(&x, &mut ForwardCtx::train());
//! assert_eq!(y.shape(), &[3, 2]);
//! ```

pub mod checkpoint;
pub mod containers;
pub mod data;
pub mod layers;
pub mod metrics;
pub mod models;
pub mod module;
pub mod optim;
pub mod param;
pub mod sched;

pub use module::{ForwardCtx, Module, PredictionSite, SiteKind, SiteMeta};
pub use param::Param;
