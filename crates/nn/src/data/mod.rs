//! Synthetic datasets standing in for the paper's datasets.
//!
//! The reproduction cannot ship CIFAR10/CIFAR100/ImageNet/Multi30k/PascalVOC
//! (large, licensed, network-gated). Each stand-in generates a *learnable*
//! task deterministically from a seed, matching the original's input shape
//! and label cardinality, so that the BP-vs-ADA-GP accuracy comparisons
//! (Tables 1–3) exercise the identical code paths. See DESIGN.md §3.

mod classification;
mod detection;
mod translation;

pub use classification::{DatasetSpec, VisionDataset};
pub use detection::{BoxLabel, DetectionDataset};
pub use translation::{TranslationDataset, BOS, EOS, PAD};
