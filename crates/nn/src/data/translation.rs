//! Synthetic token-level translation dataset (Multi30k stand-in) for the
//! Transformer experiment (Table 2).
//!
//! The "translation" is a deterministic vocabulary permutation combined
//! with a local reordering rule (adjacent token pairs swap when the first
//! token id is even). A seq2seq model must therefore learn both a token
//! mapping and a position-dependent rule — enough structure for BLEU to be
//! a meaningful metric while remaining CPU-trainable.

use adagp_tensor::Prng;

/// Padding token id.
pub const PAD: usize = 0;
/// Beginning-of-sequence token id.
pub const BOS: usize = 1;
/// End-of-sequence token id.
pub const EOS: usize = 2;

/// Deterministic synthetic translation dataset.
#[derive(Debug, Clone)]
pub struct TranslationDataset {
    vocab: usize,
    sentence_len: usize,
    train_len: usize,
    test_len: usize,
    seed: u64,
    permutation: Vec<usize>,
}

impl TranslationDataset {
    /// Creates a dataset over `vocab` tokens (ids `3..vocab` are content
    /// tokens; 0–2 are reserved) with fixed content length `sentence_len`.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 8` or `sentence_len == 0`.
    pub fn new(
        vocab: usize,
        sentence_len: usize,
        train_len: usize,
        test_len: usize,
        seed: u64,
    ) -> Self {
        assert!(vocab >= 8, "vocabulary too small");
        assert!(sentence_len > 0, "sentence length must be positive");
        // Build the target-language permutation of content tokens.
        let mut rng = Prng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        let mut content: Vec<usize> = (3..vocab).collect();
        rng.shuffle(&mut content);
        let mut permutation = vec![0; vocab];
        permutation[PAD] = PAD;
        permutation[BOS] = BOS;
        permutation[EOS] = EOS;
        for (i, &p) in content.iter().enumerate() {
            permutation[i + 3] = p;
        }
        TranslationDataset {
            vocab,
            sentence_len,
            train_len,
            test_len,
            seed,
            permutation,
        }
    }

    /// Multi30k-like default: vocab 64, length 8, 512 train / 128 test pairs.
    pub fn multi30k_like(seed: u64) -> Self {
        Self::new(64, 8, 512, 128, seed)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Content sentence length (excluding BOS/EOS framing).
    pub fn sentence_len(&self) -> usize {
        self.sentence_len
    }

    /// Number of training pairs.
    pub fn train_len(&self) -> usize {
        self.train_len
    }

    /// Number of test pairs.
    pub fn test_len(&self) -> usize {
        self.test_len
    }

    /// Translates a source sentence into the target language (ground
    /// truth): permute token ids, then swap adjacent pairs whose first
    /// token id is even.
    pub fn translate(&self, src: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = src.iter().map(|&t| self.permutation[t]).collect();
        let mut i = 0;
        while i + 1 < out.len() {
            if src[i].is_multiple_of(2) {
                out.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
        out
    }

    fn source_sentence(&self, split: u64, index: usize) -> Vec<usize> {
        let mut rng = Prng::seed_from_u64(
            self.seed ^ split.wrapping_mul(0xA5A5_5A5A) ^ (index as u64).wrapping_mul(0xC2B2_AE35),
        );
        (0..self.sentence_len)
            .map(|_| 3 + rng.below(self.vocab - 3))
            .collect()
    }

    /// Training pair `index`: `(source, target)` content token sequences.
    pub fn train_pair(&self, index: usize) -> (Vec<usize>, Vec<usize>) {
        let src = self.source_sentence(0, index % self.train_len.max(1));
        let tgt = self.translate(&src);
        (src, tgt)
    }

    /// Test pair `index`.
    pub fn test_pair(&self, index: usize) -> (Vec<usize>, Vec<usize>) {
        let src = self.source_sentence(1, index % self.test_len.max(1));
        let tgt = self.translate(&src);
        (src, tgt)
    }

    /// A batch of training pairs as `(sources, targets)` row-major id
    /// matrices of width `sentence_len`.
    pub fn train_batch(
        &self,
        batch_idx: usize,
        batch_size: usize,
    ) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let mut srcs = Vec::with_capacity(batch_size);
        let mut tgts = Vec::with_capacity(batch_size);
        for i in 0..batch_size {
            let (s, t) = self.train_pair(batch_idx * batch_size + i);
            srcs.push(s);
            tgts.push(t);
        }
        (srcs, tgts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijective_on_content() {
        let ds = TranslationDataset::new(32, 6, 10, 10, 1);
        let mut seen = [false; 32];
        for t in 3..32 {
            let p = ds.permutation[t];
            assert!(p >= 3, "content maps to content");
            assert!(!seen[p], "duplicate image {p}");
            seen[p] = true;
        }
    }

    #[test]
    fn translation_is_deterministic() {
        let ds = TranslationDataset::new(32, 6, 10, 10, 2);
        let (s1, t1) = ds.train_pair(4);
        let (s2, t2) = ds.train_pair(4);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
        assert_eq!(ds.translate(&s1), t1);
    }

    #[test]
    fn swap_rule_applied() {
        let ds = TranslationDataset::new(32, 4, 10, 10, 3);
        // Source with an even first token: pair must swap.
        let src = vec![4, 5, 7, 9];
        let tgt = ds.translate(&src);
        assert_eq!(tgt[0], ds.permutation[5]);
        assert_eq!(tgt[1], ds.permutation[4]);
        // Odd first token: no swap.
        assert_eq!(tgt[2], ds.permutation[7]);
        assert_eq!(tgt[3], ds.permutation[9]);
    }

    #[test]
    fn batches_have_requested_size() {
        let ds = TranslationDataset::multi30k_like(4);
        let (s, t) = ds.train_batch(0, 16);
        assert_eq!(s.len(), 16);
        assert_eq!(t.len(), 16);
        assert!(s.iter().all(|row| row.len() == ds.sentence_len()));
    }

    #[test]
    fn tokens_avoid_reserved_ids() {
        let ds = TranslationDataset::multi30k_like(5);
        let (s, t) = ds.train_pair(0);
        assert!(s.iter().all(|&x| x >= 3));
        assert!(t.iter().all(|&x| x >= 3));
    }
}
