//! Synthetic image-classification datasets (CIFAR10/CIFAR100/ImageNet
//! stand-ins).
//!
//! Each class owns a Gaussian prototype image plus a class-specific spatial
//! frequency pattern; a sample is `prototype + pattern + noise`. The task
//! is linearly non-trivial but learnable, so both the BP baseline and
//! ADA-GP converge within CPU-scale epochs and their *relative* accuracy —
//! the quantity Table 1 reports — is meaningful.

use adagp_tensor::{Prng, Tensor};

/// Shape/cardinality spec of a synthetic vision dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height = width.
    pub size: usize,
    /// Training samples per epoch.
    pub train_len: usize,
    /// Test samples.
    pub test_len: usize,
}

impl DatasetSpec {
    /// CIFAR10 stand-in: 10 classes, 3×16×16 (reduced from 32² for CPU).
    pub fn cifar10() -> Self {
        DatasetSpec {
            classes: 10,
            channels: 3,
            size: 16,
            train_len: 512,
            test_len: 256,
        }
    }

    /// CIFAR100 stand-in: 100 classes, 3×16×16.
    pub fn cifar100() -> Self {
        DatasetSpec {
            classes: 100,
            channels: 3,
            size: 16,
            train_len: 1024,
            test_len: 512,
        }
    }

    /// ImageNet stand-in: 1000 classes at reduced 3×24×24 resolution.
    pub fn imagenet() -> Self {
        DatasetSpec {
            classes: 1000,
            channels: 3,
            size: 24,
            train_len: 2048,
            test_len: 1024,
        }
    }

    /// A tiny spec for unit tests.
    pub fn tiny(classes: usize, size: usize) -> Self {
        DatasetSpec {
            classes,
            channels: 3,
            size,
            train_len: 128,
            test_len: 64,
        }
    }
}

/// A deterministic synthetic vision dataset.
///
/// Samples are generated on demand from `(seed, split, index)`, so the
/// dataset needs only `classes * channels * size²` floats of resident
/// memory for the prototypes.
///
/// ```
/// use adagp_nn::data::{DatasetSpec, VisionDataset};
/// let ds = VisionDataset::new(DatasetSpec::tiny(4, 8), 42);
/// let (x, y) = ds.train_batch(0, 8);
/// assert_eq!(x.shape(), &[8, 3, 8, 8]);
/// assert_eq!(y.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct VisionDataset {
    spec: DatasetSpec,
    seed: u64,
    prototypes: Vec<Tensor>,
    noise_std: f32,
}

impl VisionDataset {
    /// Builds the dataset: prototypes are drawn once from `seed`.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        let mut rng = Prng::seed_from_u64(seed);
        let plen = spec.channels * spec.size * spec.size;
        let mut prototypes = Vec::with_capacity(spec.classes);
        for class in 0..spec.classes {
            let mut data = vec![0.0f32; plen];
            // Gaussian prototype…
            for v in &mut data {
                *v = rng.normal(0.0, 1.0);
            }
            // …plus a class-specific low-frequency pattern so that classes
            // are separable even under heavy noise.
            let fx = 1 + class % 4;
            let fy = 1 + (class / 4) % 4;
            let phase = class as f32 * 0.7;
            for c in 0..spec.channels {
                for y in 0..spec.size {
                    for x in 0..spec.size {
                        let s = ((fx * x) as f32 / spec.size as f32 * std::f32::consts::TAU
                            + phase)
                            .sin()
                            * ((fy * y) as f32 / spec.size as f32 * std::f32::consts::TAU).cos();
                        data[(c * spec.size + y) * spec.size + x] += 1.5 * s;
                    }
                }
            }
            prototypes.push(Tensor::from_vec(
                data,
                &[spec.channels, spec.size, spec.size],
            ));
        }
        VisionDataset {
            spec,
            seed,
            prototypes,
            noise_std: 0.8,
        }
    }

    /// Dataset spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Overrides the per-sample noise level (default 0.8).
    pub fn with_noise(mut self, std: f32) -> Self {
        self.noise_std = std;
        self
    }

    /// Number of training batches for a batch size.
    pub fn train_batches(&self, batch_size: usize) -> usize {
        self.spec.train_len / batch_size
    }

    fn sample(&self, split: u64, index: usize) -> (Vec<f32>, usize) {
        let class = index % self.spec.classes;
        let mut rng = Prng::seed_from_u64(
            self.seed
                ^ (split.wrapping_mul(0x9E37_79B9))
                ^ (index as u64).wrapping_mul(0x85EB_CA6B),
        );
        let proto = &self.prototypes[class];
        let data: Vec<f32> = proto
            .data()
            .iter()
            .map(|&p| p + rng.normal(0.0, self.noise_std))
            .collect();
        (data, class)
    }

    /// Generates training batch `batch_idx` of the given size.
    ///
    /// Returns `(images (B, C, H, W), labels)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn train_batch(&self, batch_idx: usize, batch_size: usize) -> (Tensor, Vec<usize>) {
        self.batch(0, batch_idx, batch_size, self.spec.train_len)
    }

    /// Generates test batch `batch_idx` of the given size.
    pub fn test_batch(&self, batch_idx: usize, batch_size: usize) -> (Tensor, Vec<usize>) {
        self.batch(1, batch_idx, batch_size, self.spec.test_len)
    }

    fn batch(
        &self,
        split: u64,
        batch_idx: usize,
        batch_size: usize,
        split_len: usize,
    ) -> (Tensor, Vec<usize>) {
        assert!(batch_size > 0, "batch_size must be positive");
        let plen = self.spec.channels * self.spec.size * self.spec.size;
        let mut data = Vec::with_capacity(batch_size * plen);
        let mut labels = Vec::with_capacity(batch_size);
        for i in 0..batch_size {
            let index = (batch_idx * batch_size + i) % split_len.max(1);
            let (sample, class) = self.sample(split, index);
            data.extend_from_slice(&sample);
            labels.push(class);
        }
        (
            Tensor::from_vec(
                data,
                &[
                    batch_size,
                    self.spec.channels,
                    self.spec.size,
                    self.spec.size,
                ],
            ),
            labels,
        )
    }

    /// Generates training batch `batch_idx` with samples produced in
    /// parallel on the shared [`adagp_runtime`] pool (sized by
    /// `ADAGP_THREADS`). Because every sample is a pure function of
    /// `(seed, split, index)` and each sample owns its output slice, the
    /// result is bit-identical to [`VisionDataset::train_batch`] for every
    /// pool size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn train_batch_parallel(
        &self,
        batch_idx: usize,
        batch_size: usize,
    ) -> (Tensor, Vec<usize>) {
        assert!(batch_size > 0, "batch_size must be positive");
        let plen = self.spec.channels * self.spec.size * self.spec.size;
        let split_len = self.spec.train_len.max(1);
        let mut data = vec![0.0f32; batch_size * plen];
        let mut labels = vec![0usize; batch_size];
        let chunk = adagp_runtime::det_chunk_len(batch_size);
        adagp_runtime::pool().parallel_chunks_pair(
            &mut data,
            &mut labels,
            chunk * plen,
            chunk,
            |ci, chunk_data, chunk_labels| {
                for (j, (sample_out, label_out)) in chunk_data
                    .chunks_mut(plen)
                    .zip(chunk_labels.iter_mut())
                    .enumerate()
                {
                    let i = ci * chunk + j;
                    let index = (batch_idx * batch_size + i) % split_len;
                    let (sample, class) = self.sample(0, index);
                    sample_out.copy_from_slice(&sample);
                    *label_out = class;
                }
            },
        );
        (
            Tensor::from_vec(
                data,
                &[
                    batch_size,
                    self.spec.channels,
                    self.spec.size,
                    self.spec.size,
                ],
            ),
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_shapes_and_labels() {
        let ds = VisionDataset::new(DatasetSpec::tiny(5, 8), 1);
        let (x, y) = ds.train_batch(0, 10);
        assert_eq!(x.shape(), &[10, 3, 8, 8]);
        assert_eq!(y.len(), 10);
        assert!(y.iter().all(|&c| c < 5));
    }

    #[test]
    fn deterministic_batches() {
        let a = VisionDataset::new(DatasetSpec::tiny(3, 8), 7);
        let b = VisionDataset::new(DatasetSpec::tiny(3, 8), 7);
        let (xa, ya) = a.train_batch(2, 4);
        let (xb, yb) = b.train_batch(2, 4);
        assert_eq!(xa, xb);
        assert_eq!(ya, yb);
    }

    #[test]
    fn train_and_test_splits_differ() {
        let ds = VisionDataset::new(DatasetSpec::tiny(3, 8), 7);
        let (xt, _) = ds.train_batch(0, 4);
        let (xe, _) = ds.test_batch(0, 4);
        assert_ne!(xt, xe);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let ds = VisionDataset::new(DatasetSpec::tiny(4, 8), 3);
        let (_, y) = ds.train_batch(0, 8);
        assert_eq!(y, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn standard_specs_match_cardinality() {
        assert_eq!(DatasetSpec::cifar10().classes, 10);
        assert_eq!(DatasetSpec::cifar100().classes, 100);
        assert_eq!(DatasetSpec::imagenet().classes, 1000);
    }

    #[test]
    fn parallel_batch_matches_serial() {
        let ds = VisionDataset::new(DatasetSpec::tiny(5, 8), 21);
        let (xs, ys) = ds.train_batch(3, 17);
        for threads in [1, 2, 4, 7] {
            let (xp, yp) = adagp_runtime::with_threads(threads, || ds.train_batch_parallel(3, 17));
            assert_eq!(xs, xp, "threads={threads}");
            assert_eq!(ys, yp, "threads={threads}");
        }
    }

    #[test]
    fn same_class_samples_correlate() {
        // Two samples of class 0 should be closer than samples of different
        // classes (prototype signal dominates the noise on average).
        let ds = VisionDataset::new(DatasetSpec::tiny(2, 12), 11);
        let (x, y) = ds.train_batch(0, 4);
        assert_eq!(&y[..2], &[0, 1]);
        let s0a = x.index0(0);
        let s1 = x.index0(1);
        let s0b = x.index0(2);
        let d_same = s0a.sub(&s0b).norm();
        let d_diff = s0a.sub(&s1).norm();
        assert!(
            d_same < d_diff,
            "same-class distance {d_same} should be < cross-class {d_diff}"
        );
    }
}
