//! Synthetic object-detection dataset (PascalVOC stand-in) for the YOLO
//! experiment (Table 3).
//!
//! Each image contains exactly one axis-aligned rectangular object drawn
//! over background noise. The object's class is encoded by its per-channel
//! intensity signature; its position and size vary per sample. A detector
//! must regress the box and classify the signature — the same loss/metric
//! pipeline (IoU matching, mAP) as real VOC evaluation.

use adagp_tensor::{Prng, Tensor};

/// Ground-truth box: normalized center/size plus class id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxLabel {
    /// Class index.
    pub class: usize,
    /// Normalized box center x in `[0, 1]`.
    pub cx: f32,
    /// Normalized box center y in `[0, 1]`.
    pub cy: f32,
    /// Normalized width in `(0, 1]`.
    pub w: f32,
    /// Normalized height in `(0, 1]`.
    pub h: f32,
}

impl BoxLabel {
    /// Intersection-over-union with another box (both normalized).
    pub fn iou(&self, other: &BoxLabel) -> f32 {
        let (ax0, ay0, ax1, ay1) = self.corners();
        let (bx0, by0, bx1, by1) = other.corners();
        let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
        let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
        let inter = ix * iy;
        let union = self.w * self.h + other.w * other.h - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    fn corners(&self) -> (f32, f32, f32, f32) {
        (
            self.cx - self.w / 2.0,
            self.cy - self.h / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.h / 2.0,
        )
    }
}

/// Deterministic synthetic detection dataset.
#[derive(Debug, Clone)]
pub struct DetectionDataset {
    classes: usize,
    size: usize,
    train_len: usize,
    test_len: usize,
    seed: u64,
}

impl DetectionDataset {
    /// Creates a detection dataset with square images of `size` pixels.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `size < 8`.
    pub fn new(classes: usize, size: usize, train_len: usize, test_len: usize, seed: u64) -> Self {
        assert!(classes > 0, "need at least one class");
        assert!(size >= 8, "images must be at least 8x8");
        DetectionDataset {
            classes,
            size,
            train_len,
            test_len,
            seed,
        }
    }

    /// PascalVOC-like default: 20 classes, 3×32×32 images.
    pub fn voc_like(seed: u64) -> Self {
        Self::new(20, 32, 256, 128, seed)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of training images.
    pub fn train_len(&self) -> usize {
        self.train_len
    }

    /// Number of test images.
    pub fn test_len(&self) -> usize {
        self.test_len
    }

    fn sample(&self, split: u64, index: usize) -> (Vec<f32>, BoxLabel) {
        let mut rng = Prng::seed_from_u64(
            self.seed ^ split.wrapping_mul(0x1234_5678) ^ (index as u64).wrapping_mul(0x9E37_79B9),
        );
        let class = index % self.classes;
        let s = self.size;
        let mut img = vec![0.0f32; 3 * s * s];
        for v in &mut img {
            *v = rng.normal(0.0, 0.3);
        }
        // Box geometry: at least 1/4 of the image, fully inside.
        let bw = (s / 4 + rng.below(s / 4)).max(2);
        let bh = (s / 4 + rng.below(s / 4)).max(2);
        let x0 = rng.below(s - bw + 1);
        let y0 = rng.below(s - bh + 1);
        // Per-channel class signature in [0.5, 2.0].
        let sig = [
            0.5 + 1.5 * ((class % 5) as f32 / 4.0),
            0.5 + 1.5 * (((class / 5) % 4) as f32 / 3.0),
            0.5 + 1.5 * ((class % 3) as f32 / 2.0),
        ];
        for (c, &amp) in sig.iter().enumerate() {
            for y in y0..y0 + bh {
                for x in x0..x0 + bw {
                    img[(c * s + y) * s + x] += amp;
                }
            }
        }
        let label = BoxLabel {
            class,
            cx: (x0 as f32 + bw as f32 / 2.0) / s as f32,
            cy: (y0 as f32 + bh as f32 / 2.0) / s as f32,
            w: bw as f32 / s as f32,
            h: bh as f32 / s as f32,
        };
        (img, label)
    }

    /// Training batch `batch_idx` as `(images (B, 3, S, S), labels)`.
    pub fn train_batch(&self, batch_idx: usize, batch_size: usize) -> (Tensor, Vec<BoxLabel>) {
        self.batch(0, batch_idx, batch_size, self.train_len)
    }

    /// Test batch `batch_idx`.
    pub fn test_batch(&self, batch_idx: usize, batch_size: usize) -> (Tensor, Vec<BoxLabel>) {
        self.batch(1, batch_idx, batch_size, self.test_len)
    }

    fn batch(
        &self,
        split: u64,
        batch_idx: usize,
        batch_size: usize,
        split_len: usize,
    ) -> (Tensor, Vec<BoxLabel>) {
        assert!(batch_size > 0, "batch_size must be positive");
        let plen = 3 * self.size * self.size;
        let mut data = Vec::with_capacity(batch_size * plen);
        let mut labels = Vec::with_capacity(batch_size);
        for i in 0..batch_size {
            let index = (batch_idx * batch_size + i) % split_len.max(1);
            let (img, label) = self.sample(split, index);
            data.extend_from_slice(&img);
            labels.push(label);
        }
        (
            Tensor::from_vec(data, &[batch_size, 3, self.size, self.size]),
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_identical_is_one() {
        let b = BoxLabel {
            class: 0,
            cx: 0.5,
            cy: 0.5,
            w: 0.4,
            h: 0.4,
        };
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BoxLabel {
            class: 0,
            cx: 0.2,
            cy: 0.2,
            w: 0.2,
            h: 0.2,
        };
        let b = BoxLabel {
            class: 0,
            cx: 0.8,
            cy: 0.8,
            w: 0.2,
            h: 0.2,
        };
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = BoxLabel {
            class: 0,
            cx: 0.25,
            cy: 0.5,
            w: 0.5,
            h: 1.0,
        };
        let b = BoxLabel {
            class: 0,
            cx: 0.5,
            cy: 0.5,
            w: 0.5,
            h: 1.0,
        };
        // Intersection 0.25, union 0.75.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn batches_deterministic_and_valid() {
        let ds = DetectionDataset::voc_like(1);
        let (xa, la) = ds.train_batch(0, 4);
        let (xb, lb) = ds.train_batch(0, 4);
        assert_eq!(xa, xb);
        assert_eq!(la, lb);
        assert_eq!(xa.shape(), &[4, 3, 32, 32]);
        for l in &la {
            assert!(l.class < 20);
            assert!(l.cx > 0.0 && l.cx < 1.0);
            assert!(l.w > 0.0 && l.w <= 1.0);
            // Box fully inside the image.
            assert!(l.cx - l.w / 2.0 >= -1e-6);
            assert!(l.cx + l.w / 2.0 <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn object_region_is_brighter() {
        let ds = DetectionDataset::new(4, 16, 16, 16, 2);
        let (x, labels) = ds.train_batch(0, 1);
        let l = labels[0];
        let s = 16;
        let x0 = ((l.cx - l.w / 2.0) * s as f32).round() as usize;
        let y0 = ((l.cy - l.h / 2.0) * s as f32).round() as usize;
        // Mean intensity inside the box exceeds the global mean.
        let mut inside = 0.0f32;
        let mut count = 0;
        for y in y0..(y0 + (l.h * s as f32) as usize).min(s) {
            for xx in x0..(x0 + (l.w * s as f32) as usize).min(s) {
                inside += x.at(&[0, 0, y, xx]);
                count += 1;
            }
        }
        assert!(inside / count as f32 > x.mean());
    }
}
