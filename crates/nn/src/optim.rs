//! Optimizers: SGD with momentum and Adam.
//!
//! The paper trains original models with SGD+Momentum (lr 0.001) and the
//! predictor model with Adam (lr 0.0001) — §5.2. Both optimizers keep
//! per-parameter state indexed by visit order, which is deterministic for a
//! fixed architecture.

use crate::module::Module;
use adagp_tensor::Tensor;

/// Clips the global gradient norm of a model to `max_norm`, returning the
/// pre-clip norm. Standard stabilization for the transformer/YOLO training
/// loops.
///
/// # Panics
///
/// Panics if `max_norm <= 0`.
pub fn clip_grad_norm(model: &mut dyn Module, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f64;
    model.visit_params(&mut |p| {
        sq += p
            .grad
            .data()
            .iter()
            .map(|g| (*g as f64) * (*g as f64))
            .sum::<f64>();
    });
    let norm = (sq as f32).sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        model.visit_params(&mut |p| p.grad.scale_in_place(scale));
    }
    norm
}

/// Optimizer interface: one `step` consumes the accumulated gradients and
/// zeroes them.
pub trait Optimizer {
    /// Applies one update step to every parameter of `model` and clears the
    /// gradients.
    fn step(&mut self, model: &mut dyn Module);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Sets the learning rate (used by schedulers).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and optional weight
/// decay.
///
/// `v = mu * v + g + wd * w;  w -= lr * v`
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Module) {
        let mut idx = 0;
        let lr = self.lr;
        let mu = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            debug_assert_eq!(v.shape(), p.value.shape(), "optimizer state shape drift");
            for ((vv, &g), &w) in v
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(p.value.data().iter())
            {
                *vv = mu * *vv + g + wd * w;
            }
            p.value.axpy(-lr, v);
            p.zero_grad();
            idx += 1;
        });
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Module) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let mut idx = 0;
        let (ms, vs) = (&mut self.m, &mut self.v);
        model.visit_params(&mut |p| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for (((mv, vv), &g), w) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.grad.data().iter())
                .zip(p.value.data_mut().iter_mut())
            {
                *mv = b1 * *mv + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            p.zero_grad();
            idx += 1;
        });
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::module::ForwardCtx;
    use adagp_tensor::{softmax::mse_loss, Prng};

    /// Trains y = 2x with a 1x1 linear layer; both optimizers must converge.
    fn converges(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut rng = Prng::seed_from_u64(0);
        let mut model = Linear::new(1, 1, true, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1]);
        let target = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[4, 1]);
        let mut last = f32::INFINITY;
        for _ in 0..iters {
            let y = model.forward(&x, &mut ForwardCtx::train());
            let (loss, dy) = mse_loss(&y, &target);
            model.backward(&dy);
            opt.step(&mut model);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut opt = Sgd::new(0.05, 0.9);
        assert!(converges(&mut opt, 500) < 1e-3);
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        // Adam's effective step stays near lr when gradients are steady, so
        // it needs more iterations than SGD to settle on this problem.
        let mut opt = Adam::new(0.05);
        assert!(converges(&mut opt, 2000) < 1e-3);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = Prng::seed_from_u64(1);
        let mut model = Linear::new(2, 2, false, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let y = model.forward(&x, &mut ForwardCtx::train());
        model.backward(&Tensor::ones(y.shape()));
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut model);
        model.visit_params(&mut |p| assert_eq!(p.grad.norm(), 0.0));
    }

    #[test]
    fn set_lr_roundtrip() {
        let mut opt = Adam::new(0.001);
        assert_eq!(opt.lr(), 0.001);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }

    #[test]
    fn clip_grad_norm_caps_large_gradients() {
        let mut rng = Prng::seed_from_u64(3);
        let mut model = Linear::new(4, 4, false, &mut rng);
        model.visit_params(&mut |p| {
            p.grad = Tensor::full(p.value.shape(), 10.0);
        });
        let pre = clip_grad_norm(&mut model, 1.0);
        assert!(pre > 1.0);
        let mut post_sq = 0.0f32;
        model.visit_params(&mut |p| post_sq += p.grad.data().iter().map(|g| g * g).sum::<f32>());
        assert!((post_sq.sqrt() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let mut rng = Prng::seed_from_u64(4);
        let mut model = Linear::new(2, 2, false, &mut rng);
        model.visit_params(&mut |p| {
            p.grad = Tensor::full(p.value.shape(), 0.01);
        });
        clip_grad_norm(&mut model, 100.0);
        model.visit_params(&mut |p| {
            assert!(p.grad.data().iter().all(|&g| (g - 0.01).abs() < 1e-7));
        });
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Prng::seed_from_u64(2);
        let mut model = Linear::new(4, 4, false, &mut rng);
        let before = model.weight().value.norm();
        // No gradient signal: decay alone should shrink the weights.
        let mut opt = Sgd::new(0.1, 0.0).with_weight_decay(0.1);
        for _ in 0..10 {
            opt.step(&mut model);
        }
        assert!(model.weight().value.norm() < before);
    }
}
