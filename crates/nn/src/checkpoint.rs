//! Model checkpointing: serialize all parameters of a [`Module`] to a
//! compact binary blob and restore them later.
//!
//! The format is deliberately simple and versioned:
//! `magic "AGPC" | u32 version | u8 flags | u32 n_params | per-param
//! (u32 rank, u64 dims…, f32 data…)`, all little-endian. The flags byte
//! was added in version 2 (currently always `0`; reserved for future
//! dtype/compression extensions) — version-1 blobs, which lack it, still
//! load via the migration path in [`load`]. Parameter order is the
//! module's deterministic `visit_params` order, so a checkpoint is valid
//! for any architecturally identical model.
//!
//! [`save_to_path`] / [`load_from_path`] round-trip the blob through a
//! file; the on-disk bytes are exactly the in-memory format.

use crate::module::Module;
use adagp_tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;
use std::path::Path;

const MAGIC: &[u8; 4] = b"AGPC";
/// Current format version. Version 1 (no flags byte) is still readable.
const VERSION: u32 = 2;
/// The only flags value version 2 defines.
const FLAGS_NONE: u8 = 0;

/// Errors from checkpoint decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the checkpoint magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The flags byte requests an unsupported extension.
    BadFlags(u8),
    /// The blob ended prematurely.
    Truncated,
    /// The model's parameter list does not match the checkpoint.
    Mismatch {
        /// Which parameter (in visit order) disagreed.
        index: usize,
        /// Shape stored in the checkpoint.
        stored: Vec<usize>,
        /// Shape the model expected.
        expected: Vec<usize>,
    },
    /// The checkpoint has a different number of parameters than the model.
    CountMismatch {
        /// Parameters in the checkpoint.
        stored: usize,
        /// Parameters in the model.
        expected: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an ADA-GP checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadFlags(b) => write!(f, "unsupported checkpoint flags {b:#04x}"),
            CheckpointError::Truncated => write!(f, "checkpoint data ended prematurely"),
            CheckpointError::Mismatch {
                index,
                stored,
                expected,
            } => write!(
                f,
                "parameter {index} shape mismatch: checkpoint {stored:?} vs model {expected:?}"
            ),
            CheckpointError::CountMismatch { stored, expected } => write!(
                f,
                "parameter count mismatch: checkpoint {stored} vs model {expected}"
            ),
        }
    }
}

impl Error for CheckpointError {}

/// Serializes every parameter of `model` into a checkpoint blob (current
/// format version).
pub fn save(model: &mut dyn Module) -> Bytes {
    encode(model, VERSION)
}

/// Encodes at a specific format version — `VERSION` for [`save`]; version
/// 1 is kept encodable so the migration test can fabricate legacy blobs.
fn encode(model: &mut dyn Module, version: u32) -> Bytes {
    debug_assert!((1..=VERSION).contains(&version));
    let mut params: Vec<Tensor> = Vec::new();
    model.visit_params(&mut |p| params.push(p.value.clone()));
    let mut buf = BytesMut::with_capacity(
        17 + params
            .iter()
            .map(|t| 4 + t.ndim() * 8 + t.len() * 4)
            .sum::<usize>(),
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(version);
    if version >= 2 {
        buf.put_u8(FLAGS_NONE);
    }
    buf.put_u32_le(params.len() as u32);
    for t in &params {
        buf.put_u32_le(t.ndim() as u32);
        for &d in t.shape() {
            buf.put_u64_le(d as u64);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Restores every parameter of `model` from a checkpoint blob.
///
/// # Errors
///
/// Returns [`CheckpointError`] if the blob is malformed or the model's
/// architecture (parameter shapes in visit order) does not match.
pub fn load(model: &mut dyn Module, mut blob: Bytes) -> Result<(), CheckpointError> {
    if blob.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    blob.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = blob.get_u32_le();
    if !(1..=VERSION).contains(&version) {
        return Err(CheckpointError::BadVersion(version));
    }
    // Version 2 added the flags byte; version-1 blobs go straight to the
    // parameter count (the migration path).
    if version >= 2 {
        if blob.remaining() < 1 {
            return Err(CheckpointError::Truncated);
        }
        let flags = blob.get_u8();
        if flags != FLAGS_NONE {
            return Err(CheckpointError::BadFlags(flags));
        }
    }
    if blob.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let n = blob.get_u32_le() as usize;

    // Decode all tensors first so a mismatch cannot leave the model half
    // restored.
    let mut tensors = Vec::with_capacity(n);
    for _ in 0..n {
        if blob.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let rank = blob.get_u32_le() as usize;
        if blob.remaining() < rank * 8 {
            return Err(CheckpointError::Truncated);
        }
        let shape: Vec<usize> = (0..rank).map(|_| blob.get_u64_le() as usize).collect();
        let len: usize = shape.iter().product();
        if blob.remaining() < len * 4 {
            return Err(CheckpointError::Truncated);
        }
        let data: Vec<f32> = (0..len).map(|_| blob.get_f32_le()).collect();
        tensors.push(Tensor::from_vec(data, &shape));
    }

    let mut expected = 0usize;
    model.visit_params(&mut |_| expected += 1);
    if expected != n {
        return Err(CheckpointError::CountMismatch {
            stored: n,
            expected,
        });
    }
    // Validate shapes before writing anything.
    let mut idx = 0usize;
    let mut mismatch: Option<CheckpointError> = None;
    model.visit_params(&mut |p| {
        if mismatch.is_none() && tensors[idx].shape() != p.value.shape() {
            mismatch = Some(CheckpointError::Mismatch {
                index: idx,
                stored: tensors[idx].shape().to_vec(),
                expected: p.value.shape().to_vec(),
            });
        }
        idx += 1;
    });
    if let Some(e) = mismatch {
        return Err(e);
    }
    let mut idx = 0usize;
    model.visit_params(&mut |p| {
        p.value = tensors[idx].clone();
        idx += 1;
    });
    Ok(())
}

/// Errors from the file-backed checkpoint surface: either the I/O failed
/// or the bytes on disk are not a loadable checkpoint.
#[derive(Debug)]
pub enum CheckpointIoError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file's contents failed to decode.
    Format(CheckpointError),
}

impl fmt::Display for CheckpointIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointIoError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointIoError::Format(e) => write!(f, "checkpoint format error: {e}"),
        }
    }
}

impl Error for CheckpointIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointIoError::Io(e) => Some(e),
            CheckpointIoError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CheckpointIoError {
    fn from(e: std::io::Error) -> Self {
        CheckpointIoError::Io(e)
    }
}

impl From<CheckpointError> for CheckpointIoError {
    fn from(e: CheckpointError) -> Self {
        CheckpointIoError::Format(e)
    }
}

/// Serializes `model` and writes the checkpoint to `path` (atomically via
/// a sibling temp file, so readers never observe a half-written blob).
///
/// # Errors
///
/// Returns an error if the file cannot be written.
pub fn save_to_path(model: &mut dyn Module, path: &Path) -> Result<(), CheckpointIoError> {
    let blob = save(model);
    // Unique temp name beside the target: appending (rather than replacing
    // an extension) plus the pid keeps concurrent saves to different
    // checkpoints in one directory from colliding on the temp file.
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, &blob)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a checkpoint from `path` and restores `model` from it.
///
/// Accepts every supported format version (currently 1 and 2); a failed
/// load leaves the model unmodified.
///
/// # Errors
///
/// Returns an error if the file cannot be read or its contents are not a
/// checkpoint matching the model's architecture.
pub fn load_from_path(model: &mut dyn Module, path: &Path) -> Result<(), CheckpointIoError> {
    let bytes = std::fs::read(path)?;
    load(model, Bytes::from(bytes))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::Sequential;
    use crate::layers::{Conv2d, Linear, Relu};
    use crate::module::ForwardCtx;
    use adagp_tensor::{init, Prng};

    fn model(seed: u64) -> Sequential {
        let mut rng = Prng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Conv2d::new(2, 4, 3, 1, 1, true, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(4, 3, true, &mut rng));
        m
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let mut a = model(1);
        let blob = save(&mut a);
        // A differently initialized model produces different outputs…
        let mut b = model(2);
        let x = init::gaussian(&[1, 2, 1, 2], 0.0, 1.0, &mut Prng::seed_from_u64(9));
        // (Feed the conv part only — compare conv weights directly instead.)
        let _ = x;
        load(&mut b, blob).expect("load");
        // …until the checkpoint makes them identical.
        let mut wa = Vec::new();
        a.visit_params(&mut |p| wa.push(p.value.clone()));
        let mut wb = Vec::new();
        b.visit_params(&mut |p| wb.push(p.value.clone()));
        assert_eq!(wa, wb);
    }

    #[test]
    fn roundtrip_preserves_inference() {
        let mut rng = Prng::seed_from_u64(3);
        let mut a = Linear::new(4, 2, true, &mut rng);
        let x = init::gaussian(&[3, 4], 0.0, 1.0, &mut rng);
        let y_before = a.forward(&x, &mut ForwardCtx::eval());
        let blob = save(&mut a);
        let mut b = Linear::new(4, 2, true, &mut Prng::seed_from_u64(99));
        load(&mut b, blob).expect("load");
        let y_after = b.forward(&x, &mut ForwardCtx::eval());
        assert_eq!(y_before, y_after);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        let err = load(&mut m, Bytes::from_static(b"NOPE00000000")).unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
    }

    #[test]
    fn rejects_truncation() {
        let mut m = model(1);
        let blob = save(&mut m);
        let cut = blob.slice(0..blob.len() / 2);
        assert_eq!(load(&mut m, cut).unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut a = model(1);
        let blob = save(&mut a);
        let mut rng = Prng::seed_from_u64(5);
        let mut other = Linear::new(7, 7, false, &mut rng);
        let err = load(&mut other, blob).unwrap_err();
        assert!(matches!(err, CheckpointError::CountMismatch { .. }));
    }

    /// Unique scratch path for the file-I/O tests (no tempfile crate in the
    /// offline environment).
    fn scratch_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("adagp-ckpt-{}-{tag}.agpc", std::process::id()))
    }

    #[test]
    fn file_roundtrip_restores_params() {
        let path = scratch_path("roundtrip");
        let mut a = model(1);
        save_to_path(&mut a, &path).expect("save");
        let mut b = model(2);
        load_from_path(&mut b, &path).expect("load");
        let mut wa = Vec::new();
        a.visit_params(&mut |p| wa.push(p.value.clone()));
        let mut wb = Vec::new();
        b.visit_params(&mut |p| wb.push(p.value.clone()));
        assert_eq!(wa, wb);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let mut m = model(1);
        let err = load_from_path(&mut m, Path::new("/nonexistent/dir/ckpt.agpc")).unwrap_err();
        assert!(matches!(err, CheckpointIoError::Io(_)), "{err}");
    }

    #[test]
    fn corrupt_file_is_format_error() {
        let path = scratch_path("corrupt");
        std::fs::write(&path, b"NOPE definitely not a checkpoint").unwrap();
        let mut m = model(1);
        let err = load_from_path(&mut m, &path).unwrap_err();
        assert!(matches!(
            err,
            CheckpointIoError::Format(CheckpointError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_1_blob_migrates() {
        // A legacy (version 1, no flags byte) blob must still load.
        let mut a = model(1);
        let legacy = encode(&mut a, 1);
        let mut b = model(2);
        load(&mut b, legacy).expect("v1 migration");
        let mut wa = Vec::new();
        a.visit_params(&mut |p| wa.push(p.value.clone()));
        let mut wb = Vec::new();
        b.visit_params(&mut |p| wb.push(p.value.clone()));
        assert_eq!(wa, wb);
    }

    #[test]
    fn current_version_is_2_with_flags_byte() {
        let mut m = model(1);
        let bytes = save(&mut m);
        let blob = bytes.as_ref();
        assert_eq!(&blob[0..4], MAGIC);
        assert_eq!(u32::from_le_bytes(blob[4..8].try_into().unwrap()), 2);
        assert_eq!(blob[8], FLAGS_NONE);
    }

    #[test]
    fn rejects_future_version_and_unknown_flags() {
        let mut m = model(1);
        let blob = save(&mut m).as_ref().to_vec();
        // Future version.
        let mut future = blob.clone();
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            load(&mut m, Bytes::from(future)).unwrap_err(),
            CheckpointError::BadVersion(99)
        );
        // Unknown flags.
        let mut flagged = blob;
        flagged[8] = 0x7f;
        assert_eq!(
            load(&mut m, Bytes::from(flagged)).unwrap_err(),
            CheckpointError::BadFlags(0x7f)
        );
    }

    #[test]
    fn mismatch_does_not_corrupt_model() {
        let mut a = model(1);
        let blob = save(&mut a);
        // Same param count, different shapes.
        let mut rng = Prng::seed_from_u64(6);
        let mut other = Sequential::new();
        other.push(Conv2d::new(3, 4, 3, 1, 1, true, &mut rng));
        other.push(Linear::new(4, 3, true, &mut rng));
        let mut before = Vec::new();
        other.visit_params(&mut |p| before.push(p.value.clone()));
        let err = load(&mut other, blob).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        let mut after = Vec::new();
        other.visit_params(&mut |p| after.push(p.value.clone()));
        assert_eq!(before, after, "failed load must not mutate the model");
    }
}
