//! Model checkpointing: serialize all parameters of a [`Module`] to a
//! compact binary blob and restore them later.
//!
//! The format is deliberately simple and versioned:
//! `magic "AGPC" | u32 version | u32 n_params | per-param (u32 rank,
//! u64 dims…, f32 data…)`, all little-endian. Parameter order is the
//! module's deterministic `visit_params` order, so a checkpoint is valid
//! for any architecturally identical model.

use crate::module::Module;
use adagp_tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"AGPC";
const VERSION: u32 = 1;

/// Errors from checkpoint decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the checkpoint magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The blob ended prematurely.
    Truncated,
    /// The model's parameter list does not match the checkpoint.
    Mismatch {
        /// Which parameter (in visit order) disagreed.
        index: usize,
        /// Shape stored in the checkpoint.
        stored: Vec<usize>,
        /// Shape the model expected.
        expected: Vec<usize>,
    },
    /// The checkpoint has a different number of parameters than the model.
    CountMismatch {
        /// Parameters in the checkpoint.
        stored: usize,
        /// Parameters in the model.
        expected: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an ADA-GP checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint data ended prematurely"),
            CheckpointError::Mismatch {
                index,
                stored,
                expected,
            } => write!(
                f,
                "parameter {index} shape mismatch: checkpoint {stored:?} vs model {expected:?}"
            ),
            CheckpointError::CountMismatch { stored, expected } => write!(
                f,
                "parameter count mismatch: checkpoint {stored} vs model {expected}"
            ),
        }
    }
}

impl Error for CheckpointError {}

/// Serializes every parameter of `model` into a checkpoint blob.
pub fn save(model: &mut dyn Module) -> Bytes {
    let mut params: Vec<Tensor> = Vec::new();
    model.visit_params(&mut |p| params.push(p.value.clone()));
    let mut buf = BytesMut::with_capacity(
        16 + params
            .iter()
            .map(|t| 4 + t.ndim() * 8 + t.len() * 4)
            .sum::<usize>(),
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(params.len() as u32);
    for t in &params {
        buf.put_u32_le(t.ndim() as u32);
        for &d in t.shape() {
            buf.put_u64_le(d as u64);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Restores every parameter of `model` from a checkpoint blob.
///
/// # Errors
///
/// Returns [`CheckpointError`] if the blob is malformed or the model's
/// architecture (parameter shapes in visit order) does not match.
pub fn load(model: &mut dyn Module, mut blob: Bytes) -> Result<(), CheckpointError> {
    if blob.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    blob.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = blob.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let n = blob.get_u32_le() as usize;

    // Decode all tensors first so a mismatch cannot leave the model half
    // restored.
    let mut tensors = Vec::with_capacity(n);
    for _ in 0..n {
        if blob.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let rank = blob.get_u32_le() as usize;
        if blob.remaining() < rank * 8 {
            return Err(CheckpointError::Truncated);
        }
        let shape: Vec<usize> = (0..rank).map(|_| blob.get_u64_le() as usize).collect();
        let len: usize = shape.iter().product();
        if blob.remaining() < len * 4 {
            return Err(CheckpointError::Truncated);
        }
        let data: Vec<f32> = (0..len).map(|_| blob.get_f32_le()).collect();
        tensors.push(Tensor::from_vec(data, &shape));
    }

    let mut expected = 0usize;
    model.visit_params(&mut |_| expected += 1);
    if expected != n {
        return Err(CheckpointError::CountMismatch {
            stored: n,
            expected,
        });
    }
    // Validate shapes before writing anything.
    let mut idx = 0usize;
    let mut mismatch: Option<CheckpointError> = None;
    model.visit_params(&mut |p| {
        if mismatch.is_none() && tensors[idx].shape() != p.value.shape() {
            mismatch = Some(CheckpointError::Mismatch {
                index: idx,
                stored: tensors[idx].shape().to_vec(),
                expected: p.value.shape().to_vec(),
            });
        }
        idx += 1;
    });
    if let Some(e) = mismatch {
        return Err(e);
    }
    let mut idx = 0usize;
    model.visit_params(&mut |p| {
        p.value = tensors[idx].clone();
        idx += 1;
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::Sequential;
    use crate::layers::{Conv2d, Linear, Relu};
    use crate::module::ForwardCtx;
    use adagp_tensor::{init, Prng};

    fn model(seed: u64) -> Sequential {
        let mut rng = Prng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Conv2d::new(2, 4, 3, 1, 1, true, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(4, 3, true, &mut rng));
        m
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let mut a = model(1);
        let blob = save(&mut a);
        // A differently initialized model produces different outputs…
        let mut b = model(2);
        let x = init::gaussian(&[1, 2, 1, 2], 0.0, 1.0, &mut Prng::seed_from_u64(9));
        // (Feed the conv part only — compare conv weights directly instead.)
        let _ = x;
        load(&mut b, blob).expect("load");
        // …until the checkpoint makes them identical.
        let mut wa = Vec::new();
        a.visit_params(&mut |p| wa.push(p.value.clone()));
        let mut wb = Vec::new();
        b.visit_params(&mut |p| wb.push(p.value.clone()));
        assert_eq!(wa, wb);
    }

    #[test]
    fn roundtrip_preserves_inference() {
        let mut rng = Prng::seed_from_u64(3);
        let mut a = Linear::new(4, 2, true, &mut rng);
        let x = init::gaussian(&[3, 4], 0.0, 1.0, &mut rng);
        let y_before = a.forward(&x, &mut ForwardCtx::eval());
        let blob = save(&mut a);
        let mut b = Linear::new(4, 2, true, &mut Prng::seed_from_u64(99));
        load(&mut b, blob).expect("load");
        let y_after = b.forward(&x, &mut ForwardCtx::eval());
        assert_eq!(y_before, y_after);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        let err = load(&mut m, Bytes::from_static(b"NOPE00000000")).unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
    }

    #[test]
    fn rejects_truncation() {
        let mut m = model(1);
        let blob = save(&mut m);
        let cut = blob.slice(0..blob.len() / 2);
        assert_eq!(load(&mut m, cut).unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut a = model(1);
        let blob = save(&mut a);
        let mut rng = Prng::seed_from_u64(5);
        let mut other = Linear::new(7, 7, false, &mut rng);
        let err = load(&mut other, blob).unwrap_err();
        assert!(matches!(err, CheckpointError::CountMismatch { .. }));
    }

    #[test]
    fn mismatch_does_not_corrupt_model() {
        let mut a = model(1);
        let blob = save(&mut a);
        // Same param count, different shapes.
        let mut rng = Prng::seed_from_u64(6);
        let mut other = Sequential::new();
        other.push(Conv2d::new(3, 4, 3, 1, 1, true, &mut rng));
        other.push(Linear::new(4, 3, true, &mut rng));
        let mut before = Vec::new();
        other.visit_params(&mut |p| before.push(p.value.clone()));
        let err = load(&mut other, blob).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        let mut after = Vec::new();
        other.visit_params(&mut |p| after.push(p.value.clone()));
        assert_eq!(before, after, "failed load must not mutate the model");
    }
}
