//! Shape and regularization utilities: Flatten and Dropout.

use crate::module::{ForwardCtx, Module};
use crate::param::Param;
use adagp_tensor::{Prng, Tensor};

/// Flattens `(N, ...)` to `(N, prod(...))` — bridges conv stacks to FC heads.
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Flatten {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if ctx.train {
            self.input_shape = x.shape().to_vec();
        }
        let n = x.dim(0);
        let rest: usize = x.shape()[1..].iter().product();
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(
            !self.input_shape.is_empty(),
            "Flatten::backward called before forward"
        );
        dy.reshape(&self.input_shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Inverted dropout with a deterministic, explicitly seeded mask stream.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: Prng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a seed for the
    /// mask stream.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Dropout {
            p,
            rng: Prng::seed_from_u64(seed),
            mask: None,
        }
    }
}

impl Module for Dropout {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if !ctx.train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.rng.uniform() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::from_vec(mask_data, x.shape());
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => dy.mul(mask),
            None => dy.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = fl.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[2, 48]);
        let dx = fl.backward(&Tensor::ones(&[2, 48]));
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, &mut ForwardCtx::eval());
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, &mut ForwardCtx::train());
        // Survivors are 2.0, dropped are 0.0; mean stays near 1.
        assert!((y.mean() - 1.0).abs() < 0.1);
        assert!(y.data().iter().all(|&v| v == 0.0 || v == 2.0));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[1000]);
        let y = d.forward(&x, &mut ForwardCtx::train());
        let dx = d.backward(&Tensor::ones(&[1000]));
        assert_eq!(y, dx);
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::ones(&[8]);
        let y = d.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y, x);
    }
}
