//! Fully connected layer — the second prediction-site kind for ADA-GP.

use crate::module::{ForwardCtx, Module, PredictionSite, SiteKind, SiteMeta};
use crate::param::Param;
use adagp_tensor::matmul::matmul_backward;
use adagp_tensor::{init, Prng, Tensor};

/// A fully connected layer `y = x W^T + b`.
///
/// Weight layout `(out_features, in_features)` so that the weight rows map
/// one-to-one onto output features — the same "output channel" structure
/// ADA-GP's tensor reorganization exploits for conv layers (§3.6).
#[derive(Debug)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    label: String,
    input_cache: Option<Tensor>,
    activation_cache: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer `in_features -> out_features`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut Prng) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "linear dims must be positive"
        );
        let weight = Param::new(init::kaiming_uniform(
            &[out_features, in_features],
            in_features,
            rng,
        ));
        let bias = bias.then(|| Param::new(Tensor::zeros(&[out_features])));
        Linear {
            weight,
            bias,
            label: format!("fc{in_features}x{out_features}"),
            input_cache: None,
            activation_cache: None,
        }
    }

    /// Overrides the human-readable label used in site metadata.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear expects (batch, features) input");
        let mut y = x.matmul_nt(&self.weight.value);
        if let Some(b) = &self.bias {
            let (n, f) = (y.dim(0), y.dim(1));
            for i in 0..n {
                for j in 0..f {
                    y.data_mut()[i * f + j] += b.value.data()[j];
                }
            }
        }
        if ctx.train {
            self.input_cache = Some(x.clone());
        }
        if ctx.record_activations {
            self.activation_cache = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .input_cache
            .as_ref()
            .expect("Linear::backward called before forward");
        // y = x @ W^T  =>  dx = dy @ W, dW = dy^T @ x.
        let (dx, dw_t) = matmul_backward(x, &self.weight.value.transpose2(), dy);
        let dw = dw_t.transpose2();
        self.weight.accumulate_grad(&dw);
        if let Some(b) = &mut self.bias {
            let (n, f) = (dy.dim(0), dy.dim(1));
            let mut db = vec![0.0f32; f];
            for i in 0..n {
                for j in 0..f {
                    db[j] += dy.data()[i * f + j];
                }
            }
            b.accumulate_grad(&Tensor::from_vec(db, &[f]));
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        f(self);
    }
}

impl PredictionSite for Linear {
    fn meta(&self) -> SiteMeta {
        SiteMeta {
            kind: SiteKind::Linear,
            weight_shape: self.weight.value.shape().to_vec(),
            label: self.label.clone(),
        }
    }

    fn weight_param(&mut self) -> &mut Param {
        &mut self.weight
    }

    fn activation(&self) -> Option<&Tensor> {
        self.activation_cache.as_ref()
    }

    fn take_activation(&mut self) -> Option<Tensor> {
        self.activation_cache.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_affine() {
        let mut rng = Prng::seed_from_u64(1);
        let mut lin = Linear::new(3, 2, true, &mut rng);
        // Set known weights: W = [[1,0,0],[0,1,0]], b = [10, 20].
        lin.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 3]);
        if let Some(b) = &mut lin.bias {
            b.value = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        }
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = lin.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.data(), &[11.0, 22.0]);
    }

    #[test]
    fn backward_gradcheck() {
        let mut rng = Prng::seed_from_u64(2);
        let mut lin = Linear::new(4, 3, true, &mut rng);
        let x = adagp_tensor::init::gaussian(&[2, 4], 0.0, 1.0, &mut rng);
        let y = lin.forward(&x, &mut ForwardCtx::train());
        let dx = lin.backward(&Tensor::ones(y.shape()));

        let eps = 1e-2;
        let w0 = lin.weight.value.clone();
        let f = |lin: &mut Linear, x: &Tensor| lin.forward(x, &mut ForwardCtx::eval()).sum();
        // Check weight gradient.
        for i in (0..w0.len()).step_by(3) {
            lin.weight.value = w0.clone();
            lin.weight.value.data_mut()[i] += eps;
            let up = f(&mut lin, &x);
            lin.weight.value = w0.clone();
            lin.weight.value.data_mut()[i] -= eps;
            let dn = f(&mut lin, &x);
            let num = (up - dn) / (2.0 * eps);
            assert!(
                (num - lin.weight.grad.data()[i]).abs() < 1e-2,
                "dW[{i}]: numeric {num} vs {}",
                lin.weight.grad.data()[i]
            );
        }
        lin.weight.value = w0;
        // Check input gradient.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&mut lin, &xp) - f(&mut lin, &xm)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn site_meta() {
        let mut rng = Prng::seed_from_u64(3);
        let lin = Linear::new(512, 10, true, &mut rng);
        let m = lin.meta();
        assert_eq!(m.kind, SiteKind::Linear);
        assert_eq!(m.weight_shape, vec![10, 512]);
        assert_eq!(m.out_channels(), 10);
    }

    #[test]
    fn activation_recorded_only_when_requested() {
        let mut rng = Prng::seed_from_u64(4);
        let mut lin = Linear::new(2, 2, false, &mut rng);
        lin.forward(&Tensor::ones(&[1, 2]), &mut ForwardCtx::train());
        assert!(lin.activation().is_none());
        lin.forward(&Tensor::ones(&[1, 2]), &mut ForwardCtx::train_recording());
        assert!(lin.activation().is_some());
    }
}
