//! 2-D convolution layer — the primary prediction site for ADA-GP.

use crate::module::{ForwardCtx, Module, PredictionSite, SiteKind, SiteMeta};
use crate::param::Param;
use adagp_tensor::conv::{conv2d, conv2d_backward_data, conv2d_backward_weight, Conv2dParams};
use adagp_tensor::{init, Prng, Tensor};

/// A 2-D convolution with optional bias.
///
/// Weight layout `(out_ch, in_ch, kh, kw)`, Kaiming-normal initialized.
/// When the forward context requests activation recording, the layer keeps
/// its output tensor so ADA-GP's predictor can consume it (Figure 1b).
///
/// ```
/// use adagp_nn::{layers::Conv2d, module::{Module, ForwardCtx}};
/// use adagp_tensor::{Prng, Tensor};
/// let mut rng = Prng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, true, &mut rng);
/// let y = conv.forward(&Tensor::ones(&[2, 3, 8, 8]), &mut ForwardCtx::train());
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    params: Conv2dParams,
    kh: usize,
    kw: usize,
    label: String,
    input_cache: Option<Tensor>,
    activation_cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution `in_ch -> out_ch` with square kernel `k`,
    /// given stride and padding.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut Prng,
    ) -> Self {
        assert!(
            in_ch > 0 && out_ch > 0 && k > 0,
            "conv dims must be positive"
        );
        let fan_in = in_ch * k * k;
        let weight = Param::new(init::kaiming_normal(&[out_ch, in_ch, k, k], fan_in, rng));
        let bias = bias.then(|| Param::new(Tensor::zeros(&[out_ch])));
        Conv2d {
            weight,
            bias,
            params: Conv2dParams::new(stride, padding),
            kh: k,
            kw: k,
            label: format!("conv{in_ch}x{out_ch}k{k}"),
            input_cache: None,
            activation_cache: None,
        }
    }

    /// Overrides the human-readable label used in site metadata.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Kernel size (square).
    pub fn kernel_size(&self) -> usize {
        self.kh
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Module for Conv2d {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let y = conv2d(
            x,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            &self.params,
        );
        if ctx.train {
            self.input_cache = Some(x.clone());
        }
        if ctx.record_activations {
            self.activation_cache = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .input_cache
            .as_ref()
            .expect("Conv2d::backward called before forward");
        let (dw, db) = conv2d_backward_weight(x, dy, self.kh, self.kw, &self.params);
        self.weight.accumulate_grad(&dw);
        if let Some(b) = &mut self.bias {
            b.accumulate_grad(&db);
        }
        conv2d_backward_data(dy, &self.weight.value, x.dim(2), x.dim(3), &self.params)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        f(self);
    }
}

impl PredictionSite for Conv2d {
    fn meta(&self) -> SiteMeta {
        SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: self.weight.value.shape().to_vec(),
            label: self.label.clone(),
        }
    }

    fn weight_param(&mut self) -> &mut Param {
        &mut self.weight
    }

    fn activation(&self) -> Option<&Tensor> {
        self.activation_cache.as_ref()
    }

    fn take_activation(&mut self) -> Option<Tensor> {
        self.activation_cache.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{count_params, count_sites};

    #[test]
    fn forward_shape_and_cache() {
        let mut rng = Prng::seed_from_u64(1);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, true, &mut rng);
        let x = Tensor::ones(&[2, 3, 6, 6]);
        let y = conv.forward(&x, &mut ForwardCtx::train_recording());
        assert_eq!(y.shape(), &[2, 4, 6, 6]);
        assert!(conv.activation().is_some());
        let act = conv.take_activation().unwrap();
        assert_eq!(act.shape(), y.shape());
        assert!(conv.activation().is_none());
    }

    #[test]
    fn no_activation_cache_without_recording() {
        let mut rng = Prng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng);
        conv.forward(&Tensor::ones(&[1, 1, 2, 2]), &mut ForwardCtx::train());
        assert!(conv.activation().is_none());
    }

    #[test]
    fn backward_accumulates_grads() {
        let mut rng = Prng::seed_from_u64(2);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let y = conv.forward(&x, &mut ForwardCtx::train());
        let dx = conv.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        assert!(conv.weight().grad.norm() > 0.0);
    }

    #[test]
    fn param_and_site_counts() {
        let mut rng = Prng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, true, &mut rng);
        assert_eq!(count_params(&mut conv), 4 * 2 * 9 + 4);
        assert_eq!(count_sites(&mut conv), 1);
    }

    #[test]
    fn meta_reports_weight_shape() {
        let mut rng = Prng::seed_from_u64(4);
        let conv = Conv2d::new(8, 16, 3, 1, 1, false, &mut rng).with_label("stage1");
        let m = conv.meta();
        assert_eq!(m.kind, SiteKind::Conv2d);
        assert_eq!(m.weight_shape, vec![16, 8, 3, 3]);
        assert_eq!(m.label, "stage1");
        assert_eq!(m.grads_per_out_channel(), 72);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_before_forward_panics() {
        let mut rng = Prng::seed_from_u64(5);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng);
        conv.backward(&Tensor::ones(&[1, 1, 1, 1]));
    }
}
