//! Activation layers: ReLU, LeakyReLU, Sigmoid, Tanh.

use crate::module::{ForwardCtx, Module};
use crate::param::Param;
use adagp_tensor::softmax as act;
use adagp_tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    input_cache: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Relu {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if ctx.train {
            self.input_cache = Some(x.clone());
        }
        act::relu(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .input_cache
            .as_ref()
            .expect("Relu::backward called before forward");
        act::relu_backward(x, dy)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Leaky ReLU with configurable negative slope (YOLO-v3 uses 0.1).
#[derive(Debug)]
pub struct LeakyRelu {
    alpha: f32,
    input_cache: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with negative slope `alpha`.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu {
            alpha,
            input_cache: None,
        }
    }
}

impl Module for LeakyRelu {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if ctx.train {
            self.input_cache = Some(x.clone());
        }
        act::leaky_relu(x, self.alpha)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .input_cache
            .as_ref()
            .expect("LeakyRelu::backward called before forward");
        act::leaky_relu_backward(x, dy, self.alpha)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Logistic sigmoid.
#[derive(Debug, Default)]
pub struct Sigmoid {
    output_cache: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Sigmoid {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let y = act::sigmoid(x);
        if ctx.train {
            self.output_cache = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let y = self
            .output_cache
            .as_ref()
            .expect("Sigmoid::backward called before forward");
        act::sigmoid_backward(y, dy)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Hyperbolic tangent.
#[derive(Debug, Default)]
pub struct Tanh {
    output_cache: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Tanh {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let y = act::tanh(x);
        if ctx.train {
            self.output_cache = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let y = self
            .output_cache
            .as_ref()
            .expect("Tanh::backward called before forward");
        act::tanh_backward(y, dy)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::count_params;

    #[test]
    fn relu_roundtrip() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]);
        let y = r.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.data(), &[0.0, 2.0]);
        let dx = r.backward(&Tensor::ones(&[2]));
        assert_eq!(dx.data(), &[0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let mut l = LeakyRelu::new(0.2);
        let x = Tensor::from_vec(vec![-5.0, 5.0], &[2]);
        let y = l.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.data(), &[-1.0, 5.0]);
        let dx = l.backward(&Tensor::ones(&[2]));
        assert!((dx.data()[0] - 0.2).abs() < 1e-7);
    }

    #[test]
    fn sigmoid_tanh_backward_use_outputs() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::zeros(&[1]), &mut ForwardCtx::train());
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        let dx = s.backward(&Tensor::ones(&[1]));
        assert!((dx.data()[0] - 0.25).abs() < 1e-6);

        let mut t = Tanh::new();
        t.forward(&Tensor::zeros(&[1]), &mut ForwardCtx::train());
        let dx = t.backward(&Tensor::ones(&[1]));
        assert!((dx.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(count_params(&mut Relu::new()), 0);
        assert_eq!(count_params(&mut LeakyRelu::new(0.1)), 0);
        assert_eq!(count_params(&mut Sigmoid::new()), 0);
        assert_eq!(count_params(&mut Tanh::new()), 0);
    }
}
