//! Pooling layers wrapping the tensor pooling kernels.

use crate::module::{ForwardCtx, Module};
use crate::param::Param;
use adagp_tensor::pool;
use adagp_tensor::Tensor;

/// Max pooling over square windows.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    s: usize,
    fwd_cache: Option<pool::MaxPoolOutput>,
    input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with window `k` and stride `s`.
    pub fn new(k: usize, s: usize) -> Self {
        MaxPool2d {
            k,
            s,
            fwd_cache: None,
            input_shape: Vec::new(),
        }
    }
}

impl Module for MaxPool2d {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let out = pool::maxpool2d(x, self.k, self.s);
        let y = out.output.clone();
        if ctx.train {
            self.input_shape = x.shape().to_vec();
            self.fwd_cache = Some(out);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let fwd = self
            .fwd_cache
            .as_ref()
            .expect("MaxPool2d::backward called before forward");
        pool::maxpool2d_backward(fwd, dy, &self.input_shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Average pooling over square windows.
#[derive(Debug)]
pub struct AvgPool2d {
    k: usize,
    s: usize,
    input_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with window `k` and stride `s`.
    pub fn new(k: usize, s: usize) -> Self {
        AvgPool2d {
            k,
            s,
            input_shape: Vec::new(),
        }
    }
}

impl Module for AvgPool2d {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if ctx.train {
            self.input_shape = x.shape().to_vec();
        }
        pool::avgpool2d(x, self.k, self.s)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(
            !self.input_shape.is_empty(),
            "AvgPool2d::backward called before forward"
        );
        pool::avgpool2d_backward(dy, &self.input_shape, self.k, self.s)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Global average pooling `(N, C, H, W) -> (N, C)` — the standard CNN head.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if ctx.train {
            self.input_shape = x.shape().to_vec();
        }
        pool::global_avgpool(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(
            !self.input_shape.is_empty(),
            "GlobalAvgPool::backward called before forward"
        );
        pool::global_avgpool_backward(dy, &self.input_shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = p.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.data(), &[4.0]);
        let dx = p.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn avgpool_layer_roundtrip() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = p.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let dx = p.backward(&Tensor::ones(&[1, 1, 2, 2]));
        assert_eq!(dx.shape(), &[1, 1, 4, 4]);
        assert!((dx.sum() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn gap_layer_roundtrip() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = p.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[2, 3]);
        let dx = p.backward(&Tensor::ones(&[2, 3]));
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }
}
