//! Normalization layers: BatchNorm2d and LayerNorm.

use crate::module::{ForwardCtx, Module};
use crate::param::Param;
use adagp_tensor::norm;
use adagp_tensor::Tensor;

/// 2-D batch normalization with running statistics.
///
/// Uses batch statistics in training mode and exponential running averages
/// (momentum 0.1, PyTorch convention) at inference.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<norm::BatchNormCache>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "BatchNorm2d requires at least one channel");
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Running mean (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        if ctx.train {
            let (y, cache, mean, var) =
                norm::batchnorm2d_forward(x, &self.gamma.value, &self.beta.value, self.eps);
            for c in 0..self.running_mean.len() {
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
            }
            self.cache = Some(cache);
            y
        } else {
            norm::batchnorm2d_infer(
                x,
                &self.gamma.value,
                &self.beta.value,
                &self.running_mean,
                &self.running_var,
                self.eps,
            )
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward called before forward");
        let (dx, dgamma, dbeta) = norm::batchnorm2d_backward(dy, cache, &self.gamma.value);
        self.gamma.accumulate_grad(&dgamma);
        self.beta.accumulate_grad(&dbeta);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// Layer normalization over the last dimension of `(rows, features)`.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    cache: Option<norm::LayerNormCache>,
}

impl LayerNorm {
    /// Creates a layer-norm over `features` features.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0`.
    pub fn new(features: usize) -> Self {
        assert!(features > 0, "LayerNorm requires at least one feature");
        LayerNorm {
            gamma: Param::new(Tensor::ones(&[features])),
            beta: Param::new(Tensor::zeros(&[features])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature count.
    pub fn features(&self) -> usize {
        self.gamma.len()
    }
}

impl Module for LayerNorm {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let (y, cache) = norm::layernorm_forward(x, &self.gamma.value, &self.beta.value, self.eps);
        if ctx.train {
            self.cache = Some(cache);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("LayerNorm::backward called before forward");
        let (dx, dgamma, dbeta) = norm::layernorm_backward(dy, cache, &self.gamma.value);
        self.gamma.accumulate_grad(&dgamma);
        self.beta.accumulate_grad(&dbeta);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::count_params;
    use adagp_tensor::{init, Prng};

    #[test]
    fn batchnorm_train_vs_eval_paths() {
        let mut rng = Prng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(2);
        let x = init::gaussian(&[4, 2, 3, 3], 1.0, 2.0, &mut rng);
        let y_train = bn.forward(&x, &mut ForwardCtx::train());
        // Training output is normalized: overall mean near 0.
        assert!(y_train.mean().abs() < 0.1);
        // Running stats moved toward the batch stats.
        assert!(bn.running_mean().iter().any(|&m| m != 0.0));
        let y_eval = bn.forward(&x, &mut ForwardCtx::eval());
        assert_eq!(y_eval.shape(), x.shape());
    }

    #[test]
    fn batchnorm_backward_accumulates() {
        let mut rng = Prng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new(3);
        let x = init::gaussian(&[2, 3, 2, 2], 0.0, 1.0, &mut rng);
        let y = bn.forward(&x, &mut ForwardCtx::train());
        let dx = bn.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(count_params(&mut bn), 6);
    }

    #[test]
    fn layernorm_roundtrip() {
        let mut rng = Prng::seed_from_u64(3);
        let mut ln = LayerNorm::new(8);
        let x = init::gaussian(&[4, 8], 3.0, 2.0, &mut rng);
        let y = ln.forward(&x, &mut ForwardCtx::train());
        for i in 0..4 {
            let mean: f32 = y.data()[i * 8..(i + 1) * 8].iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
        }
        let dx = ln.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(ln.features(), 8);
    }
}
