//! Concrete layers: convolution, linear, normalization, activations,
//! pooling and shape utilities.

mod act;
mod conv;
mod depthwise;
mod linear;
mod misc;
mod norm;
mod pool;

pub use act::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use depthwise::DepthwiseConv2d;
pub use linear::Linear;
pub use misc::{Dropout, Flatten};
pub use norm::{BatchNorm2d, LayerNorm};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
