//! Depthwise 2-D convolution (one filter per channel) — the workhorse of
//! MobileNet-V2's inverted residual blocks.

use crate::module::{ForwardCtx, Module, PredictionSite, SiteKind, SiteMeta};
use crate::param::Param;
use adagp_tensor::conv::{conv2d, conv2d_backward_data, conv2d_backward_weight, Conv2dParams};
use adagp_tensor::{init, Prng, Tensor};

/// Depthwise convolution: each input channel is convolved with its own
/// `k×k` filter. Weight layout `(C, 1, k, k)`.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    weight: Param,
    params: Conv2dParams,
    k: usize,
    label: String,
    input_cache: Option<Tensor>,
    activation_cache: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise conv over `channels` channels with square
    /// kernel `k`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `k` is zero.
    pub fn new(channels: usize, k: usize, stride: usize, padding: usize, rng: &mut Prng) -> Self {
        assert!(channels > 0 && k > 0, "depthwise dims must be positive");
        let weight = Param::new(init::kaiming_normal(&[channels, 1, k, k], k * k, rng));
        DepthwiseConv2d {
            weight,
            params: Conv2dParams::new(stride, padding),
            k,
            label: format!("dwconv{channels}k{k}"),
            input_cache: None,
            activation_cache: None,
        }
    }

    /// Overrides the site label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.weight.value.dim(0)
    }
}

impl Module for DepthwiseConv2d {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        assert_eq!(x.ndim(), 4, "DepthwiseConv2d expects (N, C, H, W)");
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        assert_eq!(c, self.channels(), "DepthwiseConv2d channel mismatch");
        let ho = self.params.out_size(h, self.k);
        let wo = self.params.out_size(w, self.k);
        let mut out = vec![0.0f32; n * c * ho * wo];
        // Convolve each channel independently as a (N, 1, H, W) tensor.
        for ci in 0..c {
            let mut chan = vec![0.0f32; n * h * w];
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                chan[ni * h * w..(ni + 1) * h * w].copy_from_slice(&x.data()[base..base + h * w]);
            }
            let chan_t = Tensor::from_vec(chan, &[n, 1, h, w]);
            let wslice = Tensor::from_vec(
                self.weight.value.data()[ci * self.k * self.k..(ci + 1) * self.k * self.k].to_vec(),
                &[1, 1, self.k, self.k],
            );
            let y = conv2d(&chan_t, &wslice, None, &self.params);
            for ni in 0..n {
                let dst = (ni * c + ci) * ho * wo;
                out[dst..dst + ho * wo]
                    .copy_from_slice(&y.data()[ni * ho * wo..(ni + 1) * ho * wo]);
            }
        }
        let y = Tensor::from_vec(out, &[n, c, ho, wo]);
        if ctx.train {
            self.input_cache = Some(x.clone());
        }
        if ctx.record_activations {
            self.activation_cache = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .input_cache
            .as_ref()
            .expect("DepthwiseConv2d::backward called before forward");
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let (ho, wo) = (dy.dim(2), dy.dim(3));
        let mut dx = vec![0.0f32; x.len()];
        let mut dw = vec![0.0f32; self.weight.value.len()];
        for ci in 0..c {
            // Gather channel ci of x and dy.
            let mut xc = vec![0.0f32; n * h * w];
            let mut dyc = vec![0.0f32; n * ho * wo];
            for ni in 0..n {
                xc[ni * h * w..(ni + 1) * h * w]
                    .copy_from_slice(&x.data()[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w]);
                dyc[ni * ho * wo..(ni + 1) * ho * wo].copy_from_slice(
                    &dy.data()[(ni * c + ci) * ho * wo..(ni * c + ci + 1) * ho * wo],
                );
            }
            let xc_t = Tensor::from_vec(xc, &[n, 1, h, w]);
            let dyc_t = Tensor::from_vec(dyc, &[n, 1, ho, wo]);
            let wslice = Tensor::from_vec(
                self.weight.value.data()[ci * self.k * self.k..(ci + 1) * self.k * self.k].to_vec(),
                &[1, 1, self.k, self.k],
            );
            let dxc = conv2d_backward_data(&dyc_t, &wslice, h, w, &self.params);
            let (dwc, _db) = conv2d_backward_weight(&xc_t, &dyc_t, self.k, self.k, &self.params);
            for ni in 0..n {
                dx[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w]
                    .copy_from_slice(&dxc.data()[ni * h * w..(ni + 1) * h * w]);
            }
            dw[ci * self.k * self.k..(ci + 1) * self.k * self.k].copy_from_slice(dwc.data());
        }
        self.weight
            .accumulate_grad(&Tensor::from_vec(dw, self.weight.value.shape()));
        Tensor::from_vec(dx, x.shape())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        f(self);
    }
}

impl PredictionSite for DepthwiseConv2d {
    fn meta(&self) -> SiteMeta {
        SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: self.weight.value.shape().to_vec(),
            label: self.label.clone(),
        }
    }

    fn weight_param(&mut self) -> &mut Param {
        &mut self.weight
    }

    fn activation(&self) -> Option<&Tensor> {
        self.activation_cache.as_ref()
    }

    fn take_activation(&mut self) -> Option<Tensor> {
        self.activation_cache.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_preserves_channels() {
        let mut rng = Prng::seed_from_u64(0);
        let mut dw = DepthwiseConv2d::new(4, 3, 1, 1, &mut rng);
        let x = Tensor::ones(&[2, 4, 6, 6]);
        let y = dw.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[2, 4, 6, 6]);
    }

    #[test]
    fn channels_are_independent() {
        let mut rng = Prng::seed_from_u64(1);
        let mut dw = DepthwiseConv2d::new(2, 1, 1, 0, &mut rng);
        // 1x1 depthwise = per-channel scaling.
        dw.weight.value = Tensor::from_vec(vec![2.0, 3.0], &[2, 1, 1, 1]);
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 2, 1, 2]);
        let y = dw.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.data(), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn backward_gradcheck() {
        let mut rng = Prng::seed_from_u64(2);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng);
        let x = adagp_tensor::init::gaussian(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let y = dw.forward(&x, &mut ForwardCtx::train());
        let dx = dw.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let up = dw.forward(&xp, &mut ForwardCtx::eval()).sum();
            let dn = dw.forward(&xm, &mut ForwardCtx::eval()).sum();
            let num = (up - dn) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "dx[{i}] numeric {num} vs {}",
                dx.data()[i]
            );
        }
        assert!(dw.weight.grad.norm() > 0.0);
    }

    #[test]
    fn stride_halves_spatial() {
        let mut rng = Prng::seed_from_u64(3);
        let mut dw = DepthwiseConv2d::new(3, 3, 2, 1, &mut rng);
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let y = dw.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[1, 3, 4, 4]);
    }
}
