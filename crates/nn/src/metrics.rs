//! Evaluation metrics: top-1 accuracy, BLEU score and mean average
//! precision — the three metrics the paper's Tables 1–3 report.

use crate::data::BoxLabel;
use adagp_tensor::Tensor;

/// Top-1 classification accuracy in percent.
///
/// # Panics
///
/// Panics if `logits` is not `(n, classes)` or the batch sizes differ.
///
/// ```
/// use adagp_nn::metrics::top1_accuracy;
/// use adagp_tensor::Tensor;
/// let logits = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
/// assert_eq!(top1_accuracy(&logits, &[1, 0]), 100.0);
/// ```
pub fn top1_accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(
        logits.ndim(),
        2,
        "top1_accuracy: logits must be (n, classes)"
    );
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(n, targets.len(), "top1_accuracy: batch mismatch");
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0;
    for (i, &t) in targets.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred == t {
            correct += 1;
        }
    }
    100.0 * correct as f32 / n as f32
}

/// Corpus-level BLEU-4 with uniform n-gram weights and brevity penalty —
/// the metric reported for the Transformer (Table 2).
///
/// `hypotheses` and `references` are token-id sequences; the score is in
/// `[0, 100]`.
///
/// # Panics
///
/// Panics if the corpora have different lengths.
pub fn bleu(hypotheses: &[Vec<usize>], references: &[Vec<usize>]) -> f32 {
    assert_eq!(
        hypotheses.len(),
        references.len(),
        "bleu: corpus size mismatch"
    );
    if hypotheses.is_empty() {
        return 0.0;
    }
    let max_n = 4;
    let mut match_counts = [0usize; 4];
    let mut hyp_counts = [0usize; 4];
    let mut hyp_len = 0usize;
    let mut ref_len = 0usize;

    for (hyp, re) in hypotheses.iter().zip(references.iter()) {
        hyp_len += hyp.len();
        ref_len += re.len();
        for n in 1..=max_n {
            if hyp.len() < n {
                continue;
            }
            let hyp_ngrams = ngram_counts(hyp, n);
            let ref_ngrams = ngram_counts(re, n);
            for (gram, &count) in &hyp_ngrams {
                let clipped = count.min(*ref_ngrams.get(gram).unwrap_or(&0));
                match_counts[n - 1] += clipped;
            }
            hyp_counts[n - 1] += hyp.len() - n + 1;
        }
    }

    let mut log_precision_sum = 0.0f64;
    for n in 0..max_n {
        if hyp_counts[n] == 0 || match_counts[n] == 0 {
            return 0.0;
        }
        log_precision_sum += (match_counts[n] as f64 / hyp_counts[n] as f64).ln();
    }
    let geo_mean = (log_precision_sum / max_n as f64).exp();
    let bp = if hyp_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / hyp_len.max(1) as f64).exp()
    };
    (100.0 * bp * geo_mean) as f32
}

fn ngram_counts(seq: &[usize], n: usize) -> std::collections::HashMap<&[usize], usize> {
    let mut map = std::collections::HashMap::new();
    for window in seq.windows(n) {
        *map.entry(window).or_insert(0) += 1;
    }
    map
}

/// Top-k classification accuracy in percent (the paper reports top-1; the
/// ImageNet literature also uses top-5).
///
/// # Panics
///
/// Panics if `logits` is not rank-2, batch sizes differ, or `k == 0`.
pub fn topk_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f32 {
    assert_eq!(
        logits.ndim(),
        2,
        "topk_accuracy: logits must be (n, classes)"
    );
    assert!(k > 0, "topk_accuracy: k must be positive");
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(n, targets.len(), "topk_accuracy: batch mismatch");
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0;
    for (i, &t) in targets.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let target_score = row[t];
        // Rank = number of classes strictly above the target's score.
        let above = row.iter().filter(|&&v| v > target_score).count();
        if above < k {
            correct += 1;
        }
    }
    100.0 * correct as f32 / n as f32
}

/// A scored detection for mAP computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Index of the image this detection belongs to.
    pub image: usize,
    /// Predicted box and class.
    pub label: BoxLabel,
    /// Confidence score.
    pub score: f32,
}

/// Mean average precision at the given IoU threshold (paper uses 0.5),
/// averaged over classes — the VOC-style metric of Table 3.
///
/// `ground_truth[i]` is the single true box of image `i` (the synthetic
/// dataset has one object per image).
pub fn mean_average_precision(
    detections: &[Detection],
    ground_truth: &[BoxLabel],
    iou_threshold: f32,
    num_classes: usize,
) -> f32 {
    if num_classes == 0 {
        return 0.0;
    }
    let mut ap_sum = 0.0f32;
    let mut classes_with_gt = 0usize;
    for class in 0..num_classes {
        let gt_images: Vec<usize> = ground_truth
            .iter()
            .enumerate()
            .filter(|(_, g)| g.class == class)
            .map(|(i, _)| i)
            .collect();
        if gt_images.is_empty() {
            continue;
        }
        classes_with_gt += 1;
        let mut dets: Vec<&Detection> = detections
            .iter()
            .filter(|d| d.label.class == class)
            .collect();
        dets.sort_by(|a, b| b.score.total_cmp(&a.score));
        let mut matched = vec![false; ground_truth.len()];
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut precisions_at_recall = Vec::new();
        for d in dets {
            let img = d.image;
            let is_match = img < ground_truth.len()
                && !matched[img]
                && ground_truth[img].class == class
                && d.label.iou(&ground_truth[img]) >= iou_threshold;
            if is_match {
                matched[img] = true;
                tp += 1;
            } else {
                fp += 1;
            }
            precisions_at_recall.push((
                tp as f32 / gt_images.len() as f32,
                tp as f32 / (tp + fp) as f32,
            ));
        }
        // 11-point interpolated AP (classic VOC).
        let mut ap = 0.0f32;
        for i in 0..=10 {
            let r = i as f32 / 10.0;
            let p = precisions_at_recall
                .iter()
                .filter(|(recall, _)| *recall >= r)
                .map(|(_, p)| *p)
                .fold(0.0f32, f32::max);
            ap += p / 11.0;
        }
        ap_sum += ap;
    }
    if classes_with_gt == 0 {
        0.0
    } else {
        ap_sum / classes_with_gt as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_all_correct_and_all_wrong() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(top1_accuracy(&logits, &[0, 1]), 100.0);
        assert_eq!(top1_accuracy(&logits, &[1, 0]), 0.0);
    }

    #[test]
    fn accuracy_partial() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]);
        assert_eq!(top1_accuracy(&logits, &[0, 1]), 50.0);
    }

    #[test]
    fn topk_contains_top1() {
        let logits = Tensor::from_vec(vec![0.5, 0.9, 0.1, 0.3], &[1, 4]);
        // Target class 0 ranks 2nd.
        assert_eq!(topk_accuracy(&logits, &[0], 1), 0.0);
        assert_eq!(topk_accuracy(&logits, &[0], 2), 100.0);
        // Top-k is monotone in k.
        assert_eq!(topk_accuracy(&logits, &[2], 4), 100.0);
    }

    #[test]
    fn topk_matches_top1_at_k1() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(
            topk_accuracy(&logits, &[0, 1], 1),
            top1_accuracy(&logits, &[0, 1])
        );
    }

    #[test]
    fn bleu_perfect_match_is_100() {
        let corpus = vec![vec![5, 6, 7, 8, 9], vec![10, 11, 12, 13]];
        let score = bleu(&corpus, &corpus);
        assert!((score - 100.0).abs() < 1e-3, "score {score}");
    }

    #[test]
    fn bleu_no_overlap_is_zero() {
        let hyp = vec![vec![5, 6, 7, 8]];
        let re = vec![vec![9, 10, 11, 12]];
        assert_eq!(bleu(&hyp, &re), 0.0);
    }

    #[test]
    fn bleu_partial_overlap_in_between() {
        let hyp = vec![vec![5, 6, 7, 8, 20, 21]];
        let re = vec![vec![5, 6, 7, 8, 9, 10]];
        let s = bleu(&hyp, &re);
        assert!(s > 0.0 && s < 100.0, "score {s}");
    }

    #[test]
    fn bleu_brevity_penalty_reduces_short_hyps() {
        let re = vec![vec![5, 6, 7, 8, 9, 10, 11, 12]];
        let full = bleu(&re, &re);
        let short = bleu([re[0][..5].to_vec()].as_ref(), &re);
        assert!(short < full);
    }

    fn make_box(class: usize, cx: f32) -> BoxLabel {
        BoxLabel {
            class,
            cx,
            cy: 0.5,
            w: 0.3,
            h: 0.3,
        }
    }

    #[test]
    fn map_perfect_detections() {
        let gt = vec![make_box(0, 0.3), make_box(1, 0.7)];
        let dets = vec![
            Detection {
                image: 0,
                label: gt[0],
                score: 0.9,
            },
            Detection {
                image: 1,
                label: gt[1],
                score: 0.8,
            },
        ];
        let map = mean_average_precision(&dets, &gt, 0.5, 2);
        assert!((map - 1.0).abs() < 1e-5, "map {map}");
    }

    #[test]
    fn map_wrong_class_scores_zero() {
        let gt = vec![make_box(0, 0.3)];
        let mut wrong = gt[0];
        wrong.class = 1;
        let dets = vec![Detection {
            image: 0,
            label: wrong,
            score: 0.9,
        }];
        assert_eq!(mean_average_precision(&dets, &gt, 0.5, 2), 0.0);
    }

    #[test]
    fn map_poor_localization_scores_zero() {
        let gt = vec![make_box(0, 0.2)];
        let off = make_box(0, 0.8); // disjoint
        let dets = vec![Detection {
            image: 0,
            label: off,
            score: 0.9,
        }];
        assert_eq!(mean_average_precision(&dets, &gt, 0.5, 1), 0.0);
    }

    #[test]
    fn map_half_right() {
        let gt = vec![make_box(0, 0.3), make_box(0, 0.7)];
        let dets = vec![Detection {
            image: 0,
            label: gt[0],
            score: 0.9,
        }];
        let map = mean_average_precision(&dets, &gt, 0.5, 1);
        // Recall tops out at 0.5 with precision 1 -> 11-pt AP ≈ 6/11.
        assert!((map - 6.0 / 11.0).abs() < 1e-4, "map {map}");
    }
}
