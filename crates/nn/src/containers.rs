//! Composite modules: sequential chains, residual blocks and parallel
//! channel-concatenated branches.
//!
//! These three containers are sufficient to express every CNN topology in
//! the paper's model zoo: plain chains (VGG/MobileNet), skip connections
//! (ResNet/MobileNet-V2), dense connectivity (DenseNet — concatenation of
//! the input with the block output) and multi-branch inception modules.

use crate::module::{ForwardCtx, Module, PredictionSite};
use crate::param::Param;
use adagp_tensor::Tensor;

/// A chain of modules applied in order.
///
/// ```
/// use adagp_nn::{containers::Sequential, layers::{Linear, Relu}};
/// use adagp_nn::module::{Module, ForwardCtx};
/// use adagp_tensor::{Prng, Tensor};
/// let mut rng = Prng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Linear::new(4, 8, true, &mut rng));
/// net.push(Relu::new());
/// net.push(Linear::new(8, 2, true, &mut rng));
/// let y = net.forward(&Tensor::ones(&[1, 4]), &mut ForwardCtx::train());
/// assert_eq!(y.shape(), &[1, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Module + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Module>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, ctx);
        }
        h
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut g = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        for layer in &mut self.layers {
            layer.visit_sites(f);
        }
    }
}

/// A residual block: `y = body(x) + shortcut(x)`.
///
/// The shortcut defaults to identity; ResNet downsample stages supply a
/// 1×1 strided projection.
pub struct Residual {
    body: Sequential,
    shortcut: Option<Box<dyn Module>>,
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Residual(body={:?}, projected={})",
            self.body,
            self.shortcut.is_some()
        )
    }
}

impl Residual {
    /// Creates a residual block with identity shortcut.
    pub fn new(body: Sequential) -> Self {
        Residual {
            body,
            shortcut: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_projection(body: Sequential, shortcut: impl Module + 'static) -> Self {
        Residual {
            body,
            shortcut: Some(Box::new(shortcut)),
        }
    }
}

impl Module for Residual {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let main = self.body.forward(x, ctx);
        let skip = match &mut self.shortcut {
            Some(proj) => proj.forward(x, ctx),
            None => x.clone(),
        };
        main.add(&skip)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut dx = self.body.backward(dy);
        match &mut self.shortcut {
            Some(proj) => {
                let dskip = proj.backward(dy);
                dx.add_assign(&dskip);
            }
            None => dx.add_assign(dy),
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(f);
        if let Some(proj) = &mut self.shortcut {
            proj.visit_params(f);
        }
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        self.body.visit_sites(f);
        if let Some(proj) = &mut self.shortcut {
            proj.visit_sites(f);
        }
    }
}

/// Concatenates rank-4 tensors along the channel axis.
///
/// # Panics
///
/// Panics if `parts` is empty or N/H/W dimensions disagree.
pub fn cat_channels(parts: &[&Tensor]) -> Tensor {
    assert!(
        !parts.is_empty(),
        "cat_channels requires at least one tensor"
    );
    let (n, h, w) = (parts[0].dim(0), parts[0].dim(2), parts[0].dim(3));
    let mut c_total = 0;
    for p in parts {
        assert_eq!(p.ndim(), 4, "cat_channels requires rank-4 tensors");
        assert_eq!(p.dim(0), n, "cat_channels batch mismatch");
        assert_eq!(p.dim(2), h, "cat_channels height mismatch");
        assert_eq!(p.dim(3), w, "cat_channels width mismatch");
        c_total += p.dim(1);
    }
    let hw = h * w;
    let mut out = vec![0.0f32; n * c_total * hw];
    for ni in 0..n {
        let mut c_off = 0;
        for p in parts {
            let c = p.dim(1);
            let src = &p.data()[ni * c * hw..(ni + 1) * c * hw];
            let dst = &mut out[(ni * c_total + c_off) * hw..(ni * c_total + c_off + c) * hw];
            dst.copy_from_slice(src);
            c_off += c;
        }
    }
    Tensor::from_vec(out, &[n, c_total, h, w])
}

/// Splits a rank-4 tensor along the channel axis into chunks of the given
/// sizes.
///
/// # Panics
///
/// Panics if the sizes do not sum to the channel count.
pub fn split_channels(x: &Tensor, sizes: &[usize]) -> Vec<Tensor> {
    assert_eq!(x.ndim(), 4, "split_channels requires a rank-4 tensor");
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    assert_eq!(
        sizes.iter().sum::<usize>(),
        c,
        "split_channels sizes must sum to the channel count"
    );
    let hw = h * w;
    let mut result = Vec::with_capacity(sizes.len());
    let mut c_off = 0;
    for &sz in sizes {
        let mut out = vec![0.0f32; n * sz * hw];
        for ni in 0..n {
            let src = &x.data()[(ni * c + c_off) * hw..(ni * c + c_off + sz) * hw];
            out[ni * sz * hw..(ni + 1) * sz * hw].copy_from_slice(src);
        }
        result.push(Tensor::from_vec(out, &[n, sz, h, w]));
        c_off += sz;
    }
    result
}

/// Parallel branches whose rank-4 outputs are concatenated along channels —
/// the inception-module topology.
pub struct Branches {
    branches: Vec<Sequential>,
    out_channels: Vec<usize>,
}

impl std::fmt::Debug for Branches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Branches(n={})", self.branches.len())
    }
}

impl Branches {
    /// Creates a branch container from parallel chains.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn new(branches: Vec<Sequential>) -> Self {
        assert!(
            !branches.is_empty(),
            "Branches requires at least one branch"
        );
        Branches {
            branches,
            out_channels: Vec::new(),
        }
    }
}

impl Module for Branches {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let outs: Vec<Tensor> = self
            .branches
            .iter_mut()
            .map(|b| b.forward(x, ctx))
            .collect();
        self.out_channels = outs.iter().map(|o| o.dim(1)).collect();
        let refs: Vec<&Tensor> = outs.iter().collect();
        cat_channels(&refs)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(
            !self.out_channels.is_empty(),
            "Branches::backward called before forward"
        );
        let parts = split_channels(dy, &self.out_channels);
        let mut dx: Option<Tensor> = None;
        for (branch, part) in self.branches.iter_mut().zip(parts.iter()) {
            let g = branch.backward(part);
            match &mut dx {
                Some(acc) => acc.add_assign(&g),
                None => dx = Some(g),
            }
        }
        dx.expect("Branches has at least one branch")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for b in &mut self.branches {
            b.visit_params(f);
        }
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        for b in &mut self.branches {
            b.visit_sites(f);
        }
    }
}

/// A DenseNet-style block: output is `concat(x, body(x))` along channels.
pub struct DenseCat {
    body: Sequential,
    in_channels: usize,
    body_channels: usize,
}

impl std::fmt::Debug for DenseCat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DenseCat(in={}, growth={})",
            self.in_channels, self.body_channels
        )
    }
}

impl DenseCat {
    /// Creates a dense block that concatenates its input with the body
    /// output (`body_channels` = growth rate).
    pub fn new(body: Sequential, in_channels: usize, body_channels: usize) -> Self {
        DenseCat {
            body,
            in_channels,
            body_channels,
        }
    }
}

impl Module for DenseCat {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let new = self.body.forward(x, ctx);
        cat_channels(&[x, &new])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let parts = split_channels(dy, &[self.in_channels, self.body_channels]);
        let mut dx = self.body.backward(&parts[1]);
        dx.add_assign(&parts[0]);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params(f);
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        self.body.visit_sites(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear, Relu};
    use crate::module::{count_params, count_sites};
    use adagp_tensor::{init, Prng};

    #[test]
    fn sequential_forward_backward() {
        let mut rng = Prng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Linear::new(4, 8, true, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(8, 2, true, &mut rng));
        assert_eq!(net.len(), 3);
        let x = Tensor::ones(&[3, 4]);
        let y = net.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[3, 2]);
        let dx = net.backward(&Tensor::ones(&[3, 2]));
        assert_eq!(dx.shape(), &[3, 4]);
        assert_eq!(count_sites(&mut net), 2);
    }

    #[test]
    fn residual_identity_adds_input() {
        // Empty body: y = 0-layer chain output (x) + x = 2x.
        let body = Sequential::new();
        let mut res = Residual::new(body);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let y = res.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.data(), &[2.0, 4.0]);
        let dx = res.backward(&Tensor::ones(&[1, 2]));
        assert_eq!(dx.data(), &[2.0, 2.0]);
    }

    #[test]
    fn residual_gradient_check() {
        let mut rng = Prng::seed_from_u64(2);
        let mut body = Sequential::new();
        body.push(Conv2d::new(2, 2, 3, 1, 1, false, &mut rng));
        let mut res = Residual::new(body);
        let x = init::gaussian(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let y = res.forward(&x, &mut ForwardCtx::train());
        let dx = res.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for i in (0..x.len()).step_by(6) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let up = res.forward(&xp, &mut ForwardCtx::eval()).sum();
            let dn = res.forward(&xm, &mut ForwardCtx::eval()).sum();
            let num = (up - dn) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "dx[{i}] numeric {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn cat_split_channels_roundtrip() {
        let mut rng = Prng::seed_from_u64(3);
        let a = init::gaussian(&[2, 3, 4, 4], 0.0, 1.0, &mut rng);
        let b = init::gaussian(&[2, 5, 4, 4], 0.0, 1.0, &mut rng);
        let c = cat_channels(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 8, 4, 4]);
        let parts = split_channels(&c, &[3, 5]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn branches_concat_and_backward() {
        let mut rng = Prng::seed_from_u64(4);
        let mut b1 = Sequential::new();
        b1.push(Conv2d::new(2, 3, 1, 1, 0, false, &mut rng));
        let mut b2 = Sequential::new();
        b2.push(Conv2d::new(2, 5, 3, 1, 1, false, &mut rng));
        let mut br = Branches::new(vec![b1, b2]);
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let y = br.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
        let dx = br.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(count_sites(&mut br), 2);
    }

    #[test]
    fn dense_cat_grows_channels() {
        let mut rng = Prng::seed_from_u64(5);
        let mut body = Sequential::new();
        body.push(Conv2d::new(4, 2, 3, 1, 1, false, &mut rng));
        let mut dense = DenseCat::new(body, 4, 2);
        let x = Tensor::ones(&[1, 4, 4, 4]);
        let y = dense.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[1, 6, 4, 4]);
        let dx = dense.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn nested_param_counts() {
        let mut rng = Prng::seed_from_u64(6);
        let mut inner = Sequential::new();
        inner.push(Linear::new(2, 2, false, &mut rng));
        let mut outer = Sequential::new();
        outer.push_boxed(Box::new(Residual::new(inner)));
        assert_eq!(count_params(&mut outer), 4);
    }
}
