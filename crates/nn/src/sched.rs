//! Learning-rate schedulers: `ReduceLROnPlateau` (used by the paper for the
//! original models) and `MultiStepLR` (used for the predictor model), §5.2.

/// Reduces the learning rate by `factor` when a monitored metric stops
/// improving for `patience` epochs — mirrors PyTorch's
/// `ReduceLROnPlateau` with default parameters (`factor=0.1`,
/// `patience=10`, `min` mode).
#[derive(Debug, Clone)]
pub struct ReduceLrOnPlateau {
    factor: f32,
    patience: usize,
    best: f32,
    bad_epochs: usize,
    min_lr: f32,
}

impl Default for ReduceLrOnPlateau {
    fn default() -> Self {
        Self::new(0.1, 10)
    }
}

impl ReduceLrOnPlateau {
    /// Creates a plateau scheduler with the given decay factor and
    /// patience.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1)`.
    pub fn new(factor: f32, patience: usize) -> Self {
        assert!(factor > 0.0 && factor < 1.0, "factor must be in (0, 1)");
        ReduceLrOnPlateau {
            factor,
            patience,
            best: f32::INFINITY,
            bad_epochs: 0,
            min_lr: 1e-8,
        }
    }

    /// Feeds this epoch's monitored metric (lower is better); returns the
    /// new learning rate.
    pub fn step(&mut self, metric: f32, current_lr: f32) -> f32 {
        if metric < self.best - 1e-8 {
            self.best = metric;
            self.bad_epochs = 0;
            current_lr
        } else {
            self.bad_epochs += 1;
            if self.bad_epochs > self.patience {
                self.bad_epochs = 0;
                (current_lr * self.factor).max(self.min_lr)
            } else {
                current_lr
            }
        }
    }

    /// Epochs since the last improvement.
    pub fn bad_epochs(&self) -> usize {
        self.bad_epochs
    }
}

/// Multiplies the learning rate by `gamma` at each milestone epoch —
/// PyTorch's `MultiStepLR`.
#[derive(Debug, Clone)]
pub struct MultiStepLr {
    milestones: Vec<usize>,
    gamma: f32,
}

impl MultiStepLr {
    /// Creates a scheduler decaying at the given (sorted) milestone epochs.
    pub fn new(milestones: Vec<usize>, gamma: f32) -> Self {
        MultiStepLr { milestones, gamma }
    }

    /// Learning rate for `epoch` given the base rate.
    pub fn lr_at(&self, base_lr: f32, epoch: usize) -> f32 {
        let decays = self.milestones.iter().filter(|&&m| epoch >= m).count();
        base_lr * self.gamma.powi(decays as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_keeps_lr_while_improving() {
        let mut s = ReduceLrOnPlateau::new(0.1, 2);
        let mut lr = 1.0;
        for m in [5.0, 4.0, 3.0, 2.0] {
            lr = s.step(m, lr);
        }
        assert_eq!(lr, 1.0);
    }

    #[test]
    fn plateau_decays_after_patience() {
        let mut s = ReduceLrOnPlateau::new(0.1, 2);
        let mut lr = 1.0;
        lr = s.step(1.0, lr); // best
        for _ in 0..3 {
            lr = s.step(2.0, lr); // no improvement x3 > patience 2
        }
        assert!((lr - 0.1).abs() < 1e-6);
    }

    #[test]
    fn plateau_resets_counter_on_improvement() {
        let mut s = ReduceLrOnPlateau::new(0.5, 3);
        let mut lr = 1.0;
        lr = s.step(1.0, lr);
        lr = s.step(2.0, lr);
        assert_eq!(s.bad_epochs(), 1);
        lr = s.step(0.5, lr);
        assert_eq!(s.bad_epochs(), 0);
        assert_eq!(lr, 1.0);
    }

    #[test]
    fn plateau_respects_min_lr() {
        let mut s = ReduceLrOnPlateau::new(0.1, 0);
        let mut lr = 1e-7;
        for _ in 0..10 {
            lr = s.step(9.0, lr);
        }
        assert!(lr >= 1e-8);
    }

    #[test]
    fn multistep_decays_at_milestones() {
        let s = MultiStepLr::new(vec![10, 20], 0.1);
        assert_eq!(s.lr_at(1.0, 0), 1.0);
        assert_eq!(s.lr_at(1.0, 9), 1.0);
        assert!((s.lr_at(1.0, 10) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(1.0, 25) - 0.01).abs() < 1e-8);
    }
}
