//! Inception-V3/V4 (Szegedy et al.) — multi-branch inception modules.
//!
//! The reproduction keeps the four-branch module structure (1×1, 3×3,
//! double-3×3 ≈ factorized 5×5, pool+1×1) and the stem/reduction layout;
//! V4 differs from V3 by a deeper stem and more modules per stage, which
//! is what drives their different layer-shape profiles in the cycle model.

use super::ModelConfig;
use crate::containers::{Branches, Sequential};
use crate::layers::{BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu};
use adagp_tensor::Prng;

fn conv_bn(
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    label: &str,
    rng: &mut Prng,
) -> Sequential {
    let mut s = Sequential::new();
    s.push(Conv2d::new(in_ch, out_ch, k, stride, pad, false, rng).with_label(label.to_string()));
    s.push(BatchNorm2d::new(out_ch));
    s.push(Relu::new());
    s
}

/// A four-branch inception module. Branch widths are `base` each, so the
/// output has `4 * base` channels. Branch 4 uses a 1×1 conv (the original's
/// pool branch would need padded stride-1 pooling to keep branch shapes
/// aligned; the 1×1 projection preserves the channel/shape profile).
fn inception_module(in_ch: usize, base: usize, label: &str, rng: &mut Prng) -> Branches {
    // Branch 1: 1x1.
    let b1 = conv_bn(in_ch, base, 1, 1, 0, &format!("{label}.b1"), rng);
    // Branch 2: 1x1 -> 3x3.
    let mut b2 = Sequential::new();
    b2.push_boxed(Box::new(conv_bn(
        in_ch,
        base,
        1,
        1,
        0,
        &format!("{label}.b2a"),
        rng,
    )));
    b2.push_boxed(Box::new(conv_bn(
        base,
        base,
        3,
        1,
        1,
        &format!("{label}.b2b"),
        rng,
    )));
    // Branch 3: 1x1 -> 3x3 -> 3x3 (factorized 5x5).
    let mut b3 = Sequential::new();
    b3.push_boxed(Box::new(conv_bn(
        in_ch,
        base,
        1,
        1,
        0,
        &format!("{label}.b3a"),
        rng,
    )));
    b3.push_boxed(Box::new(conv_bn(
        base,
        base,
        3,
        1,
        1,
        &format!("{label}.b3b"),
        rng,
    )));
    b3.push_boxed(Box::new(conv_bn(
        base,
        base,
        3,
        1,
        1,
        &format!("{label}.b3c"),
        rng,
    )));
    // Branch 4: 1x1 projection.
    let b4 = conv_bn(in_ch, base, 1, 1, 0, &format!("{label}.b4"), rng);
    Branches::new(vec![b1, b2, b3, b4])
}

/// Builds Inception-V3 (scaled): stem + 3 inception stages with
/// max-pool reductions.
pub fn inception_v3(cfg: &ModelConfig, in_ch: usize, rng: &mut Prng) -> Sequential {
    build_inception(cfg, in_ch, &[2, 3, 2], 1, rng)
}

/// Builds Inception-V4 (scaled): deeper stem + more modules per stage.
pub fn inception_v4(cfg: &ModelConfig, in_ch: usize, rng: &mut Prng) -> Sequential {
    build_inception(cfg, in_ch, &[3, 4, 3], 2, rng)
}

fn build_inception(
    cfg: &ModelConfig,
    in_ch: usize,
    stage_modules: &[usize],
    stem_depth: usize,
    rng: &mut Prng,
) -> Sequential {
    let stem_ch = cfg.ch(32).max(4);
    let mut net = Sequential::new();
    net.push_boxed(Box::new(conv_bn(in_ch, stem_ch, 3, 1, 1, "stem1", rng)));
    for i in 0..stem_depth {
        net.push_boxed(Box::new(conv_bn(
            stem_ch,
            stem_ch,
            3,
            1,
            1,
            &format!("stem{}", i + 2),
            rng,
        )));
    }
    let mut ch = stem_ch;
    for (stage, &n_modules) in stage_modules.iter().enumerate() {
        let base = cfg.ch(64 << stage).max(2);
        let n = cfg.blocks(n_modules);
        for m in 0..n {
            let label = format!("inc{}_{}", stage + 1, m + 1);
            net.push_boxed(Box::new(inception_module(ch, base, &label, rng)));
            ch = 4 * base;
        }
        if stage + 1 < stage_modules.len() {
            net.push(MaxPool2d::new(2, 2));
        }
    }
    net.push(GlobalAvgPool::new());
    net.push(Flatten::new());
    net.push(Linear::new(ch, cfg.classes, true, rng).with_label("fc"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{count_sites, ForwardCtx, Module};
    use adagp_tensor::Tensor;

    #[test]
    fn inception_v3_forward_backward() {
        let mut rng = Prng::seed_from_u64(0);
        let cfg = ModelConfig::tiny(10);
        let mut net = inception_v3(&cfg, 3, &mut rng);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = net.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[2, 10]);
        let dx = net.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn v4_is_deeper_than_v3() {
        let mut rng = Prng::seed_from_u64(1);
        let cfg = ModelConfig {
            width: 0.0625,
            depth_div: 1,
            classes: 10,
        };
        let s3 = count_sites(&mut inception_v3(&cfg, 3, &mut rng));
        let s4 = count_sites(&mut inception_v4(&cfg, 3, &mut rng));
        assert!(s4 > s3, "V4 sites {s4} should exceed V3 sites {s3}");
    }

    #[test]
    fn module_output_channels_are_4x_base() {
        let mut rng = Prng::seed_from_u64(2);
        let mut m = inception_module(8, 4, "t", &mut rng);
        let x = Tensor::ones(&[1, 8, 8, 8]);
        let y = m.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[1, 16, 8, 8]);
    }
}
