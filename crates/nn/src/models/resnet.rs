//! ResNet-50/101/152 (He et al.) — bottleneck residual stacks.

use super::ModelConfig;
use crate::containers::{Residual, Sequential};
use crate::layers::{BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, Relu};
use adagp_tensor::Prng;

/// Bottleneck block counts per stage for each depth.
fn stage_blocks(depth: usize) -> [usize; 4] {
    match depth {
        50 => [3, 4, 6, 3],
        101 => [3, 4, 23, 3],
        152 => [3, 8, 36, 3],
        d => panic!("unsupported ResNet depth {d} (use 50, 101 or 152)"),
    }
}

/// A bottleneck: 1×1 reduce → 3×3 → 1×1 expand (×4), each with BN+ReLU,
/// plus a projection shortcut when the shape changes.
fn bottleneck(in_ch: usize, mid_ch: usize, stride: usize, label: &str, rng: &mut Prng) -> Residual {
    let out_ch = mid_ch * 4;
    let mut body = Sequential::new();
    body.push(Conv2d::new(in_ch, mid_ch, 1, 1, 0, false, rng).with_label(format!("{label}.a")));
    body.push(BatchNorm2d::new(mid_ch));
    body.push(Relu::new());
    body.push(
        Conv2d::new(mid_ch, mid_ch, 3, stride, 1, false, rng).with_label(format!("{label}.b")),
    );
    body.push(BatchNorm2d::new(mid_ch));
    body.push(Relu::new());
    body.push(Conv2d::new(mid_ch, out_ch, 1, 1, 0, false, rng).with_label(format!("{label}.c")));
    body.push(BatchNorm2d::new(out_ch));
    if in_ch != out_ch || stride != 1 {
        let proj =
            Conv2d::new(in_ch, out_ch, 1, stride, 0, false, rng).with_label(format!("{label}.p"));
        Residual::with_projection(body, proj)
    } else {
        Residual::new(body)
    }
}

/// Builds a (scaled) bottleneck ResNet.
///
/// # Panics
///
/// Panics if `depth` is not 50, 101 or 152.
pub fn resnet(depth: usize, cfg: &ModelConfig, in_ch: usize, rng: &mut Prng) -> Sequential {
    let blocks = stage_blocks(depth);
    let stem_ch = cfg.ch(64);
    let mut net = Sequential::new();
    net.push(Conv2d::new(in_ch, stem_ch, 3, 1, 1, false, rng).with_label("stem"));
    net.push(BatchNorm2d::new(stem_ch));
    net.push(Relu::new());

    let mut ch = stem_ch;
    for (stage, &n_blocks) in blocks.iter().enumerate() {
        let mid = cfg.ch(64 << stage);
        let n = cfg.blocks(n_blocks);
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            let label = format!("res{}_{}", stage + 2, b + 1);
            net.push_boxed(Box::new(bottleneck(ch, mid, stride, &label, rng)));
            ch = mid * 4;
        }
    }
    net.push(GlobalAvgPool::new());
    net.push(Flatten::new());
    net.push(Linear::new(ch, cfg.classes, true, rng).with_label("fc"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{count_sites, ForwardCtx, Module};
    use adagp_tensor::Tensor;

    #[test]
    fn resnet50_tiny_forward_backward() {
        let mut rng = Prng::seed_from_u64(0);
        let cfg = ModelConfig::tiny(10);
        let mut net = resnet(50, &cfg, 3, &mut rng);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = net.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[2, 10]);
        let dx = net.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn deeper_resnets_have_more_sites() {
        let mut rng = Prng::seed_from_u64(1);
        let cfg = ModelConfig {
            width: 0.125,
            depth_div: 1, // full depth for the count comparison
            classes: 10,
        };
        let s50 = count_sites(&mut resnet(50, &cfg, 3, &mut rng));
        let s101 = count_sites(&mut resnet(101, &cfg, 3, &mut rng));
        let s152 = count_sites(&mut resnet(152, &cfg, 3, &mut rng));
        assert!(s50 < s101 && s101 < s152);
        // ResNet-50: stem + 16 blocks * 3 convs + 4 projections + fc = 54.
        assert_eq!(s50, 1 + 16 * 3 + 4 + 1);
    }

    #[test]
    fn bottleneck_shortcut_projection_when_needed() {
        let mut rng = Prng::seed_from_u64(2);
        let mut b = bottleneck(8, 4, 2, "t", &mut rng);
        let x = Tensor::ones(&[1, 8, 8, 8]);
        let y = b.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[1, 16, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "unsupported ResNet depth")]
    fn bad_depth_panics() {
        let mut rng = Prng::seed_from_u64(3);
        let cfg = ModelConfig::tiny(10);
        let _ = resnet(18, &cfg, 3, &mut rng);
    }
}
