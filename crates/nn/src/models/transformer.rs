//! An encoder–decoder Transformer (Vaswani et al.) with explicit
//! backpropagation, matching the paper's Table 2 setup: three encoder and
//! three decoder layers trained on a translation task.
//!
//! Layers that carry weight matrices (the attention projections, the FFN
//! linears and the vocabulary head) are exposed as ADA-GP prediction
//! sites through [`Module::visit_sites`]; embeddings and layer-norms are
//! trained only in backprop phases, mirroring the paper's focus on
//! weight-gradient prediction.

use crate::layers::{LayerNorm, Linear};
use crate::module::{ForwardCtx, Module, PredictionSite};
use crate::param::Param;
use adagp_tensor::softmax::{gelu, gelu_backward};
use adagp_tensor::{init, Prng, Tensor};

/// Transformer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size (source and target share a vocabulary).
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Encoder layers.
    pub n_enc: usize,
    /// Decoder layers.
    pub n_dec: usize,
    /// Maximum sequence length (for positional encodings).
    pub max_len: usize,
}

impl TransformerConfig {
    /// The paper's Table 2 configuration, width-scaled for CPU: 3 encoder
    /// and 3 decoder layers.
    pub fn paper_like(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 32,
            n_heads: 4,
            d_ff: 64,
            n_enc: 3,
            n_dec: 3,
            max_len: 64,
        }
    }

    /// A minimal config for unit tests.
    pub fn tiny(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            n_enc: 1,
            n_dec: 1,
            max_len: 16,
        }
    }
}

/// Token embedding with scatter-add backward.
#[derive(Debug)]
struct Embedding {
    weight: Param,
    ids_cache: Vec<usize>,
}

impl Embedding {
    fn new(vocab: usize, d_model: usize, rng: &mut Prng) -> Self {
        Embedding {
            weight: Param::new(init::gaussian(&[vocab, d_model], 0.0, 0.02, rng)),
            ids_cache: Vec::new(),
        }
    }

    /// `(tokens,) -> (tokens, d_model)`.
    fn forward(&mut self, ids: &[usize], train: bool) -> Tensor {
        let d = self.weight.value.dim(1);
        let mut out = Vec::with_capacity(ids.len() * d);
        for &id in ids {
            assert!(id < self.weight.value.dim(0), "token id {id} out of vocab");
            out.extend_from_slice(&self.weight.value.data()[id * d..(id + 1) * d]);
        }
        if train {
            self.ids_cache = ids.to_vec();
        }
        Tensor::from_vec(out, &[ids.len(), d])
    }

    fn backward(&mut self, dy: &Tensor) {
        let d = self.weight.value.dim(1);
        for (row, &id) in self.ids_cache.iter().enumerate() {
            let src = &dy.data()[row * d..(row + 1) * d];
            let dst = &mut self.weight.grad.data_mut()[id * d..(id + 1) * d];
            for (g, &v) in dst.iter_mut().zip(src.iter()) {
                *g += v;
            }
        }
    }
}

/// Sinusoidal positional encoding table.
fn positional_encoding(max_len: usize, d_model: usize) -> Tensor {
    let mut data = vec![0.0f32; max_len * d_model];
    for pos in 0..max_len {
        for i in 0..d_model {
            let angle = pos as f32 / 10_000f32.powf(2.0 * (i / 2) as f32 / d_model as f32);
            data[pos * d_model + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    Tensor::from_vec(data, &[max_len, d_model])
}

/// Multi-head attention with cached intermediates for backward.
#[derive(Debug)]
struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    causal: bool,
    // Caches, per forward pass.
    q: Option<Tensor>,
    k: Option<Tensor>,
    v: Option<Tensor>,
    probs: Option<Vec<Tensor>>, // one (L_q, L_k) matrix per (batch, head)
    batch: usize,
    lq: usize,
    lk: usize,
}

impl MultiHeadAttention {
    fn new(d_model: usize, n_heads: usize, causal: bool, label: &str, rng: &mut Prng) -> Self {
        assert_eq!(d_model % n_heads, 0, "n_heads must divide d_model");
        MultiHeadAttention {
            wq: Linear::new(d_model, d_model, true, rng).with_label(format!("{label}.wq")),
            wk: Linear::new(d_model, d_model, true, rng).with_label(format!("{label}.wk")),
            wv: Linear::new(d_model, d_model, true, rng).with_label(format!("{label}.wv")),
            wo: Linear::new(d_model, d_model, true, rng).with_label(format!("{label}.wo")),
            n_heads,
            causal,
            q: None,
            k: None,
            v: None,
            probs: None,
            batch: 0,
            lq: 0,
            lk: 0,
        }
    }

    /// `query (B*Lq, D)`, `key_value (B*Lk, D)` -> `(B*Lq, D)`.
    fn forward(
        &mut self,
        query: &Tensor,
        key_value: &Tensor,
        batch: usize,
        lq: usize,
        lk: usize,
        ctx: &mut ForwardCtx,
    ) -> Tensor {
        let d = query.dim(1);
        let dh = d / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let q = self.wq.forward(query, ctx);
        let k = self.wk.forward(key_value, ctx);
        let v = self.wv.forward(key_value, ctx);

        let mut out = vec![0.0f32; batch * lq * d];
        let mut probs = Vec::with_capacity(batch * self.n_heads);
        for b in 0..batch {
            for h in 0..self.n_heads {
                // Score matrix (lq, lk).
                let mut scores = vec![0.0f32; lq * lk];
                for i in 0..lq {
                    let qrow =
                        &q.data()[((b * lq + i) * d + h * dh)..((b * lq + i) * d + (h + 1) * dh)];
                    for j in 0..lk {
                        if self.causal && j > i {
                            scores[i * lk + j] = f32::NEG_INFINITY;
                            continue;
                        }
                        let krow = &k.data()
                            [((b * lk + j) * d + h * dh)..((b * lk + j) * d + (h + 1) * dh)];
                        let mut acc = 0.0f32;
                        for (&qa, &ka) in qrow.iter().zip(krow.iter()) {
                            acc += qa * ka;
                        }
                        scores[i * lk + j] = acc * scale;
                    }
                }
                // Row-wise softmax.
                let p = adagp_tensor::softmax::softmax(&Tensor::from_vec(scores, &[lq, lk]));
                // Output rows: o_i = sum_j p_ij * v_j.
                for i in 0..lq {
                    let orow =
                        &mut out[((b * lq + i) * d + h * dh)..((b * lq + i) * d + (h + 1) * dh)];
                    for j in 0..lk {
                        let pij = p.data()[i * lk + j];
                        if pij == 0.0 {
                            continue;
                        }
                        let vrow = &v.data()
                            [((b * lk + j) * d + h * dh)..((b * lk + j) * d + (h + 1) * dh)];
                        for (o, &vv) in orow.iter_mut().zip(vrow.iter()) {
                            *o += pij * vv;
                        }
                    }
                }
                probs.push(p);
            }
        }
        let concat = Tensor::from_vec(out, &[batch * lq, d]);
        let y = self.wo.forward(&concat, ctx);
        if ctx.train {
            self.q = Some(q);
            self.k = Some(k);
            self.v = Some(v);
            self.probs = Some(probs);
            self.batch = batch;
            self.lq = lq;
            self.lk = lk;
        }
        y
    }

    /// Returns `(dquery, dkey_value)`.
    fn backward(&mut self, dy: &Tensor) -> (Tensor, Tensor) {
        let q = self.q.as_ref().expect("MHA::backward before forward");
        let k = self.k.as_ref().unwrap();
        let v = self.v.as_ref().unwrap();
        let probs = self.probs.as_ref().unwrap();
        let (batch, lq, lk) = (self.batch, self.lq, self.lk);
        let d = q.dim(1);
        let dh = d / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let dconcat = self.wo.backward(dy);
        let mut dq = vec![0.0f32; q.len()];
        let mut dk = vec![0.0f32; k.len()];
        let mut dv = vec![0.0f32; v.len()];

        for b in 0..batch {
            for h in 0..self.n_heads {
                let p = &probs[b * self.n_heads + h];
                // dP and dV.
                let mut dp = vec![0.0f32; lq * lk];
                for i in 0..lq {
                    let dorow = &dconcat.data()
                        [((b * lq + i) * d + h * dh)..((b * lq + i) * d + (h + 1) * dh)];
                    for j in 0..lk {
                        let vrow = &v.data()
                            [((b * lk + j) * d + h * dh)..((b * lk + j) * d + (h + 1) * dh)];
                        let mut acc = 0.0f32;
                        for (&go, &vv) in dorow.iter().zip(vrow.iter()) {
                            acc += go * vv;
                        }
                        dp[i * lk + j] = acc;
                        let pij = p.data()[i * lk + j];
                        if pij != 0.0 {
                            let dvrow = &mut dv
                                [((b * lk + j) * d + h * dh)..((b * lk + j) * d + (h + 1) * dh)];
                            for (g, &go) in dvrow.iter_mut().zip(dorow.iter()) {
                                *g += pij * go;
                            }
                        }
                    }
                }
                // Softmax backward: ds_ij = p_ij * (dp_ij - sum_j dp_ij p_ij).
                for i in 0..lq {
                    let prow = &p.data()[i * lk..(i + 1) * lk];
                    let dprow = &mut dp[i * lk..(i + 1) * lk];
                    let dot: f32 = prow.iter().zip(dprow.iter()).map(|(&a, &b)| a * b).sum();
                    for (dpv, &pv) in dprow.iter_mut().zip(prow.iter()) {
                        *dpv = pv * (*dpv - dot);
                    }
                }
                // dQ, dK.
                for i in 0..lq {
                    for j in 0..lk {
                        let ds = dp[i * lk + j] * scale;
                        if ds == 0.0 {
                            continue;
                        }
                        let qbase = (b * lq + i) * d + h * dh;
                        let kbase = (b * lk + j) * d + h * dh;
                        for t in 0..dh {
                            dq[qbase + t] += ds * k.data()[kbase + t];
                            dk[kbase + t] += ds * q.data()[qbase + t];
                        }
                    }
                }
            }
        }
        let dquery = self.wq.backward(&Tensor::from_vec(dq, &[batch * lq, d]));
        let dkey = self.wk.backward(&Tensor::from_vec(dk, &[batch * lk, d]));
        let dval = self.wv.backward(&Tensor::from_vec(dv, &[batch * lk, d]));
        (dquery, dkey.add(&dval))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        self.wq.visit_sites(f);
        self.wk.visit_sites(f);
        self.wv.visit_sites(f);
        self.wo.visit_sites(f);
    }
}

/// Position-wise feed-forward network with GELU.
#[derive(Debug)]
struct FeedForward {
    fc1: Linear,
    fc2: Linear,
    pre_gelu: Option<Tensor>,
}

impl FeedForward {
    fn new(d_model: usize, d_ff: usize, label: &str, rng: &mut Prng) -> Self {
        FeedForward {
            fc1: Linear::new(d_model, d_ff, true, rng).with_label(format!("{label}.ff1")),
            fc2: Linear::new(d_ff, d_model, true, rng).with_label(format!("{label}.ff2")),
            pre_gelu: None,
        }
    }

    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let h = self.fc1.forward(x, ctx);
        let a = gelu(&h);
        if ctx.train {
            self.pre_gelu = Some(h);
        }
        self.fc2.forward(&a, ctx)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let da = self.fc2.backward(dy);
        let h = self
            .pre_gelu
            .as_ref()
            .expect("FFN::backward before forward");
        let dh = gelu_backward(h, &da);
        self.fc1.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        self.fc1.visit_sites(f);
        self.fc2.visit_sites(f);
    }
}

/// Encoder layer: post-norm `LN(x + attn)` then `LN(x + ffn)`.
#[derive(Debug)]
struct EncoderLayer {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

impl EncoderLayer {
    fn new(cfg: &TransformerConfig, idx: usize, rng: &mut Prng) -> Self {
        let label = format!("enc{idx}");
        EncoderLayer {
            attn: MultiHeadAttention::new(cfg.d_model, cfg.n_heads, false, &label, rng),
            ffn: FeedForward::new(cfg.d_model, cfg.d_ff, &label, rng),
            ln1: LayerNorm::new(cfg.d_model),
            ln2: LayerNorm::new(cfg.d_model),
        }
    }

    fn forward(&mut self, x: &Tensor, batch: usize, len: usize, ctx: &mut ForwardCtx) -> Tensor {
        let a = self.attn.forward(x, x, batch, len, len, ctx);
        let h = self.ln1.forward(&x.add(&a), ctx);
        let f = self.ffn.forward(&h, ctx);
        self.ln2.forward(&h.add(&f), ctx)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let dsum2 = self.ln2.backward(dy);
        let dh = dsum2.add(&self.ffn.backward(&dsum2));
        let dsum1 = self.ln1.backward(&dh);
        let (dq, dkv) = self.attn.backward(&dsum1);
        dsum1.add(&dq).add(&dkv)
    }
}

/// Decoder layer: causal self-attention, cross-attention over the encoder
/// memory, then FFN (post-norm).
#[derive(Debug)]
struct DecoderLayer {
    self_attn: MultiHeadAttention,
    cross_attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    ln3: LayerNorm,
}

impl DecoderLayer {
    fn new(cfg: &TransformerConfig, idx: usize, rng: &mut Prng) -> Self {
        let label = format!("dec{idx}");
        DecoderLayer {
            self_attn: MultiHeadAttention::new(
                cfg.d_model,
                cfg.n_heads,
                true,
                &format!("{label}.self"),
                rng,
            ),
            cross_attn: MultiHeadAttention::new(
                cfg.d_model,
                cfg.n_heads,
                false,
                &format!("{label}.cross"),
                rng,
            ),
            ffn: FeedForward::new(cfg.d_model, cfg.d_ff, &label, rng),
            ln1: LayerNorm::new(cfg.d_model),
            ln2: LayerNorm::new(cfg.d_model),
            ln3: LayerNorm::new(cfg.d_model),
        }
    }

    fn forward(
        &mut self,
        x: &Tensor,
        memory: &Tensor,
        batch: usize,
        lt: usize,
        ls: usize,
        ctx: &mut ForwardCtx,
    ) -> Tensor {
        let a = self.self_attn.forward(x, x, batch, lt, lt, ctx);
        let h1 = self.ln1.forward(&x.add(&a), ctx);
        let c = self.cross_attn.forward(&h1, memory, batch, lt, ls, ctx);
        let h2 = self.ln2.forward(&h1.add(&c), ctx);
        let f = self.ffn.forward(&h2, ctx);
        self.ln3.forward(&h2.add(&f), ctx)
    }

    /// Returns `(dx, dmemory)`.
    fn backward(&mut self, dy: &Tensor) -> (Tensor, Tensor) {
        let dsum3 = self.ln3.backward(dy);
        let dh2 = dsum3.add(&self.ffn.backward(&dsum3));
        let dsum2 = self.ln2.backward(&dh2);
        let (dq_cross, dmem) = self.cross_attn.backward(&dsum2);
        let dh1 = dsum2.add(&dq_cross);
        let dsum1 = self.ln1.backward(&dh1);
        let (dq_self, dkv_self) = self.self_attn.backward(&dsum1);
        (dsum1.add(&dq_self).add(&dkv_self), dmem)
    }
}

/// The full encoder–decoder Transformer.
///
/// ```
/// use adagp_nn::models::{Transformer, TransformerConfig};
/// use adagp_tensor::Prng;
/// let mut rng = Prng::seed_from_u64(0);
/// let mut model = Transformer::new(TransformerConfig::tiny(32), &mut rng);
/// let logits = model.forward_train(&[vec![3, 4, 5]], &[vec![6, 7, 8]]);
/// assert_eq!(logits.shape(), &[3, 32]);
/// ```
#[derive(Debug)]
pub struct Transformer {
    cfg: TransformerConfig,
    src_embed: Embedding,
    tgt_embed: Embedding,
    pos: Tensor,
    encoder: Vec<EncoderLayer>,
    decoder: Vec<DecoderLayer>,
    head: Linear,
    // Shape cache for backward.
    batch: usize,
    src_len: usize,
    tgt_len: usize,
}

impl Transformer {
    /// Builds a transformer with the given config.
    pub fn new(cfg: TransformerConfig, rng: &mut Prng) -> Self {
        Transformer {
            src_embed: Embedding::new(cfg.vocab, cfg.d_model, rng),
            tgt_embed: Embedding::new(cfg.vocab, cfg.d_model, rng),
            pos: positional_encoding(cfg.max_len, cfg.d_model),
            encoder: (0..cfg.n_enc)
                .map(|i| EncoderLayer::new(&cfg, i, rng))
                .collect(),
            decoder: (0..cfg.n_dec)
                .map(|i| DecoderLayer::new(&cfg, i, rng))
                .collect(),
            head: Linear::new(cfg.d_model, cfg.vocab, true, rng).with_label("head"),
            cfg,
            batch: 0,
            src_len: 0,
            tgt_len: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    fn embed(&mut self, ids: &[Vec<usize>], is_src: bool, train: bool) -> (Tensor, usize, usize) {
        let batch = ids.len();
        let len = ids[0].len();
        assert!(len <= self.cfg.max_len, "sequence longer than max_len");
        let flat: Vec<usize> = ids.iter().flat_map(|row| row.iter().copied()).collect();
        let emb = if is_src {
            self.src_embed.forward(&flat, train)
        } else {
            self.tgt_embed.forward(&flat, train)
        };
        // Add positional encodings.
        let d = self.cfg.d_model;
        let mut data = emb.into_vec();
        for b in 0..batch {
            for p in 0..len {
                let base = (b * len + p) * d;
                for t in 0..d {
                    data[base + t] += self.pos.data()[p * d + t];
                }
            }
        }
        (Tensor::from_vec(data, &[batch * len, d]), batch, len)
    }

    /// Training forward: teacher-forced decode.
    ///
    /// `src` and `tgt_in` are batches of token-id rows (all rows of equal
    /// length). Returns logits `(batch * tgt_len, vocab)`.
    ///
    /// # Panics
    ///
    /// Panics if batches are empty or row lengths differ.
    pub fn forward_train(&mut self, src: &[Vec<usize>], tgt_in: &[Vec<usize>]) -> Tensor {
        self.forward_impl(src, tgt_in, &mut ForwardCtx::train())
    }

    /// Forward with an explicit context (e.g. recording activations for
    /// ADA-GP).
    pub fn forward_with_ctx(
        &mut self,
        src: &[Vec<usize>],
        tgt_in: &[Vec<usize>],
        ctx: &mut ForwardCtx,
    ) -> Tensor {
        self.forward_impl(src, tgt_in, ctx)
    }

    fn forward_impl(
        &mut self,
        src: &[Vec<usize>],
        tgt_in: &[Vec<usize>],
        ctx: &mut ForwardCtx,
    ) -> Tensor {
        assert!(
            !src.is_empty() && src.len() == tgt_in.len(),
            "batch mismatch"
        );
        let (mut h, batch, ls) = self.embed(src, true, ctx.train);
        for layer in &mut self.encoder {
            h = layer.forward(&h, batch, ls, ctx);
        }
        let memory = h;
        let (mut t, _, lt) = self.embed(tgt_in, false, ctx.train);
        for layer in &mut self.decoder {
            t = layer.forward(&t, &memory, batch, lt, ls, ctx);
        }
        self.batch = batch;
        self.src_len = ls;
        self.tgt_len = lt;
        self.head.forward(&t, ctx)
    }

    /// Backward from the logits gradient; accumulates all parameter
    /// gradients.
    pub fn backward(&mut self, dlogits: &Tensor) {
        let mut dt = self.head.backward(dlogits);
        let mut dmem_total = Tensor::zeros(&[self.batch * self.src_len, self.cfg.d_model]);
        for layer in self.decoder.iter_mut().rev() {
            let (dx, dmem) = layer.backward(&dt);
            dt = dx;
            dmem_total.add_assign(&dmem);
        }
        self.tgt_embed.backward(&dt);
        let mut dh = dmem_total;
        for layer in self.encoder.iter_mut().rev() {
            dh = layer.backward(&dh);
        }
        self.src_embed.backward(&dh);
    }

    /// Greedy autoregressive decode of `max_steps` tokens given `src`.
    pub fn greedy_decode(
        &mut self,
        src: &[Vec<usize>],
        bos: usize,
        max_steps: usize,
    ) -> Vec<Vec<usize>> {
        let batch = src.len();
        let mut outputs: Vec<Vec<usize>> = vec![vec![bos]; batch];
        for _ in 0..max_steps {
            let tgt_in: Vec<Vec<usize>> = outputs.clone();
            let logits = self.forward_impl(src, &tgt_in, &mut ForwardCtx::eval());
            let v = self.cfg.vocab;
            let lt = tgt_in[0].len();
            for (b, out_row) in outputs.iter_mut().enumerate() {
                let row = &logits.data()[((b * lt) + lt - 1) * v..((b * lt) + lt) * v];
                let next = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                out_row.push(next);
            }
        }
        outputs
            .into_iter()
            .map(|mut o| {
                o.remove(0);
                o
            })
            .collect()
    }
}

impl Module for Transformer {
    /// Not the primary entry point — the transformer consumes token ids via
    /// [`Transformer::forward_train`]. This adapter exists so optimizers
    /// and ADA-GP site visitors can treat it like any other model.
    ///
    /// # Panics
    ///
    /// Always panics; use `forward_train`.
    fn forward(&mut self, _x: &Tensor, _ctx: &mut ForwardCtx) -> Tensor {
        panic!("Transformer::forward takes token ids; use forward_train")
    }

    /// # Panics
    ///
    /// Always panics; use [`Transformer::backward`].
    fn backward(&mut self, _dy: &Tensor) -> Tensor {
        panic!("use Transformer::backward(dlogits)")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.src_embed.weight);
        f(&mut self.tgt_embed.weight);
        for l in &mut self.encoder {
            l.attn.visit_params(f);
            l.ffn.visit_params(f);
            l.ln1.visit_params(f);
            l.ln2.visit_params(f);
        }
        for l in &mut self.decoder {
            l.self_attn.visit_params(f);
            l.cross_attn.visit_params(f);
            l.ffn.visit_params(f);
            l.ln1.visit_params(f);
            l.ln2.visit_params(f);
            l.ln3.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn visit_sites(&mut self, f: &mut dyn FnMut(&mut dyn PredictionSite)) {
        for l in &mut self.encoder {
            l.attn.visit_sites(f);
            l.ffn.visit_sites(f);
        }
        for l in &mut self.decoder {
            l.self_attn.visit_sites(f);
            l.cross_attn.visit_sites(f);
            l.ffn.visit_sites(f);
        }
        self.head.visit_sites(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::count_sites;
    use adagp_tensor::softmax::cross_entropy;

    #[test]
    fn forward_shapes() {
        let mut rng = Prng::seed_from_u64(0);
        let mut model = Transformer::new(TransformerConfig::tiny(32), &mut rng);
        let src = vec![vec![3, 4, 5, 6], vec![7, 8, 9, 10]];
        let tgt = vec![vec![3, 4, 5], vec![6, 7, 8]];
        let logits = model.forward_train(&src, &tgt);
        assert_eq!(logits.shape(), &[2 * 3, 32]);
    }

    #[test]
    fn backward_populates_all_grads() {
        let mut rng = Prng::seed_from_u64(1);
        let mut model = Transformer::new(TransformerConfig::tiny(16), &mut rng);
        let src = vec![vec![3, 4]];
        let tgt = vec![vec![5, 6]];
        let logits = model.forward_train(&src, &tgt);
        let (_, dl) = cross_entropy(&logits, &[5, 6]);
        model.backward(&dl);
        let mut nonzero = 0;
        let mut total = 0;
        model.visit_params(&mut |p| {
            total += 1;
            if p.grad.norm() > 0.0 {
                nonzero += 1;
            }
        });
        // Nearly all parameters should receive gradient (biases of unused
        // masked positions may stay zero).
        assert!(nonzero * 10 >= total * 9, "{nonzero}/{total} grads nonzero");
    }

    #[test]
    fn learns_a_constant_mapping() {
        // Tiny overfit check: always output token 7.
        let mut rng = Prng::seed_from_u64(2);
        let mut model = Transformer::new(TransformerConfig::tiny(16), &mut rng);
        let mut opt = crate::optim::Adam::new(0.01);
        let src = vec![vec![3, 4, 5]];
        let tgt_in = vec![vec![1, 7, 7]];
        let targets = [7usize, 7, 7];
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            let logits = model.forward_train(&src, &tgt_in);
            let (loss, dl) = cross_entropy(&logits, &targets);
            model.backward(&dl);
            crate::optim::Optimizer::step(&mut opt, &mut model);
            last = loss;
        }
        assert!(last < 0.1, "loss {last}");
    }

    #[test]
    fn site_count_matches_structure() {
        let mut rng = Prng::seed_from_u64(3);
        let cfg = TransformerConfig::paper_like(64);
        let mut model = Transformer::new(cfg, &mut rng);
        // enc: 3 * (4 attn + 2 ffn); dec: 3 * (8 attn + 2 ffn); head: 1.
        assert_eq!(count_sites(&mut model), 3 * 6 + 3 * 10 + 1);
    }

    #[test]
    fn greedy_decode_produces_tokens() {
        let mut rng = Prng::seed_from_u64(4);
        let mut model = Transformer::new(TransformerConfig::tiny(16), &mut rng);
        let out = model.greedy_decode(&[vec![3, 4, 5]], 1, 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
        assert!(out[0].iter().all(|&t| t < 16));
    }

    #[test]
    fn causal_mask_blocks_future() {
        // With a causal mask, position 0's output must not depend on later
        // target tokens.
        let mut rng = Prng::seed_from_u64(5);
        let mut model = Transformer::new(TransformerConfig::tiny(16), &mut rng);
        let src = vec![vec![3, 4]];
        let a = model.forward_train(&src, &[vec![5, 6, 7]]);
        let b = model.forward_train(&src, &[vec![5, 9, 10]]);
        let v = 16;
        for t in 0..v {
            assert!(
                (a.data()[t] - b.data()[t]).abs() < 1e-5,
                "position 0 logit {t} changed when future tokens changed"
            );
        }
    }
}
