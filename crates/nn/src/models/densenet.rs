//! DenseNet-121/161/169/201 (Huang et al.) — densely connected blocks with
//! transition layers.

use super::ModelConfig;
use crate::containers::{DenseCat, Sequential};
use crate::layers::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, Relu};
use adagp_tensor::Prng;

/// `(block counts, growth rate)` for each DenseNet depth.
fn config(depth: usize) -> ([usize; 4], usize) {
    match depth {
        121 => ([6, 12, 24, 16], 32),
        161 => ([6, 12, 36, 24], 48),
        169 => ([6, 12, 32, 32], 32),
        201 => ([6, 12, 48, 32], 32),
        d => panic!("unsupported DenseNet depth {d} (use 121, 161, 169 or 201)"),
    }
}

/// One dense layer: BN → ReLU → 3×3 conv producing `growth` channels,
/// concatenated with its input.
fn dense_layer(in_ch: usize, growth: usize, label: &str, rng: &mut Prng) -> DenseCat {
    let mut body = Sequential::new();
    body.push(BatchNorm2d::new(in_ch));
    body.push(Relu::new());
    body.push(Conv2d::new(in_ch, growth, 3, 1, 1, false, rng).with_label(label.to_string()));
    DenseCat::new(body, in_ch, growth)
}

/// Builds a (scaled) DenseNet.
///
/// Transition layers halve both the channel count (1×1 conv) and the
/// spatial size (2×2 average pool) between dense blocks, as in the paper.
///
/// # Panics
///
/// Panics if `depth` is not one of 121/161/169/201.
pub fn densenet(depth: usize, cfg: &ModelConfig, in_ch: usize, rng: &mut Prng) -> Sequential {
    let (blocks, growth_ref) = config(depth);
    let growth = cfg.ch(growth_ref);
    let stem_ch = cfg.ch(64);
    let mut net = Sequential::new();
    net.push(Conv2d::new(in_ch, stem_ch, 3, 1, 1, false, rng).with_label("stem"));
    net.push(BatchNorm2d::new(stem_ch));
    net.push(Relu::new());

    let mut ch = stem_ch;
    for (stage, &n_layers) in blocks.iter().enumerate() {
        let n = cfg.blocks(n_layers);
        for l in 0..n {
            let label = format!("dense{}_{}", stage + 1, l + 1);
            net.push_boxed(Box::new(dense_layer(ch, growth, &label, rng)));
            ch += growth;
        }
        if stage + 1 < blocks.len() {
            // Transition: compress channels by half and downsample.
            let out = (ch / 2).max(2);
            net.push(BatchNorm2d::new(ch));
            net.push(Relu::new());
            net.push(
                Conv2d::new(ch, out, 1, 1, 0, false, rng).with_label(format!("trans{}", stage + 1)),
            );
            net.push(AvgPool2d::new(2, 2));
            ch = out;
        }
    }
    net.push(BatchNorm2d::new(ch));
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Flatten::new());
    net.push(Linear::new(ch, cfg.classes, true, rng).with_label("fc"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{count_sites, ForwardCtx, Module};
    use adagp_tensor::Tensor;

    #[test]
    fn densenet121_tiny_forward_backward() {
        let mut rng = Prng::seed_from_u64(0);
        let cfg = ModelConfig::tiny(10);
        let mut net = densenet(121, &cfg, 3, &mut rng);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = net.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[2, 10]);
        let dx = net.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn deeper_variants_have_more_sites() {
        let mut rng = Prng::seed_from_u64(1);
        let cfg = ModelConfig {
            width: 0.0625,
            depth_div: 2,
            classes: 10,
        };
        let s121 = count_sites(&mut densenet(121, &cfg, 3, &mut rng));
        let s201 = count_sites(&mut densenet(201, &cfg, 3, &mut rng));
        assert!(s121 < s201);
    }

    #[test]
    fn dense_layer_grows_channels() {
        let mut rng = Prng::seed_from_u64(2);
        let mut layer = dense_layer(8, 4, "t", &mut rng);
        let x = Tensor::ones(&[1, 8, 6, 6]);
        let y = layer.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[1, 12, 6, 6]);
    }

    #[test]
    #[should_panic(expected = "unsupported DenseNet depth")]
    fn bad_depth_panics() {
        let mut rng = Prng::seed_from_u64(3);
        let cfg = ModelConfig::tiny(10);
        let _ = densenet(100, &cfg, 3, &mut rng);
    }
}
