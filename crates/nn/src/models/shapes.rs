//! Paper-scale layer shapes for every evaluated model.
//!
//! The accelerator cycle model (crate `adagp-accel`) evaluates the *real*
//! layer dimensions of each architecture — VGG13's `Conv2d(128, 256, 3x3)`
//! at 28², not the width-scaled trainable version — because the speed-up
//! figures (16–20) depend on the actual compute/parameter ratios. No
//! weights are materialized here; only shapes.

/// Kind of a compute layer for cost modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard convolution.
    Conv,
    /// Depthwise convolution (MACs scale with channels, not channel²).
    DepthwiseConv,
    /// Fully connected.
    Linear,
}

/// Shape of one parameterized layer at paper scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerShape {
    /// Human-readable label.
    pub label: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Input channels (or input features for linear).
    pub in_ch: usize,
    /// Output channels (or output features).
    pub out_ch: usize,
    /// Square kernel size (1 for linear).
    pub k: usize,
    /// Output height (1 for linear).
    pub h_out: usize,
    /// Output width (1 for linear).
    pub w_out: usize,
}

impl LayerShape {
    /// Convolution shape constructor.
    pub fn conv(
        label: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        out: usize,
    ) -> Self {
        LayerShape {
            label: label.into(),
            kind: LayerKind::Conv,
            in_ch,
            out_ch,
            k,
            h_out: out,
            w_out: out,
        }
    }

    /// Depthwise convolution shape constructor (`in_ch == out_ch`).
    pub fn dwconv(label: impl Into<String>, ch: usize, k: usize, out: usize) -> Self {
        LayerShape {
            label: label.into(),
            kind: LayerKind::DepthwiseConv,
            in_ch: ch,
            out_ch: ch,
            k,
            h_out: out,
            w_out: out,
        }
    }

    /// Linear shape constructor.
    pub fn linear(label: impl Into<String>, in_f: usize, out_f: usize) -> Self {
        LayerShape {
            label: label.into(),
            kind: LayerKind::Linear,
            in_ch: in_f,
            out_ch: out_f,
            k: 1,
            h_out: 1,
            w_out: 1,
        }
    }

    /// Multiply–accumulate operations for one input sample's forward pass.
    pub fn macs(&self) -> u64 {
        match self.kind {
            LayerKind::Conv => {
                self.out_ch as u64
                    * self.in_ch as u64
                    * (self.k * self.k) as u64
                    * (self.h_out * self.w_out) as u64
            }
            LayerKind::DepthwiseConv => {
                self.out_ch as u64 * (self.k * self.k) as u64 * (self.h_out * self.w_out) as u64
            }
            LayerKind::Linear => self.in_ch as u64 * self.out_ch as u64,
        }
    }

    /// Number of weights (= number of gradients ADA-GP must predict).
    pub fn weight_count(&self) -> u64 {
        match self.kind {
            LayerKind::Conv => (self.out_ch * self.in_ch * self.k * self.k) as u64,
            LayerKind::DepthwiseConv => (self.out_ch * self.k * self.k) as u64,
            LayerKind::Linear => (self.in_ch * self.out_ch) as u64,
        }
    }

    /// Output activation element count per sample.
    pub fn out_activations(&self) -> u64 {
        (self.out_ch * self.h_out * self.w_out) as u64
    }
}

/// Dataset-dependent input resolution: CIFAR-scale 32², ImageNet-scale 224².
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputScale {
    /// 32×32 (CIFAR10/CIFAR100).
    Cifar,
    /// 224×224 (ImageNet).
    ImageNet,
}

impl InputScale {
    /// Side length in pixels.
    pub fn size(&self) -> usize {
        match self {
            InputScale::Cifar => 32,
            InputScale::ImageNet => 224,
        }
    }
}

/// Paper-scale shapes for a model at the given input scale.
pub fn model_shapes(model: super::CnnModel, scale: InputScale) -> Vec<LayerShape> {
    use super::CnnModel::*;
    let s = scale.size();
    match model {
        Vgg13 => vgg_shapes(&[2, 2, 2, 2, 2], s),
        Vgg16 => vgg_shapes(&[2, 2, 3, 3, 3], s),
        Vgg19 => vgg_shapes(&[2, 2, 4, 4, 4], s),
        ResNet50 => resnet_shapes(&[3, 4, 6, 3], s),
        ResNet101 => resnet_shapes(&[3, 4, 23, 3], s),
        ResNet152 => resnet_shapes(&[3, 8, 36, 3], s),
        DenseNet121 => densenet_shapes(&[6, 12, 24, 16], 32, s),
        DenseNet161 => densenet_shapes(&[6, 12, 36, 24], 48, s),
        DenseNet169 => densenet_shapes(&[6, 12, 32, 32], 32, s),
        DenseNet201 => densenet_shapes(&[6, 12, 48, 32], 32, s),
        InceptionV3 => inception_shapes(&[3, 4, 2], 2, s),
        InceptionV4 => inception_shapes(&[4, 7, 3], 3, s),
        MobileNetV2 => mobilenet_shapes(s),
    }
}

fn vgg_shapes(stages: &[usize; 5], input: usize) -> Vec<LayerShape> {
    let widths = [64usize, 128, 256, 512, 512];
    let mut shapes = Vec::new();
    let mut ch = 3usize;
    let mut size = input;
    for (stage, (&n, &w)) in stages.iter().zip(widths.iter()).enumerate() {
        for i in 0..n {
            shapes.push(LayerShape::conv(
                format!("conv{}_{}", stage + 1, i + 1),
                ch,
                w,
                3,
                size,
            ));
            ch = w;
        }
        if size >= 2 {
            size /= 2;
        }
    }
    let flat = ch * size * size;
    shapes.push(LayerShape::linear("fc1", flat, 4096));
    shapes.push(LayerShape::linear("fc2", 4096, 4096));
    shapes.push(LayerShape::linear("fc3", 4096, 1000));
    shapes
}

fn resnet_shapes(blocks: &[usize; 4], input: usize) -> Vec<LayerShape> {
    let mut shapes = Vec::new();
    // Stem: 7x7/2 for ImageNet scale, 3x3/1 for CIFAR scale.
    let (mut size, stem_k) = if input >= 64 {
        (input / 4, 7) // conv stride 2 + maxpool stride 2
    } else {
        (input, 3)
    };
    shapes.push(LayerShape::conv("stem", 3, 64, stem_k, size));
    let mut ch = 64usize;
    for (stage, &n) in blocks.iter().enumerate() {
        let mid = 64 << stage;
        for b in 0..n {
            if stage > 0 && b == 0 && size >= 2 {
                size /= 2;
            }
            let label = |part: &str| format!("res{}_{}{part}", stage + 2, b + 1);
            shapes.push(LayerShape::conv(label(".a"), ch, mid, 1, size));
            shapes.push(LayerShape::conv(label(".b"), mid, mid, 3, size));
            shapes.push(LayerShape::conv(label(".c"), mid, mid * 4, 1, size));
            if b == 0 {
                shapes.push(LayerShape::conv(label(".p"), ch, mid * 4, 1, size));
            }
            ch = mid * 4;
        }
    }
    shapes.push(LayerShape::linear("fc", ch, 1000));
    shapes
}

fn densenet_shapes(blocks: &[usize; 4], growth: usize, input: usize) -> Vec<LayerShape> {
    let mut shapes = Vec::new();
    let mut size = if input >= 64 { input / 4 } else { input };
    let mut ch = 2 * growth;
    shapes.push(LayerShape::conv(
        "stem",
        3,
        ch,
        if input >= 64 { 7 } else { 3 },
        size,
    ));
    for (stage, &n) in blocks.iter().enumerate() {
        for l in 0..n {
            // Bottleneck 1x1 to 4*growth, then 3x3 to growth.
            shapes.push(LayerShape::conv(
                format!("dense{}_{}a", stage + 1, l + 1),
                ch,
                4 * growth,
                1,
                size,
            ));
            shapes.push(LayerShape::conv(
                format!("dense{}_{}b", stage + 1, l + 1),
                4 * growth,
                growth,
                3,
                size,
            ));
            ch += growth;
        }
        if stage + 1 < blocks.len() {
            let out = ch / 2;
            shapes.push(LayerShape::conv(
                format!("trans{}", stage + 1),
                ch,
                out,
                1,
                size,
            ));
            if size >= 2 {
                size /= 2;
            }
            ch = out;
        }
    }
    shapes.push(LayerShape::linear("fc", ch, 1000));
    shapes
}

fn inception_shapes(
    stage_modules: &[usize; 3],
    stem_depth: usize,
    input: usize,
) -> Vec<LayerShape> {
    let mut shapes = Vec::new();
    let mut size = if input >= 64 { input / 4 } else { input };
    let mut ch = 3usize;
    for i in 0..stem_depth {
        let out = 32 << i.min(2);
        shapes.push(LayerShape::conv(format!("stem{}", i + 1), ch, out, 3, size));
        ch = out;
    }
    for (stage, &n) in stage_modules.iter().enumerate() {
        let base = 64 << stage;
        for m in 0..n {
            let label = |b: &str| format!("inc{}_{}{b}", stage + 1, m + 1);
            // Branch 1: 1x1.
            shapes.push(LayerShape::conv(label(".b1"), ch, base, 1, size));
            // Branch 2: 1x1 -> 3x3.
            shapes.push(LayerShape::conv(label(".b2a"), ch, base, 1, size));
            shapes.push(LayerShape::conv(label(".b2b"), base, base, 3, size));
            // Branch 3: 1x1 -> 3x3 -> 3x3.
            shapes.push(LayerShape::conv(label(".b3a"), ch, base, 1, size));
            shapes.push(LayerShape::conv(label(".b3b"), base, base, 3, size));
            shapes.push(LayerShape::conv(label(".b3c"), base, base, 3, size));
            // Branch 4: pool projection 1x1.
            shapes.push(LayerShape::conv(label(".b4"), ch, base, 1, size));
            ch = 4 * base;
        }
        if stage + 1 < stage_modules.len() && size >= 2 {
            size /= 2;
        }
    }
    shapes.push(LayerShape::linear("fc", ch, 1000));
    shapes
}

fn mobilenet_shapes(input: usize) -> Vec<LayerShape> {
    // (expansion, out_ch, repeats, stride) from the MobileNet-V2 paper.
    const STAGES: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut shapes = Vec::new();
    let mut size = if input >= 64 { input / 2 } else { input };
    shapes.push(LayerShape::conv("stem", 3, 32, 3, size));
    let mut ch = 32usize;
    for (stage, &(e, out, n, stride)) in STAGES.iter().enumerate() {
        for b in 0..n {
            // CIFAR-scale MobileNets keep stage 2 at stride 1.
            let s = if b == 0 && !(input < 64 && stage == 1) {
                stride
            } else {
                1
            };
            if s == 2 && size >= 2 {
                size /= 2;
            }
            let hidden = ch * e;
            let label = |p: &str| format!("ir{}_{}{p}", stage + 1, b + 1);
            if e != 1 {
                shapes.push(LayerShape::conv(label(".e"), ch, hidden, 1, size));
            }
            shapes.push(LayerShape::dwconv(label(".d"), hidden, 3, size));
            shapes.push(LayerShape::conv(label(".p"), hidden, out, 1, size));
            ch = out;
        }
    }
    shapes.push(LayerShape::conv("head", ch, 1280, 1, size));
    shapes.push(LayerShape::linear("fc", 1280, 1000));
    shapes
}

/// Shapes for the trainable VGG13 CIFAR variant's ten conv layers — the
/// per-layer characterization of Figure 16 uses these.
pub fn vgg13_conv_shapes_cifar() -> Vec<LayerShape> {
    vgg_shapes(&[2, 2, 2, 2, 2], 32)
        .into_iter()
        .filter(|s| s.kind == LayerKind::Conv)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::CnnModel;
    use super::*;

    #[test]
    fn vgg13_has_10_convs_3_fcs() {
        let shapes = model_shapes(CnnModel::Vgg13, InputScale::Cifar);
        let convs = shapes.iter().filter(|s| s.kind == LayerKind::Conv).count();
        let fcs = shapes
            .iter()
            .filter(|s| s.kind == LayerKind::Linear)
            .count();
        assert_eq!(convs, 10);
        assert_eq!(fcs, 3);
    }

    #[test]
    fn vgg13_paper_example_layer() {
        // §3.6: "the fourth layer of the VGG13 model — Conv2d(128, 256,
        // 3x3) ... output activation size (batch, 256, 28, 28)" at 224²
        // input — layer conv3_1 in our labelling (28 = 224 / 8).
        let shapes = model_shapes(CnnModel::Vgg13, InputScale::ImageNet);
        let l = shapes.iter().find(|s| s.label == "conv3_1").unwrap();
        assert_eq!(l.in_ch, 128);
        assert_eq!(l.out_ch, 256);
        assert_eq!(l.k, 3);
        assert_eq!(l.h_out, 56); // stage 3 runs at 56² (28² after its pool)
        assert_eq!(l.weight_count(), 128 * 256 * 9);
    }

    #[test]
    fn deeper_models_cost_more() {
        for scale in [InputScale::Cifar, InputScale::ImageNet] {
            let m50: u64 = model_shapes(CnnModel::ResNet50, scale)
                .iter()
                .map(|s| s.macs())
                .sum();
            let m101: u64 = model_shapes(CnnModel::ResNet101, scale)
                .iter()
                .map(|s| s.macs())
                .sum();
            let m152: u64 = model_shapes(CnnModel::ResNet152, scale)
                .iter()
                .map(|s| s.macs())
                .sum();
            assert!(m50 < m101 && m101 < m152);
        }
    }

    #[test]
    fn imagenet_scale_exceeds_cifar_scale() {
        for model in CnnModel::all() {
            let c: u64 = model_shapes(model, InputScale::Cifar)
                .iter()
                .map(|s| s.macs())
                .sum();
            let i: u64 = model_shapes(model, InputScale::ImageNet)
                .iter()
                .map(|s| s.macs())
                .sum();
            assert!(i > c, "{}: imagenet {i} <= cifar {c}", model.name());
        }
    }

    #[test]
    fn resnet50_conv_count() {
        let shapes = model_shapes(CnnModel::ResNet50, InputScale::ImageNet);
        let convs = shapes.iter().filter(|s| s.kind == LayerKind::Conv).count();
        // stem + 16 blocks * 3 + 4 projections = 53.
        assert_eq!(convs, 53);
    }

    #[test]
    fn depthwise_macs_are_cheap() {
        let dw = LayerShape::dwconv("d", 128, 3, 14);
        let full = LayerShape::conv("c", 128, 128, 3, 14);
        assert_eq!(dw.macs() * 128, full.macs());
    }

    #[test]
    fn mobilenet_contains_depthwise() {
        let shapes = model_shapes(CnnModel::MobileNetV2, InputScale::Cifar);
        assert!(shapes.iter().any(|s| s.kind == LayerKind::DepthwiseConv));
    }

    #[test]
    fn all_models_produce_nonempty_shapes() {
        for model in CnnModel::all() {
            let shapes = model_shapes(model, InputScale::Cifar);
            assert!(!shapes.is_empty(), "{} empty", model.name());
            assert!(shapes.iter().all(|s| s.macs() > 0));
        }
    }

    #[test]
    fn fig16_shapes_are_the_ten_vgg13_convs() {
        let shapes = vgg13_conv_shapes_cifar();
        assert_eq!(shapes.len(), 10);
        assert_eq!(shapes[0].label, "conv1_1");
    }
}
