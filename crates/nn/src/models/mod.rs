//! The paper's model zoo (§5.2): thirteen CNNs plus a Transformer and a
//! YOLO-style detector.
//!
//! Two views of each model exist:
//!
//! * **Trainable modules** (this module's builders) — structurally faithful
//!   but width/depth-scaled so CPU training converges in seconds. Used for
//!   the accuracy experiments (Tables 1–3).
//! * **Paper-scale layer shapes** ([`shapes`]) — the real layer dimensions
//!   of each architecture, consumed by the accelerator cycle model for the
//!   speed-up experiments (Figures 16–20). No weights are materialized.

mod densenet;
mod inception;
mod mobilenet;
mod resnet;
pub mod shapes;
mod transformer;
mod vgg;
mod yolo;

pub use densenet::densenet;
pub use inception::{inception_v3, inception_v4};
pub use mobilenet::mobilenet_v2;
pub use resnet::resnet;
pub use transformer::{Transformer, TransformerConfig};
pub use vgg::vgg;
pub use yolo::{yolo_v3_tiny, YoloHead};

use crate::containers::Sequential;
use adagp_tensor::Prng;

/// Identifier for the thirteen CNN models of Table 1 / Figures 17–19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CnnModel {
    /// ResNet-50 (bottleneck 3-4-6-3).
    ResNet50,
    /// ResNet-101 (bottleneck 3-4-23-3).
    ResNet101,
    /// ResNet-152 (bottleneck 3-8-36-3).
    ResNet152,
    /// Inception-V4.
    InceptionV4,
    /// Inception-V3.
    InceptionV3,
    /// VGG-13.
    Vgg13,
    /// VGG-16.
    Vgg16,
    /// VGG-19.
    Vgg19,
    /// DenseNet-121 (blocks 6-12-24-16, growth 32).
    DenseNet121,
    /// DenseNet-161 (blocks 6-12-36-24, growth 48).
    DenseNet161,
    /// DenseNet-169 (blocks 6-12-32-32, growth 32).
    DenseNet169,
    /// DenseNet-201 (blocks 6-12-48-32, growth 32).
    DenseNet201,
    /// MobileNet-V2.
    MobileNetV2,
}

impl CnnModel {
    /// All thirteen models in the paper's reporting order.
    pub fn all() -> [CnnModel; 13] {
        use CnnModel::*;
        [
            ResNet50,
            ResNet101,
            ResNet152,
            InceptionV4,
            InceptionV3,
            Vgg13,
            Vgg16,
            Vgg19,
            DenseNet121,
            DenseNet161,
            DenseNet169,
            DenseNet201,
            MobileNetV2,
        ]
    }

    /// Display name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        use CnnModel::*;
        match self {
            ResNet50 => "ResNet50",
            ResNet101 => "ResNet101",
            ResNet152 => "ResNet152",
            InceptionV4 => "Inception-V4",
            InceptionV3 => "Inception-V3",
            Vgg13 => "VGG13",
            Vgg16 => "VGG16",
            Vgg19 => "VGG19",
            DenseNet121 => "DenseNet121",
            DenseNet161 => "DenseNet161",
            DenseNet169 => "DenseNet169",
            DenseNet201 => "DenseNet201",
            MobileNetV2 => "MobileNet-V2",
        }
    }
}

/// Width/depth scaling applied to the trainable builders so they run on
/// CPU. `width` multiplies channel counts (floor 2); `depth` divides block
/// counts (ceil 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Channel width multiplier in `(0, 1]`.
    pub width: f32,
    /// Depth divisor (>= 1): block counts are divided by this.
    pub depth_div: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl ModelConfig {
    /// A tiny configuration for CPU experiments.
    pub fn tiny(classes: usize) -> Self {
        ModelConfig {
            width: 0.125,
            depth_div: 4,
            classes,
        }
    }

    /// Scales a reference channel count.
    pub fn ch(&self, reference: usize) -> usize {
        ((reference as f32 * self.width).round() as usize).max(2)
    }

    /// Scales a reference block count.
    pub fn blocks(&self, reference: usize) -> usize {
        reference.div_ceil(self.depth_div)
    }
}

/// Builds the trainable (scaled) version of a CNN model for images of
/// `in_size` pixels and `in_ch` channels.
pub fn build_cnn(
    model: CnnModel,
    cfg: &ModelConfig,
    in_ch: usize,
    in_size: usize,
    rng: &mut Prng,
) -> Sequential {
    use CnnModel::*;
    match model {
        Vgg13 => vgg(13, cfg, in_ch, in_size, rng),
        Vgg16 => vgg(16, cfg, in_ch, in_size, rng),
        Vgg19 => vgg(19, cfg, in_ch, in_size, rng),
        ResNet50 => resnet(50, cfg, in_ch, rng),
        ResNet101 => resnet(101, cfg, in_ch, rng),
        ResNet152 => resnet(152, cfg, in_ch, rng),
        DenseNet121 => densenet(121, cfg, in_ch, rng),
        DenseNet161 => densenet(161, cfg, in_ch, rng),
        DenseNet169 => densenet(169, cfg, in_ch, rng),
        DenseNet201 => densenet(201, cfg, in_ch, rng),
        InceptionV3 => inception_v3(cfg, in_ch, rng),
        InceptionV4 => inception_v4(cfg, in_ch, rng),
        MobileNetV2 => mobilenet_v2(cfg, in_ch, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_listed_once() {
        let all = CnnModel::all();
        assert_eq!(all.len(), 13);
        let names: std::collections::HashSet<_> = all.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn config_scaling() {
        let cfg = ModelConfig::tiny(10);
        assert_eq!(cfg.ch(64), 8);
        assert_eq!(cfg.ch(8), 2); // floor at 2
        assert_eq!(cfg.blocks(6), 2);
        assert_eq!(cfg.blocks(3), 1);
    }
}
