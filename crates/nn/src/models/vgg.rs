//! VGG-13/16/19 (Simonyan & Zisserman) — plain conv/pool stacks.

use super::ModelConfig;
use crate::containers::Sequential;
use crate::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
use adagp_tensor::Prng;

/// Per-stage conv counts for each VGG depth (the five stages of the
/// original paper; stage widths are 64, 128, 256, 512, 512).
fn stage_convs(depth: usize) -> [usize; 5] {
    match depth {
        13 => [2, 2, 2, 2, 2],
        16 => [2, 2, 3, 3, 3],
        19 => [2, 2, 4, 4, 4],
        d => panic!("unsupported VGG depth {d} (use 13, 16 or 19)"),
    }
}

/// Builds a (width-scaled) VGG network.
///
/// Max-pools are emitted only while the spatial size stays >= 2, so the
/// same topology works for CIFAR-scale and ImageNet-scale inputs.
///
/// # Panics
///
/// Panics if `depth` is not 13, 16 or 19.
pub fn vgg(
    depth: usize,
    cfg: &ModelConfig,
    in_ch: usize,
    in_size: usize,
    rng: &mut Prng,
) -> Sequential {
    let stages = stage_convs(depth);
    let widths = [64, 128, 256, 512, 512].map(|w| cfg.ch(w));
    let mut net = Sequential::new();
    let mut ch = in_ch;
    let mut size = in_size;
    for (stage, (&n_convs, &width)) in stages.iter().zip(widths.iter()).enumerate() {
        for i in 0..n_convs {
            net.push(
                Conv2d::new(ch, width, 3, 1, 1, true, rng).with_label(format!(
                    "conv{}_{}",
                    stage + 1,
                    i + 1
                )),
            );
            net.push(Relu::new());
            ch = width;
        }
        if size >= 4 {
            net.push(MaxPool2d::new(2, 2));
            size /= 2;
        }
    }
    net.push(Flatten::new());
    let flat = ch * size * size;
    let hidden = cfg.ch(4096).max(8);
    net.push(Linear::new(flat, hidden, true, rng).with_label("fc1"));
    net.push(Relu::new());
    net.push(Linear::new(hidden, cfg.classes, true, rng).with_label("fc2"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{count_sites, site_metas, ForwardCtx, Module};
    use adagp_tensor::Tensor;

    #[test]
    fn vgg13_site_count() {
        let mut rng = Prng::seed_from_u64(0);
        let cfg = ModelConfig::tiny(10);
        let mut net = vgg(13, &cfg, 3, 16, &mut rng);
        // 10 convs + 2 linears.
        assert_eq!(count_sites(&mut net), 12);
    }

    #[test]
    fn vgg_depths_have_more_sites() {
        let mut rng = Prng::seed_from_u64(0);
        let cfg = ModelConfig::tiny(10);
        let s13 = count_sites(&mut vgg(13, &cfg, 3, 16, &mut rng));
        let s16 = count_sites(&mut vgg(16, &cfg, 3, 16, &mut rng));
        let s19 = count_sites(&mut vgg(19, &cfg, 3, 16, &mut rng));
        assert!(s13 < s16 && s16 < s19);
        assert_eq!(s19, 16 + 2);
    }

    #[test]
    fn vgg13_forward_backward() {
        let mut rng = Prng::seed_from_u64(1);
        let cfg = ModelConfig::tiny(10);
        let mut net = vgg(13, &cfg, 3, 16, &mut rng);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = net.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[2, 10]);
        let dx = net.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn site_labels_are_stage_indexed() {
        let mut rng = Prng::seed_from_u64(2);
        let cfg = ModelConfig::tiny(10);
        let mut net = vgg(13, &cfg, 3, 16, &mut rng);
        let metas = site_metas(&mut net);
        assert_eq!(metas[0].label, "conv1_1");
        assert_eq!(metas.last().unwrap().label, "fc2");
    }

    #[test]
    #[should_panic(expected = "unsupported VGG depth")]
    fn bad_depth_panics() {
        let mut rng = Prng::seed_from_u64(3);
        let cfg = ModelConfig::tiny(10);
        let _ = vgg(11, &cfg, 3, 16, &mut rng);
    }
}
