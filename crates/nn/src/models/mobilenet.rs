//! MobileNet-V2 (Sandler et al.) — inverted residual blocks with depthwise
//! convolutions.

use super::ModelConfig;
use crate::containers::{Residual, Sequential};
use crate::layers::{BatchNorm2d, Conv2d, DepthwiseConv2d, Flatten, GlobalAvgPool, Linear, Relu};
use adagp_tensor::Prng;

/// MobileNet-V2 inverted residual settings: `(expansion, out_ch, repeats,
/// stride)` per stage, from the original paper.
const STAGES: [(usize, usize, usize, usize); 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 1), // stride 1 at CIFAR scale (original uses 2 at 224²)
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// One inverted residual: 1×1 expand → depthwise 3×3 → 1×1 project, with a
/// skip connection when shapes allow.
fn inverted_residual(
    in_ch: usize,
    out_ch: usize,
    expansion: usize,
    stride: usize,
    label: &str,
    rng: &mut Prng,
) -> Box<dyn crate::module::Module> {
    let hidden = (in_ch * expansion).max(2);
    let mut body = Sequential::new();
    if expansion != 1 {
        body.push(Conv2d::new(in_ch, hidden, 1, 1, 0, false, rng).with_label(format!("{label}.e")));
        body.push(BatchNorm2d::new(hidden));
        body.push(Relu::new());
    }
    body.push(DepthwiseConv2d::new(hidden, 3, stride, 1, rng).with_label(format!("{label}.d")));
    body.push(BatchNorm2d::new(hidden));
    body.push(Relu::new());
    body.push(Conv2d::new(hidden, out_ch, 1, 1, 0, false, rng).with_label(format!("{label}.p")));
    body.push(BatchNorm2d::new(out_ch));
    if stride == 1 && in_ch == out_ch {
        Box::new(Residual::new(body))
    } else {
        Box::new(body)
    }
}

/// Builds a (scaled) MobileNet-V2.
pub fn mobilenet_v2(cfg: &ModelConfig, in_ch: usize, rng: &mut Prng) -> Sequential {
    let stem_ch = cfg.ch(32).max(4);
    let mut net = Sequential::new();
    net.push(Conv2d::new(in_ch, stem_ch, 3, 1, 1, false, rng).with_label("stem"));
    net.push(BatchNorm2d::new(stem_ch));
    net.push(Relu::new());

    let mut ch = stem_ch;
    for (stage, &(expansion, out_ref, repeats, stride)) in STAGES.iter().enumerate() {
        let out_ch = cfg.ch(out_ref);
        let n = cfg.blocks(repeats);
        for b in 0..n {
            let s = if b == 0 { stride } else { 1 };
            let label = format!("ir{}_{}", stage + 1, b + 1);
            net.push_boxed(inverted_residual(ch, out_ch, expansion, s, &label, rng));
            ch = out_ch;
        }
    }
    let head_ch = cfg.ch(1280).max(8);
    net.push(Conv2d::new(ch, head_ch, 1, 1, 0, false, rng).with_label("head"));
    net.push(BatchNorm2d::new(head_ch));
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Flatten::new());
    net.push(Linear::new(head_ch, cfg.classes, true, rng).with_label("fc"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{count_sites, ForwardCtx, Module};
    use adagp_tensor::Tensor;

    #[test]
    fn mobilenet_forward_backward() {
        let mut rng = Prng::seed_from_u64(0);
        let cfg = ModelConfig::tiny(10);
        let mut net = mobilenet_v2(&cfg, 3, &mut rng);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = net.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[2, 10]);
        let dx = net.backward(&Tensor::ones(&[2, 10]));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn inverted_residual_skip_only_when_shapes_match() {
        let mut rng = Prng::seed_from_u64(1);
        // Same in/out + stride 1: residual (skip path exists).
        let mut same = inverted_residual(8, 8, 6, 1, "a", &mut rng);
        let x = Tensor::ones(&[1, 8, 8, 8]);
        let y = same.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[1, 8, 8, 8]);
        // Stride 2: plain sequential, spatial halves.
        let mut down = inverted_residual(8, 16, 6, 2, "b", &mut rng);
        let y = down.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[1, 16, 4, 4]);
    }

    #[test]
    fn has_depthwise_sites() {
        let mut rng = Prng::seed_from_u64(2);
        let cfg = ModelConfig::tiny(10);
        let mut net = mobilenet_v2(&cfg, 3, &mut rng);
        assert!(count_sites(&mut net) > 10);
    }
}
