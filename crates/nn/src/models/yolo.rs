//! A YOLO-v3-style single-scale object detector (Redmon & Farhadi) for the
//! Table 3 experiment: conv backbone with leaky-ReLU, grid head predicting
//! per-cell objectness, box offsets and class scores.

use super::ModelConfig;
use crate::containers::Sequential;
use crate::data::BoxLabel;
use crate::layers::{BatchNorm2d, Conv2d, LeakyRelu, MaxPool2d};
use crate::metrics::Detection;
use adagp_tensor::{Prng, Tensor};

/// Builds the detector backbone + head.
///
/// Output is `(B, 5 + classes, G, G)` where `G = in_size / 8`: channels are
/// `[tx, ty, tw, th, obj, class_0..class_C]` per grid cell.
pub fn yolo_v3_tiny(cfg: &ModelConfig, classes: usize, rng: &mut Prng) -> Sequential {
    let w = [16, 32, 64, 128].map(|c| cfg.ch(c).max(4));
    let mut net = Sequential::new();
    let mut ch = 3;
    for (i, &width) in w.iter().enumerate() {
        net.push(Conv2d::new(ch, width, 3, 1, 1, false, rng).with_label(format!("yolo_c{i}")));
        net.push(BatchNorm2d::new(width));
        net.push(LeakyRelu::new(0.1));
        if i < 3 {
            net.push(MaxPool2d::new(2, 2));
        }
        ch = width;
    }
    net.push(Conv2d::new(ch, 5 + classes, 1, 1, 0, true, rng).with_label("yolo_head"));
    net
}

/// Loss/decoding logic for the grid head.
#[derive(Debug, Clone, Copy)]
pub struct YoloHead {
    /// Number of object classes.
    pub classes: usize,
    /// Weight of the box-regression term.
    pub lambda_box: f32,
    /// Weight of the no-object objectness term.
    pub lambda_noobj: f32,
}

impl YoloHead {
    /// Creates a head with the standard YOLO loss weights.
    pub fn new(classes: usize) -> Self {
        YoloHead {
            classes,
            lambda_box: 5.0,
            lambda_noobj: 0.5,
        }
    }

    /// Computes the detection loss and its gradient with respect to the raw
    /// head output.
    ///
    /// Box offsets/sizes pass through a sigmoid; objectness uses BCE (1 for
    /// the responsible cell, 0 elsewhere); classification uses softmax CE
    /// at the responsible cell.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not `(B, 5 + classes, G, G)` or batch sizes
    /// disagree.
    pub fn loss(&self, raw: &Tensor, labels: &[BoxLabel]) -> (f32, Tensor) {
        assert_eq!(raw.ndim(), 4, "yolo head output must be rank-4");
        let (b, c, g, g2) = (raw.dim(0), raw.dim(1), raw.dim(2), raw.dim(3));
        assert_eq!(g, g2, "grid must be square");
        assert_eq!(c, 5 + self.classes, "channel count mismatch");
        assert_eq!(b, labels.len(), "batch mismatch");
        let mut grad = Tensor::zeros(raw.shape());
        let mut loss = 0.0f32;
        let n_cells = (b * g * g) as f32;
        let sig = |v: f32| 1.0 / (1.0 + (-v).exp());

        for (bi, label) in labels.iter().enumerate() {
            let cell_x = ((label.cx * g as f32) as usize).min(g - 1);
            let cell_y = ((label.cy * g as f32) as usize).min(g - 1);
            let at = |ch: usize, y: usize, x: usize| ((bi * c + ch) * g + y) * g + x;

            // Objectness BCE over every cell.
            for y in 0..g {
                for x in 0..g {
                    let idx = at(4, y, x);
                    let p = sig(raw.data()[idx]);
                    let target = if y == cell_y && x == cell_x { 1.0 } else { 0.0 };
                    let weight = if target > 0.5 { 1.0 } else { self.lambda_noobj };
                    let p_c = p.clamp(1e-6, 1.0 - 1e-6);
                    loss -=
                        weight * (target * p_c.ln() + (1.0 - target) * (1.0 - p_c).ln()) / n_cells;
                    // d(BCE with sigmoid)/draw = p - target.
                    grad.data_mut()[idx] += weight * (p - target) / n_cells;
                }
            }

            // Box regression at the responsible cell (sigmoid-squashed MSE).
            let tx_target = label.cx * g as f32 - cell_x as f32;
            let ty_target = label.cy * g as f32 - cell_y as f32;
            let targets = [tx_target, ty_target, label.w, label.h];
            for (ch, &t) in targets.iter().enumerate() {
                let idx = at(ch, cell_y, cell_x);
                let p = sig(raw.data()[idx]);
                let diff = p - t;
                loss += self.lambda_box * diff * diff / b as f32;
                grad.data_mut()[idx] += self.lambda_box * 2.0 * diff * p * (1.0 - p) / b as f32;
            }

            // Classification CE at the responsible cell.
            let logits: Vec<f32> = (0..self.classes)
                .map(|k| raw.data()[at(5 + k, cell_y, cell_x)])
                .collect();
            let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&l| (l - m).exp()).collect();
            let denom: f32 = exps.iter().sum();
            for k in 0..self.classes {
                let p = exps[k] / denom;
                let target = if k == label.class { 1.0 } else { 0.0 };
                if target > 0.5 {
                    loss -= p.max(1e-9).ln() / b as f32;
                }
                grad.data_mut()[at(5 + k, cell_y, cell_x)] += (p - target) / b as f32;
            }
        }
        (loss, grad)
    }

    /// Decodes the single highest-objectness detection per image.
    pub fn decode(&self, raw: &Tensor) -> Vec<Detection> {
        let (b, c, g, _) = (raw.dim(0), raw.dim(1), raw.dim(2), raw.dim(3));
        let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
        let mut dets = Vec::with_capacity(b);
        for bi in 0..b {
            let at = |ch: usize, y: usize, x: usize| ((bi * c + ch) * g + y) * g + x;
            let mut best = (0usize, 0usize, f32::NEG_INFINITY);
            for y in 0..g {
                for x in 0..g {
                    let o = raw.data()[at(4, y, x)];
                    if o > best.2 {
                        best = (y, x, o);
                    }
                }
            }
            let (y, x, obj_raw) = best;
            let tx = sig(raw.data()[at(0, y, x)]);
            let ty = sig(raw.data()[at(1, y, x)]);
            let tw = sig(raw.data()[at(2, y, x)]);
            let th = sig(raw.data()[at(3, y, x)]);
            let class = (0..self.classes)
                .max_by(|&a, &bk| {
                    raw.data()[at(5 + a, y, x)].total_cmp(&raw.data()[at(5 + bk, y, x)])
                })
                .unwrap_or(0);
            dets.push(Detection {
                image: bi,
                label: BoxLabel {
                    class,
                    cx: (x as f32 + tx) / g as f32,
                    cy: (y as f32 + ty) / g as f32,
                    w: tw.max(1e-3),
                    h: th.max(1e-3),
                },
                score: sig(obj_raw),
            });
        }
        dets
    }

    /// Fraction (percent) of images whose responsible-cell class argmax is
    /// correct — the "Class Acc" column of Table 3.
    pub fn class_accuracy(&self, raw: &Tensor, labels: &[BoxLabel]) -> f32 {
        let (b, c, g, _) = (raw.dim(0), raw.dim(1), raw.dim(2), raw.dim(3));
        let mut correct = 0;
        for (bi, label) in labels.iter().enumerate() {
            let cell_x = ((label.cx * g as f32) as usize).min(g - 1);
            let cell_y = ((label.cy * g as f32) as usize).min(g - 1);
            let at = |ch: usize| ((bi * c + ch) * g + cell_y) * g + cell_x;
            let pred = (0..self.classes)
                .max_by(|&a, &bk| raw.data()[at(5 + a)].total_cmp(&raw.data()[at(5 + bk)]))
                .unwrap_or(0);
            if pred == label.class {
                correct += 1;
            }
        }
        100.0 * correct as f32 / b.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{ForwardCtx, Module};

    #[test]
    fn backbone_output_grid() {
        let mut rng = Prng::seed_from_u64(0);
        let cfg = ModelConfig::tiny(20);
        let mut net = yolo_v3_tiny(&cfg, 20, &mut rng);
        let x = Tensor::ones(&[2, 3, 32, 32]);
        let y = net.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), &[2, 25, 4, 4]);
    }

    fn label(class: usize) -> BoxLabel {
        BoxLabel {
            class,
            cx: 0.55,
            cy: 0.55,
            w: 0.3,
            h: 0.3,
        }
    }

    #[test]
    fn loss_is_finite_and_grad_shaped() {
        let head = YoloHead::new(4);
        let raw = Tensor::zeros(&[2, 9, 4, 4]);
        let labels = vec![label(0), label(3)];
        let (loss, grad) = head.loss(&raw, &labels);
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(grad.shape(), raw.shape());
        assert!(grad.norm() > 0.0);
    }

    #[test]
    fn loss_gradient_fd() {
        let head = YoloHead::new(3);
        let mut rng = Prng::seed_from_u64(1);
        let raw = adagp_tensor::init::gaussian(&[1, 8, 2, 2], 0.0, 0.5, &mut rng);
        let labels = vec![label(1)];
        let (_, grad) = head.loss(&raw, &labels);
        let eps = 1e-2;
        for i in 0..raw.len() {
            let mut rp = raw.clone();
            rp.data_mut()[i] += eps;
            let mut rm = raw.clone();
            rm.data_mut()[i] -= eps;
            let num = (head.loss(&rp, &labels).0 - head.loss(&rm, &labels).0) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 5e-3,
                "grad[{i}] numeric {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn decode_finds_planted_object() {
        let head = YoloHead::new(2);
        let mut raw = Tensor::full(&[1, 7, 4, 4], -4.0);
        // Plant a strong object at cell (1, 2), class 1.
        let g = 4;
        let at = |ch: usize, y: usize, x: usize| ((ch) * g + y) * g + x;
        raw.data_mut()[at(4, 1, 2)] = 6.0; // objectness
        raw.data_mut()[at(6, 1, 2)] = 5.0; // class 1 logit
        let dets = head.decode(&raw);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].label.class, 1);
        // Center is inside cell (row 1, col 2).
        assert!(dets[0].label.cx > 0.5 && dets[0].label.cx < 0.75);
        assert!(dets[0].label.cy > 0.25 && dets[0].label.cy < 0.5);
    }

    #[test]
    fn class_accuracy_counts_argmax() {
        let head = YoloHead::new(2);
        let mut raw = Tensor::zeros(&[1, 7, 2, 2]);
        // Responsible cell for (0.55, 0.55) on a 2-grid is (1, 1).
        let at = |ch: usize, y: usize, x: usize| ((ch) * 2 + y) * 2 + x;
        raw.data_mut()[at(6, 1, 1)] = 3.0;
        assert_eq!(head.class_accuracy(&raw, &[label(1)]), 100.0);
        assert_eq!(head.class_accuracy(&raw, &[label(0)]), 0.0);
    }
}
