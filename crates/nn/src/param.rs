//! Trainable parameters: a value tensor paired with its gradient
//! accumulator.

use adagp_tensor::Tensor;

/// A trainable parameter with its accumulated gradient.
///
/// Layers own their `Param`s; optimizers visit them through
/// [`crate::Module::visit_params`]. ADA-GP's Phase GP writes *predicted*
/// gradients directly into [`Param::grad`] before the optimizer step —
/// which is precisely how the backpropagation pass is skipped.
///
/// ```
/// use adagp_nn::Param;
/// use adagp_tensor::Tensor;
/// let mut p = Param::new(Tensor::ones(&[2, 2]));
/// assert_eq!(p.grad.data(), &[0.0; 4]);
/// p.grad = Tensor::ones(&[2, 2]);
/// p.zero_grad();
/// assert_eq!(p.grad.data(), &[0.0; 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().iter_mut().for_each(|g| *g = 0.0);
    }

    /// Accumulates `g` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different shape than the parameter.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        self.grad.add_assign(g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn accumulate_adds() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::ones(&[2]));
        p.accumulate_grad(&Tensor::ones(&[2]));
        assert_eq!(p.grad.data(), &[2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn accumulate_shape_mismatch_panics() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::ones(&[3]));
    }
}
