//! Property-based tests of the layer framework: shape invariants, gradient
//! flow and parameter bookkeeping across randomized layer configurations.
//!
//! The build environment is offline, so instead of proptest these are
//! seeded randomized sweeps driven by the workspace's own [`Prng`]: each
//! property runs across `CASES` pseudo-random configurations drawn from the
//! same ranges the original proptest strategies used.

use adagp_nn::containers::{Residual, Sequential};
use adagp_nn::layers::{BatchNorm2d, Conv2d, DepthwiseConv2d, Linear, Relu};
use adagp_nn::module::{count_params, count_sites, zero_grads, ForwardCtx, Module};
use adagp_nn::optim::{Optimizer, Sgd};
use adagp_tensor::{init, Prng, Tensor};

const CASES: u64 = 32;

/// Uniform draw from `lo..hi` (half-open, like a proptest range strategy).
fn draw(rng: &mut Prng, lo: usize, hi: usize) -> usize {
    lo + rng.below(hi - lo)
}

/// Runs `body` for `CASES` seeded cases.
fn cases(mut body: impl FnMut(&mut Prng)) {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x1a7e_0000 + case);
        body(&mut rng);
    }
}

/// Any conv config: backward input-gradient shape equals input shape, and
/// weight gradients are populated.
#[test]
fn conv_backward_shapes() {
    cases(|rng| {
        let in_ch = draw(rng, 1, 5);
        let out_ch = draw(rng, 1, 6);
        let k = draw(rng, 1, 4);
        let hw = draw(rng, 4, 10);
        let stride = draw(rng, 1, 3);
        let pad = k / 2;
        if hw + 2 * pad < k {
            return; // proptest's prop_assume! equivalent
        }
        let mut conv = Conv2d::new(in_ch, out_ch, k, stride, pad, true, rng);
        let x = init::gaussian(&[2, in_ch, hw, hw], 0.0, 1.0, rng);
        let y = conv.forward(&x, &mut ForwardCtx::train());
        let dx = conv.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        let mut grads_nonzero = false;
        conv.visit_params(&mut |p| grads_nonzero |= p.grad.norm() > 0.0);
        assert!(grads_nonzero);
    });
}

/// Linear layers: parameter count is exactly `in·out (+ out)`.
#[test]
fn linear_param_count() {
    cases(|rng| {
        let inf = draw(rng, 1, 32);
        let outf = draw(rng, 1, 32);
        let bias = rng.below(2) == 1;
        let mut lin = Linear::new(inf, outf, bias, rng);
        let expected = inf * outf + if bias { outf } else { 0 };
        assert_eq!(count_params(&mut lin), expected);
        assert_eq!(count_sites(&mut lin), 1);
    });
}

/// SGD step with zero gradients leaves parameters unchanged.
#[test]
fn sgd_noop_on_zero_grads() {
    cases(|rng| {
        let mut lin = Linear::new(4, 3, true, rng);
        zero_grads(&mut lin);
        let before = lin.weight().value.clone();
        let mut opt = Sgd::new(0.1, 0.9);
        opt.step(&mut lin);
        assert_eq!(lin.weight().value.clone(), before);
    });
}

/// BatchNorm in eval mode is an affine map: doubling gamma doubles the
/// centred output.
#[test]
fn batchnorm_eval_is_affine() {
    cases(|rng| {
        let mut bn = BatchNorm2d::new(3);
        // Prime the running stats.
        let x = init::gaussian(&[4, 3, 4, 4], 0.5, 1.5, rng);
        bn.forward(&x, &mut ForwardCtx::train());
        let y1 = bn.forward(&x, &mut ForwardCtx::eval());
        bn.visit_params(&mut |p| {
            if p.value.len() == 3 && p.value.data()[0] != 0.0 {
                // gamma starts at ones; scale it.
                p.value.scale_in_place(2.0);
            }
        });
        let y2 = bn.forward(&x, &mut ForwardCtx::eval());
        // Doubling both gamma and beta doubles the output exactly.
        assert!(y2.allclose(&y1.scale(2.0), 1e-3));
    });
}

/// Depthwise conv keeps channel count for any config.
#[test]
fn depthwise_preserves_channels() {
    cases(|rng| {
        let ch = draw(rng, 1, 6);
        let hw = draw(rng, 4, 9);
        let mut dw = DepthwiseConv2d::new(ch, 3, 1, 1, rng);
        let x = init::gaussian(&[1, ch, hw, hw], 0.0, 1.0, rng);
        let y = dw.forward(&x, &mut ForwardCtx::train());
        assert_eq!(y.shape(), x.shape());
    });
}

/// Residual blocks: output = body(x) + x exactly, for any body.
#[test]
fn residual_adds_skip() {
    for case in 0..CASES {
        let seed = 0x1a7e_0000 + case;
        let mut rng = Prng::seed_from_u64(seed);
        let mut body = Sequential::new();
        body.push(Conv2d::new(2, 2, 3, 1, 1, false, &mut rng));
        let x = init::gaussian(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);

        // Clone of the body for the reference computation (same seed, same
        // draw order, so identical weights).
        let mut rng2 = Prng::seed_from_u64(seed);
        let mut body_ref = Sequential::new();
        body_ref.push(Conv2d::new(2, 2, 3, 1, 1, false, &mut rng2));
        let expected = body_ref.forward(&x, &mut ForwardCtx::eval()).add(&x);

        let mut res = Residual::new(body);
        let y = res.forward(&x, &mut ForwardCtx::eval());
        assert!(y.allclose(&expected, 1e-5));
    }
}

/// Gradient flow: a Sequential of depth d still propagates a gradient back
/// to its input.
#[test]
fn deep_chain_gradient_flows() {
    cases(|rng| {
        let depth = draw(rng, 1, 6);
        let mut net = Sequential::new();
        for _ in 0..depth {
            net.push(Conv2d::new(2, 2, 3, 1, 1, false, rng));
            net.push(Relu::new());
        }
        let x = init::gaussian(&[1, 2, 6, 6], 0.3, 1.0, rng);
        let y = net.forward(&x, &mut ForwardCtx::train());
        let dx = net.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.norm().is_finite());
    });
}
