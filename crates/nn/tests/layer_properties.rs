//! Property-based tests of the layer framework: shape invariants,
//! gradient flow and parameter bookkeeping across randomized layer
//! configurations.

use adagp_nn::containers::{Residual, Sequential};
use adagp_nn::layers::{BatchNorm2d, Conv2d, DepthwiseConv2d, Linear, Relu};
use adagp_nn::module::{count_params, count_sites, zero_grads, ForwardCtx, Module};
use adagp_nn::optim::{Optimizer, Sgd};
use adagp_tensor::{init, Prng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any conv config: backward input-gradient shape equals input shape,
    /// and weight gradients are populated.
    #[test]
    fn conv_backward_shapes(
        in_ch in 1usize..5, out_ch in 1usize..6, k in 1usize..4,
        hw in 4usize..10, stride in 1usize..3, seed in 0u64..500,
    ) {
        let pad = k / 2;
        prop_assume!(hw + 2 * pad >= k);
        let mut rng = Prng::seed_from_u64(seed);
        let mut conv = Conv2d::new(in_ch, out_ch, k, stride, pad, true, &mut rng);
        let x = init::gaussian(&[2, in_ch, hw, hw], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, &mut ForwardCtx::train());
        let dx = conv.backward(&Tensor::ones(y.shape()));
        prop_assert_eq!(dx.shape(), x.shape());
        let mut grads_nonzero = false;
        conv.visit_params(&mut |p| grads_nonzero |= p.grad.norm() > 0.0);
        prop_assert!(grads_nonzero);
    }

    /// Linear layers: parameter count is exactly `in·out (+ out)`.
    #[test]
    fn linear_param_count(inf in 1usize..32, outf in 1usize..32, bias in any::<bool>()) {
        let mut rng = Prng::seed_from_u64(0);
        let mut lin = Linear::new(inf, outf, bias, &mut rng);
        let expected = inf * outf + if bias { outf } else { 0 };
        prop_assert_eq!(count_params(&mut lin), expected);
        prop_assert_eq!(count_sites(&mut lin), 1);
    }

    /// SGD step with zero gradients leaves parameters unchanged.
    #[test]
    fn sgd_noop_on_zero_grads(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut lin = Linear::new(4, 3, true, &mut rng);
        zero_grads(&mut lin);
        let before = lin.weight().value.clone();
        let mut opt = Sgd::new(0.1, 0.9);
        opt.step(&mut lin);
        prop_assert_eq!(lin.weight().value.clone(), before);
    }

    /// BatchNorm in eval mode is an affine map: doubling gamma doubles the
    /// centred output.
    #[test]
    fn batchnorm_eval_is_affine(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut bn = BatchNorm2d::new(3);
        // Prime the running stats.
        let x = init::gaussian(&[4, 3, 4, 4], 0.5, 1.5, &mut rng);
        bn.forward(&x, &mut ForwardCtx::train());
        let y1 = bn.forward(&x, &mut ForwardCtx::eval());
        bn.visit_params(&mut |p| {
            if p.value.len() == 3 && p.value.data()[0] != 0.0 {
                // gamma starts at ones; scale it.
                p.value.scale_in_place(2.0);
            }
        });
        let y2 = bn.forward(&x, &mut ForwardCtx::eval());
        // Doubling both gamma and beta doubles the output exactly.
        prop_assert!(y2.allclose(&y1.scale(2.0), 1e-3));
    }

    /// Depthwise conv keeps channel count for any config.
    #[test]
    fn depthwise_preserves_channels(ch in 1usize..6, hw in 4usize..9, seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut dw = DepthwiseConv2d::new(ch, 3, 1, 1, &mut rng);
        let x = init::gaussian(&[1, ch, hw, hw], 0.0, 1.0, &mut rng);
        let y = dw.forward(&x, &mut ForwardCtx::train());
        prop_assert_eq!(y.shape(), x.shape());
    }

    /// Residual blocks: output = body(x) + x exactly, for any body.
    #[test]
    fn residual_adds_skip(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut body = Sequential::new();
        body.push(Conv2d::new(2, 2, 3, 1, 1, false, &mut rng));
        let x = init::gaussian(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);

        // Clone of the body for the reference computation.
        let mut rng2 = Prng::seed_from_u64(seed);
        let mut body_ref = Sequential::new();
        body_ref.push(Conv2d::new(2, 2, 3, 1, 1, false, &mut rng2));
        let expected = body_ref.forward(&x, &mut ForwardCtx::eval()).add(&x);

        let mut res = Residual::new(body);
        let y = res.forward(&x, &mut ForwardCtx::eval());
        prop_assert!(y.allclose(&expected, 1e-5));
    }

    /// Gradient flow: a Sequential of depth d still propagates a gradient
    /// back to its input.
    #[test]
    fn deep_chain_gradient_flows(depth in 1usize..6, seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut net = Sequential::new();
        for _ in 0..depth {
            net.push(Conv2d::new(2, 2, 3, 1, 1, false, &mut rng));
            net.push(Relu::new());
        }
        let x = init::gaussian(&[1, 2, 6, 6], 0.3, 1.0, &mut rng);
        let y = net.forward(&x, &mut ForwardCtx::train());
        let dx = net.backward(&Tensor::ones(y.shape()));
        prop_assert_eq!(dx.shape(), x.shape());
        prop_assert!(dx.norm().is_finite());
    }
}
