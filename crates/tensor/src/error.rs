//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// A buffer length did not match the requested shape.
///
/// ```
/// use adagp_tensor::Tensor;
/// let err = Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
/// assert!(err.to_string().contains("5"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    shape: Vec<usize>,
    actual_len: usize,
}

impl ShapeError {
    /// Creates a new shape error for `shape` and the offending length.
    pub fn new(shape: &[usize], actual_len: usize) -> Self {
        ShapeError {
            shape: shape.to_vec(),
            actual_len,
        }
    }

    /// The shape that was requested.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The buffer length that was provided.
    pub fn actual_len(&self) -> usize {
        self.actual_len
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer of length {} does not match shape {:?} (expected {})",
            self.actual_len,
            self.shape,
            self.shape.iter().product::<usize>()
        )
    }
}

impl Error for ShapeError {}

/// Errors produced by higher-level tensor kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes were incompatible for the attempted operation.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
        /// Operation name (e.g. `"matmul"`).
        op: &'static str,
    },
    /// A kernel received a tensor of unexpected rank.
    BadRank {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Operation name.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "{op}: incompatible shapes {left:?} and {right:?}")
            }
            TensorError::BadRank {
                expected,
                actual,
                op,
            } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_display() {
        let e = ShapeError::new(&[2, 3], 5);
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('6'));
        assert_eq!(e.shape(), &[2, 3]);
        assert_eq!(e.actual_len(), 5);
    }

    #[test]
    fn tensor_error_display() {
        let e = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![4, 5],
            op: "matmul",
        };
        assert!(e.to_string().contains("matmul"));
        let e = TensorError::BadRank {
            expected: 4,
            actual: 2,
            op: "conv2d",
        };
        assert!(e.to_string().contains("conv2d"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
        assert_send_sync::<TensorError>();
    }
}
