//! Pooling kernels: max, average and global-average pooling with backward
//! passes.
//!
//! Pooling appears both in the evaluated CNNs and inside ADA-GP's predictor
//! model itself ("we utilize several pooling layers ... based on the input
//! size", §3.6), so the kernels here serve double duty.

use crate::Tensor;

/// Result of a max-pool forward pass: the output plus the argmax indices
/// needed for the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations `(N, C, Ho, Wo)`.
    pub output: Tensor,
    /// Flat input index of the max element for every output element.
    pub indices: Vec<usize>,
}

/// Max pooling over `(k, k)` windows with stride `s`.
///
/// # Panics
///
/// Panics if `input` is not rank-4 or `k`/`s` are zero.
///
/// ```
/// use adagp_tensor::{Tensor, pool::maxpool2d};
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
/// let y = maxpool2d(&x, 2, 2);
/// assert_eq!(y.output.data(), &[4.0]);
/// ```
pub fn maxpool2d(input: &Tensor, k: usize, s: usize) -> MaxPoolOutput {
    assert_eq!(input.ndim(), 4, "maxpool2d: input must be (N, C, H, W)");
    assert!(
        k > 0 && s > 0,
        "maxpool2d: kernel and stride must be positive"
    );
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let ho = (h.saturating_sub(k)) / s + 1;
    let wo = (w.saturating_sub(k)) / s + 1;
    let mut out = vec![f32::NEG_INFINITY; n * c * ho * wo];
    let mut idx = vec![0usize; n * c * ho * wo];
    for ni in 0..n {
        for ci in 0..c {
            let ibase = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * ho * wo;
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy * s + ky;
                            let ix = ox * s + kx;
                            let ii = ibase + iy * w + ix;
                            let v = input.data()[ii];
                            if v > best {
                                best = v;
                                best_i = ii;
                            }
                        }
                    }
                    out[obase + oy * wo + ox] = best;
                    idx[obase + oy * wo + ox] = best_i;
                }
            }
        }
    }
    MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, ho, wo]),
        indices: idx,
    }
}

/// Backward pass of max pooling: routes each upstream gradient to the input
/// element that won the max.
///
/// # Panics
///
/// Panics if `dy.len() != fwd.indices.len()`.
pub fn maxpool2d_backward(fwd: &MaxPoolOutput, dy: &Tensor, input_shape: &[usize]) -> Tensor {
    assert_eq!(
        dy.len(),
        fwd.indices.len(),
        "maxpool2d_backward: gradient length mismatch"
    );
    let mut dx = Tensor::zeros(input_shape);
    for (&g, &i) in dy.data().iter().zip(fwd.indices.iter()) {
        dx.data_mut()[i] += g;
    }
    dx
}

/// Average pooling over `(k, k)` windows with stride `s`.
///
/// # Panics
///
/// Panics if `input` is not rank-4 or `k`/`s` are zero.
pub fn avgpool2d(input: &Tensor, k: usize, s: usize) -> Tensor {
    assert_eq!(input.ndim(), 4, "avgpool2d: input must be (N, C, H, W)");
    assert!(
        k > 0 && s > 0,
        "avgpool2d: kernel and stride must be positive"
    );
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let ho = (h.saturating_sub(k)) / s + 1;
    let wo = (w.saturating_sub(k)) / s + 1;
    let inv = 1.0 / (k * k) as f32;
    let mut out = vec![0.0f32; n * c * ho * wo];
    for ni in 0..n {
        for ci in 0..c {
            let ibase = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * ho * wo;
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += input.data()[ibase + (oy * s + ky) * w + (ox * s + kx)];
                        }
                    }
                    out[obase + oy * wo + ox] = acc * inv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, ho, wo])
}

/// Backward pass of average pooling: spreads each upstream gradient evenly
/// over its window.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the forward parameters.
pub fn avgpool2d_backward(dy: &Tensor, input_shape: &[usize], k: usize, s: usize) -> Tensor {
    assert_eq!(dy.ndim(), 4, "avgpool2d_backward: dy must be rank-4");
    assert_eq!(
        input_shape.len(),
        4,
        "avgpool2d_backward: input shape must be rank-4"
    );
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (ho, wo) = (dy.dim(2), dy.dim(3));
    let inv = 1.0 / (k * k) as f32;
    let mut dx = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for ci in 0..c {
            let ibase = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * ho * wo;
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = dy.data()[obase + oy * wo + ox] * inv;
                    for ky in 0..k {
                        for kx in 0..k {
                            dx[ibase + (oy * s + ky) * w + (ox * s + kx)] += g;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(dx, input_shape)
}

/// Global average pooling: `(N, C, H, W) -> (N, C)`.
///
/// # Panics
///
/// Panics if `input` is not rank-4.
pub fn global_avgpool(input: &Tensor) -> Tensor {
    assert_eq!(input.ndim(), 4, "global_avgpool: input must be rank-4");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let inv = 1.0 / (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            out[ni * c + ci] = input.data()[base..base + h * w].iter().sum::<f32>() * inv;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass of global average pooling.
pub fn global_avgpool_backward(dy: &Tensor, input_shape: &[usize]) -> Tensor {
    assert_eq!(dy.ndim(), 2, "global_avgpool_backward: dy must be (N, C)");
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let inv = 1.0 / (h * w) as f32;
    let mut dx = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for ci in 0..c {
            let g = dy.data()[ni * c + ci] * inv;
            let base = (ni * c + ci) * h * w;
            for v in &mut dx[base..base + h * w] {
                *v = g;
            }
        }
    }
    Tensor::from_vec(dx, input_shape)
}

/// Adaptive average pooling to an exact `(out_h, out_w)` output, as used by
/// the predictor model to normalize arbitrary layer activations to a fixed
/// spatial size before its conv/FC stages.
///
/// # Panics
///
/// Panics if `input` is not rank-4 or a target dimension is zero.
pub fn adaptive_avgpool(input: &Tensor, out_h: usize, out_w: usize) -> Tensor {
    assert_eq!(input.ndim(), 4, "adaptive_avgpool: input must be rank-4");
    assert!(
        out_h > 0 && out_w > 0,
        "adaptive_avgpool: target size must be positive"
    );
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let mut out = vec![0.0f32; n * c * out_h * out_w];
    for ni in 0..n {
        for ci in 0..c {
            let ibase = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * out_h * out_w;
            for oy in 0..out_h {
                let y0 = oy * h / out_h;
                let y1 = ((oy + 1) * h).div_ceil(out_h).max(y0 + 1).min(h.max(1));
                for ox in 0..out_w {
                    let x0 = ox * w / out_w;
                    let x1 = ((ox + 1) * w).div_ceil(out_w).max(x0 + 1).min(w.max(1));
                    let mut acc = 0.0f32;
                    let mut cnt = 0usize;
                    for iy in y0..y1 {
                        for ix in x0..x1 {
                            acc += input.data()[ibase + iy * w + ix];
                            cnt += 1;
                        }
                    }
                    out[obase + oy * out_w + ox] = if cnt > 0 { acc / cnt as f32 } else { 0.0 };
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, out_h, out_w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, Prng};

    #[test]
    fn maxpool_picks_max() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        );
        let y = maxpool2d(&x, 2, 2);
        assert_eq!(y.output.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.output.data(), &[4.0, 8.0, -1.0, 0.75]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let fwd = maxpool2d(&x, 2, 2);
        let dy = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]);
        let dx = maxpool2d_backward(&fwd, &dy, &[1, 1, 2, 2]);
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn avgpool_average() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = avgpool2d(&x, 2, 2);
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn avgpool_backward_spreads_evenly() {
        let dy = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]);
        let dx = avgpool2d_backward(&dy, &[1, 1, 2, 2], 2, 2);
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avgpool_gradcheck() {
        let mut rng = Prng::seed_from_u64(1);
        let x = init::gaussian(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let dy = Tensor::ones(&[1, 2, 2, 2]);
        let dx = avgpool2d_backward(&dy, x.shape(), 2, 2);
        let eps = 1e-2;
        let f = |x: &Tensor| avgpool2d(x, 2, 2).sum();
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn global_avgpool_reduces_spatial() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let y = global_avgpool(&x);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[1.5, 5.5]);
    }

    #[test]
    fn global_avgpool_roundtrip_gradient() {
        let dy = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let dx = global_avgpool_backward(&dy, &[1, 2, 2, 2]);
        assert_eq!(dx.data(), &[0.25, 0.25, 0.25, 0.25, 0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn adaptive_pool_identity_when_same_size() {
        let x = Tensor::from_vec((0..4).map(|v| v as f32).collect(), &[1, 1, 2, 2]);
        let y = adaptive_avgpool(&x, 2, 2);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn adaptive_pool_downsamples() {
        let x = Tensor::ones(&[1, 3, 7, 5]);
        let y = adaptive_avgpool(&x, 4, 4);
        assert_eq!(y.shape(), &[1, 3, 4, 4]);
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn adaptive_pool_upsample_degenerate() {
        // Target larger than input still produces finite values.
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = adaptive_avgpool(&x, 4, 4);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }
}
