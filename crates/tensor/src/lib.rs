//! # adagp-tensor
//!
//! A dense `f32` tensor library with the forward and backward kernels needed
//! to train convolutional, fully-connected and attention-based neural
//! networks on the CPU. It is the substrate on which the ADA-GP
//! reproduction (MICRO 2023) builds its training stack: the paper trains its
//! models with PyTorch, and this crate provides the equivalent subset built
//! from scratch.
//!
//! The central type is [`Tensor`]: a shape vector plus a contiguous
//! row-major `Vec<f32>`. All kernels are free functions or methods that
//! return new tensors; gradient kernels (`*_backward`) are provided next to
//! every forward kernel so layers can implement explicit backpropagation.
//!
//! ## Example
//!
//! ```
//! use adagp_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod conv;
pub mod error;
pub mod init;
pub mod matmul;
pub mod norm;
pub(crate) mod par;
pub mod pool;
pub mod rng;
pub mod softmax;

pub use error::{ShapeError, TensorError};
pub use rng::Prng;

use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// Shapes are arbitrary-rank; most kernels in this crate interpret rank-4
/// tensors as `(N, C, H, W)` and rank-2 tensors as `(rows, cols)`.
///
/// ```
/// use adagp_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().copied().take(8).collect();
        write!(
            f,
            "Tensor(shape={:?}, len={}, data[..{}]={:?}{})",
            self.shape,
            self.data.len(),
            preview.len(),
            preview,
            if self.data.len() > 8 { ", ..." } else { "" }
        )
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// ```
    /// # use adagp_tensor::Tensor;
    /// let t = Tensor::zeros(&[4]);
    /// assert!(t.data().iter().all(|&x| x == 0.0));
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "data length {} does not match shape {:?} (expected {})",
            data.len(),
            shape,
            expected
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the buffer length does not match the shape.
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ShapeError::new(shape, data.len()));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// A tensor holding `0.0, 1.0, ..., len-1` — handy in tests.
    pub fn arange(len: usize) -> Self {
        Tensor {
            shape: vec![len],
            data: (0..len).map(|i| i as f32).collect(),
        }
    }

    /// The shape as a slice.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Size of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.ndim()`.
    pub fn dim(&self, dim: usize) -> usize {
        self.shape[dim]
    }

    /// Returns a copy reshaped to `shape` (same number of elements).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let expected: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            expected,
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape,
            self.data.len(),
            shape,
            expected
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// In-place reshape (no data movement).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let expected: usize = shape.iter().product();
        assert_eq!(self.data.len(), expected, "reshape size mismatch");
        self.shape = shape.to_vec();
    }

    /// Linear index for a multi-dimensional index (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != self.ndim()` or any coordinate is out of
    /// bounds (debug builds check bounds on each axis).
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(self.shape.iter()).enumerate() {
            debug_assert!(
                ix < dim,
                "index {} out of bounds for axis {} (size {})",
                ix,
                i,
                dim
            );
            off = off * dim + ix;
        }
        off
    }

    /// Element accessor by multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element accessor by multi-dimensional index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    // ---------------------------------------------------------------------
    // Elementwise arithmetic
    // ---------------------------------------------------------------------

    /// Elementwise sum; shapes must match exactly.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference; shapes must match exactly.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product; shapes must match exactly.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient; shapes must match exactly.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other` (axpy), in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|x| x * scalar)
    }

    /// Multiplies every element by `scalar` in place.
    pub fn scale_in_place(&mut self, scalar: f32) {
        for x in &mut self.data {
            *x *= scalar;
        }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "elementwise op shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    // ---------------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
    }

    /// The L2 norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Mean over axis 0: `(d0, rest...) -> (rest...)`.
    ///
    /// Used by ADA-GP's tensor reorganization (batch-mean of activations).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-0 or axis 0 has size 0.
    pub fn mean_axis0(&self) -> Tensor {
        assert!(!self.shape.is_empty(), "mean_axis0 requires rank >= 1");
        let d0 = self.shape[0];
        assert!(d0 > 0, "mean_axis0 requires non-empty axis 0");
        let rest: usize = self.shape[1..].iter().product();
        let mut out = vec![0.0f32; rest];
        for i in 0..d0 {
            let row = &self.data[i * rest..(i + 1) * rest];
            for (o, &x) in out.iter_mut().zip(row.iter()) {
                *o += x;
            }
        }
        let inv = 1.0 / d0 as f32;
        for o in &mut out {
            *o *= inv;
        }
        Tensor {
            shape: self.shape[1..].to_vec(),
            data: out,
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2 requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: vec![c, r],
            data: out,
        }
    }

    /// Concatenates tensors along axis 0. All trailing dimensions must match.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing shapes differ.
    pub fn cat0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cat0 requires at least one tensor");
        let tail = &parts[0].shape[1..];
        let mut d0 = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "cat0 trailing shape mismatch");
            d0 += p.shape[0];
        }
        let mut shape = vec![d0];
        shape.extend_from_slice(tail);
        let mut data = Vec::with_capacity(shape.iter().product());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { shape, data }
    }

    /// Splits along axis 0 at `at`, returning `(first, second)` copies.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.dim(0)` or the tensor is rank-0.
    pub fn split0(&self, at: usize) -> (Tensor, Tensor) {
        assert!(!self.shape.is_empty());
        let d0 = self.shape[0];
        assert!(at <= d0, "split index {} out of bounds ({})", at, d0);
        let rest: usize = self.shape[1..].iter().product();
        let mut s1 = vec![at];
        s1.extend_from_slice(&self.shape[1..]);
        let mut s2 = vec![d0 - at];
        s2.extend_from_slice(&self.shape[1..]);
        (
            Tensor {
                shape: s1,
                data: self.data[..at * rest].to_vec(),
            },
            Tensor {
                shape: s2,
                data: self.data[at * rest..].to_vec(),
            },
        )
    }

    /// Extracts row `i` of axis 0 as a tensor of shape `shape[1..]`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim(0)` or the tensor is rank-0.
    pub fn index0(&self, i: usize) -> Tensor {
        assert!(!self.shape.is_empty());
        assert!(i < self.shape[0], "index {} out of bounds", i);
        let rest: usize = self.shape[1..].iter().product();
        Tensor {
            shape: self.shape[1..].to_vec(),
            data: self.data[i * rest..(i + 1) * rest].to_vec(),
        }
    }

    /// Checks two tensors for approximate equality (absolute tolerance).
    pub fn allclose(&self, other: &Tensor, atol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= atol)
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.shape(), &[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn eye_diagonal() {
        let e = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(e.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn try_from_vec_rejects_mismatch() {
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::try_from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[4]);
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.mean(), 0.625);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), Some(2));
    }

    #[test]
    fn argmax_empty_is_none() {
        let t = Tensor::default();
        assert_eq!(t.argmax(), None);
    }

    #[test]
    fn mean_axis0_matches_manual() {
        // (2, 3): rows [1,2,3] and [3,4,5] -> mean [2,3,4]
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 3.0, 4.0, 5.0], &[2, 3]);
        let m = t.mean_axis0();
        assert_eq!(m.shape(), &[3]);
        assert_eq!(m.data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn transpose2_involution() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let tt = t.transpose2().transpose2();
        assert_eq!(t, tt);
    }

    #[test]
    fn cat0_and_split0_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = Tensor::cat0(&[&a, &b]);
        assert_eq!(c.shape(), &[3, 2]);
        let (x, y) = c.split0(1);
        assert_eq!(x, a);
        assert_eq!(y, b);
    }

    #[test]
    fn index0_extracts_rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.index0(1).data(), &[3.0, 4.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]);
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0005, 2.0], &[2]);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-5));
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(&[1]);
        assert!(!format!("{:?}", t).is_empty());
    }
}
