//! A small deterministic pseudo-random number generator.
//!
//! Every experiment in the reproduction must be deterministic so that
//! paper-vs-measured comparisons are stable. [`Prng`] wraps a
//! splitmix64/xoshiro-style generator seeded explicitly; it also provides
//! Gaussian sampling via the Box–Muller transform (avoiding an extra
//! dependency on `rand_distr`).

/// Deterministic pseudo-random generator (xoshiro256++ core).
///
/// ```
/// use adagp_tensor::Prng;
/// let mut a = Prng::seed_from_u64(7);
/// let mut b = Prng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f32>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng {
            s,
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_range requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample (Box–Muller).
    pub fn gaussian(&mut self) -> f32 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid log(0).
        let u1 = (1.0 - self.uniform()).max(f32::MIN_POSITIVE);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f32::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.gaussian()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.is_empty() {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Prng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Prng::seed_from_u64(4);
        let n = 50_000;
        let mean: f32 = (0..n).map(|_| r.uniform()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Prng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "var was {var}");
    }

    #[test]
    fn below_bounds() {
        let mut r = Prng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::seed_from_u64(7);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_empty_ok() {
        let mut r = Prng::seed_from_u64(8);
        let mut xs: Vec<u8> = vec![];
        r.shuffle(&mut xs);
        assert!(xs.is_empty());
    }
}
