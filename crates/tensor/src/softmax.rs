//! Softmax, log-softmax, cross-entropy loss and elementwise activations
//! (forward + backward).
//!
//! The loss kernels close the training loop: the paper's baseline is
//! standard backpropagation from a cross-entropy loss at the last layer
//! (§2), which Phase GP then skips.

use crate::Tensor;

/// Row-wise softmax of a rank-2 tensor `(n, classes)`.
///
/// Numerically stabilized by subtracting the row max.
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
///
/// ```
/// use adagp_tensor::{Tensor, softmax::softmax};
/// let l = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
/// let p = softmax(&l);
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "softmax: logits must be (n, classes)");
    let (n, c) = (logits.dim(0), logits.dim(1));
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (o, &x) in out[i * c..(i + 1) * c].iter_mut().zip(row.iter()) {
            let e = (x - m).exp();
            *o = e;
            denom += e;
        }
        let inv = 1.0 / denom;
        for o in &mut out[i * c..(i + 1) * c] {
            *o *= inv;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Row-wise log-softmax (stable).
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
pub fn log_softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "log_softmax: logits must be (n, classes)");
    let (n, c) = (logits.dim(0), logits.dim(1));
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln() + m;
        for (o, &x) in out[i * c..(i + 1) * c].iter_mut().zip(row.iter()) {
            *o = x - lse;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Mean cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, dlogits)` where `dlogits = (softmax - onehot) / n`.
///
/// # Panics
///
/// Panics if shapes disagree or any target index is out of range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(
        logits.ndim(),
        2,
        "cross_entropy: logits must be (n, classes)"
    );
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(n, targets.len(), "cross_entropy: batch size mismatch");
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (i, &t) in targets.iter().enumerate() {
        assert!(
            t < c,
            "cross_entropy: target {t} out of range (classes={c})"
        );
        let p = probs.data()[i * c + t].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * c + t] -= 1.0;
    }
    grad.scale_in_place(inv_n);
    (loss * inv_n, grad)
}

/// Mean squared error loss and gradient: `(mean((a-b)^2), 2(a-b)/len)`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse_loss: shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = pred.sub(target);
    let loss = grad.data().iter().map(|d| d * d).sum::<f32>() / n;
    grad.scale_in_place(2.0 / n);
    (loss, grad)
}

// ---------------------------------------------------------------------------
// Elementwise activations
// ---------------------------------------------------------------------------

/// ReLU forward.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// ReLU backward: passes gradient where the *input* was positive.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    x.zip_with(dy, |xv, g| if xv > 0.0 { g } else { 0.0 })
}

/// Leaky ReLU forward with negative slope `alpha` (YOLO uses 0.1).
pub fn leaky_relu(x: &Tensor, alpha: f32) -> Tensor {
    x.map(|v| if v > 0.0 { v } else { alpha * v })
}

/// Leaky ReLU backward.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn leaky_relu_backward(x: &Tensor, dy: &Tensor, alpha: f32) -> Tensor {
    x.zip_with(dy, |xv, g| if xv > 0.0 { g } else { alpha * g })
}

/// Logistic sigmoid forward.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Sigmoid backward given the forward *output* `y`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn sigmoid_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    y.zip_with(dy, |yv, g| yv * (1.0 - yv) * g)
}

/// Hyperbolic tangent forward.
pub fn tanh(x: &Tensor) -> Tensor {
    x.map(f32::tanh)
}

/// Tanh backward given the forward *output* `y`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn tanh_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    y.zip_with(dy, |yv, g| (1.0 - yv * yv) * g)
}

/// GELU forward (tanh approximation), used by the transformer model.
pub fn gelu(x: &Tensor) -> Tensor {
    x.map(gelu_scalar)
}

fn gelu_scalar(v: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * v * (1.0 + (C * (v + 0.044715 * v * v * v)).tanh())
}

/// GELU backward using the analytic derivative of the tanh approximation.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    const C: f32 = 0.797_884_6;
    x.zip_with(dy, |v, g| {
        let inner = C * (v + 0.044715 * v * v * v);
        let t = inner.tanh();
        let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * v * v);
        g * (0.5 * (1.0 + t) + 0.5 * v * dt)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, Prng};

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Prng::seed_from_u64(1);
        let l = init::gaussian(&[5, 7], 0.0, 3.0, &mut rng);
        let p = softmax(&l);
        for i in 0..5 {
            let s: f32 = p.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.min() >= 0.0);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let l = Tensor::from_vec(vec![1000.0, 1000.0], &[1, 2]);
        let p = softmax(&l);
        assert!((p.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let l = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.1, 0.0, -0.5], &[2, 3]);
        let ls = log_softmax(&l);
        let s = softmax(&l);
        for (a, b) in ls.data().iter().zip(s.data().iter()) {
            assert!((a.exp() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_small_loss() {
        let l = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]);
        let (loss, _) = cross_entropy(&l, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let l = Tensor::zeros(&[1, 10]);
        let (loss, _) = cross_entropy(&l, &[3]);
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_fd() {
        let mut rng = Prng::seed_from_u64(2);
        let l = init::gaussian(&[3, 4], 0.0, 1.0, &mut rng);
        let targets = [1usize, 3, 0];
        let (_, grad) = cross_entropy(&l, &targets);
        let eps = 1e-3;
        for i in 0..l.len() {
            let mut lp = l.clone();
            lp.data_mut()[i] += eps;
            let mut lm = l.clone();
            lm.data_mut()[i] -= eps;
            let num =
                (cross_entropy(&lp, &targets).0 - cross_entropy(&lm, &targets).0) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "grad[{i}] numeric {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn mse_loss_and_gradient() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let (loss, grad) = mse_loss(&a, &b);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn relu_and_backward() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let y = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let dy = Tensor::ones(&[3]);
        let dx = relu_backward(&x, &dy);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_slope() {
        let x = Tensor::from_vec(vec![-10.0, 10.0], &[2]);
        let y = leaky_relu(&x, 0.1);
        assert_eq!(y.data(), &[-1.0, 10.0]);
        let dx = leaky_relu_backward(&x, &Tensor::ones(&[2]), 0.1);
        assert_eq!(dx.data(), &[0.1, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_grad() {
        let x = Tensor::from_vec(vec![-5.0, 0.0, 5.0], &[3]);
        let y = sigmoid(&x);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.min() > 0.0 && y.max() < 1.0);
        let dx = sigmoid_backward(&y, &Tensor::ones(&[3]));
        assert!((dx.data()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_fd() {
        let x = Tensor::from_vec(vec![0.5, -0.3, 1.2], &[3]);
        let y = tanh(&x);
        let dx = tanh_backward(&y, &Tensor::ones(&[3]));
        let eps = 1e-3;
        for i in 0..3 {
            let num = ((x.data()[i] + eps).tanh() - (x.data()[i] - eps).tanh()) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn gelu_gradient_fd() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0], &[4]);
        let dx = gelu_backward(&x, &Tensor::ones(&[4]));
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (gelu(&xp).sum() - gelu(&xm).sum()) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-3);
        }
    }
}
