//! Matrix multiplication kernels (forward and backward).
//!
//! Linear layers, im2col convolution and attention all reduce to the GEMM
//! kernels in this module. Each kernel is written row-block-wise: a block
//! of output rows is a self-contained unit of work with a fixed
//! floating-point accumulation order, so the same code runs serially or
//! sharded across the `adagp_runtime` thread pool with **bit-identical**
//! results for every `ADAGP_THREADS` (see `tests/kernel_properties.rs`).

use crate::par;
use crate::Tensor;

impl Tensor {
    /// Matrix product of two rank-2 tensors: `(m, k) x (k, n) -> (m, n)`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions
    /// disagree.
    ///
    /// ```
    /// use adagp_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul: left operand must be rank-2");
        assert_eq!(other.ndim(), 2, "matmul: right operand must be rank-2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(
            k,
            k2,
            "matmul: inner dimensions disagree ({:?} x {:?})",
            self.shape(),
            other.shape()
        );
        let mut out = vec![0.0f32; m * n];
        gemm(self.data(), other.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `self^T @ other` without materializing the transpose:
    /// `(k, m)^T x (k, n) -> (m, n)`.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_tn: left operand must be rank-2");
        assert_eq!(other.ndim(), 2, "matmul_tn: right operand must be rank-2");
        let (k, m) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(k, k2, "matmul_tn: leading dimensions disagree");
        let mut out = vec![0.0f32; m * n];
        let (a, b) = (self.data(), other.data());
        // out[i][j] = sum_p self[p][i] * other[p][j], p ascending per element.
        let rows = |first: usize, chunk: &mut [f32]| {
            for (r, orow) in chunk.chunks_mut(n).enumerate() {
                let i = first + r;
                for p in 0..k {
                    let av = a[p * m + i];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                }
            }
        };
        par::row_blocks(&mut out, m, n, m * k * n, rows);
        Tensor::from_vec(out, &[m, n])
    }

    /// `self @ other^T` without materializing the transpose:
    /// `(m, k) x (n, k)^T -> (m, n)`.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_nt: left operand must be rank-2");
        assert_eq!(other.ndim(), 2, "matmul_nt: right operand must be rank-2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (other.dim(0), other.dim(1));
        assert_eq!(k, k2, "matmul_nt: trailing dimensions disagree");
        let mut out = vec![0.0f32; m * n];
        let (a, b) = (self.data(), other.data());
        let rows = |first: usize, chunk: &mut [f32]| {
            for (r, orow) in chunk.chunks_mut(n).enumerate() {
                let i = first + r;
                let arow = &a[i * k..(i + 1) * k];
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow.iter()) {
                        acc += av * bv;
                    }
                    *o = acc;
                }
            }
        };
        par::row_blocks(&mut out, m, n, m * k * n, rows);
        Tensor::from_vec(out, &[m, n])
    }
}

/// Raw GEMM: `c += a(m,k) * b(k,n)` with `c` pre-zeroed by the caller.
/// Cache-friendly ikj loop, sharded over blocks of output rows.
fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let rows = |first: usize, chunk: &mut [f32]| {
        for (r, crow) in chunk.chunks_mut(n).enumerate() {
            let i = first + r;
            let arow = &a[i * k..(i + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += av * bv;
                }
            }
        }
    };
    par::row_blocks(c, m, n, m * k * n, rows);
}

/// Gradients of `y = x @ w` with respect to both operands.
///
/// Given upstream gradient `dy (m, n)`, input `x (m, k)` and weight
/// `w (k, n)`, returns `(dx, dw)` where `dx = dy @ w^T` and `dw = x^T @ dy`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matmul_backward(x: &Tensor, w: &Tensor, dy: &Tensor) -> (Tensor, Tensor) {
    let dx = dy.matmul_nt(w);
    let dw = x.matmul_tn(dy);
    (dx, dw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[0.0, 1.0, 1.0, 0.0], &[2, 2]);
        assert_eq!(a.matmul(&b).data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], &[3, 2]);
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transpose2().matmul(&b);
        assert!(via_tn.allclose(&explicit, 1e-6));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], &[2, 3]);
        let via_nt = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose2());
        assert!(via_nt.allclose(&explicit, 1e-6));
    }

    #[test]
    fn backward_shapes() {
        let x = Tensor::ones(&[4, 3]);
        let w = Tensor::ones(&[3, 5]);
        let dy = Tensor::ones(&[4, 5]);
        let (dx, dw) = matmul_backward(&x, &w, &dy);
        assert_eq!(dx.shape(), &[4, 3]);
        assert_eq!(dw.shape(), &[3, 5]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        // f(x, w) = sum(x @ w); grad wrt x is rowsum-broadcast of w, etc.
        let x = t(&[0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[2, 3]);
        let w = t(&[1.0, 2.0, -1.0, 0.5, 3.0, -2.0], &[3, 2]);
        let dy = Tensor::ones(&[2, 2]);
        let (dx, dw) = matmul_backward(&x, &w, &dy);

        let eps = 1e-3;
        let f = |x: &Tensor, w: &Tensor| x.matmul(w).sum();
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp, &w) - f(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 1e-2,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (f(&x, &wp) - f(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - dw.data()[i]).abs() < 1e-2,
                "dw[{i}]: numeric {num} vs analytic {}",
                dw.data()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_panics() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 2]);
        let _ = a.matmul(&b);
    }
}
