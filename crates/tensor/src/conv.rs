//! 2-D convolution kernels (im2col based), forward and backward.
//!
//! Convolutions are the dominant op in every CNN the paper evaluates
//! (VGG/ResNet/DenseNet/Inception/MobileNet/YOLO). The gradients of the
//! convolution *weights* are exactly what ADA-GP's predictor model learns to
//! predict, so both `conv2d_backward_weight` and `conv2d_backward_data` are
//! first-class kernels here.
//!
//! All three kernels run on the `adagp_runtime` pool, parallelized over
//! batch × out-channel row blocks (forward / weight-backward) or samples
//! (data-backward). Each output row keeps the scalar reference's
//! floating-point accumulation order, so results are bit-identical for
//! every `ADAGP_THREADS` — see `tests/kernel_properties.rs`.

use crate::par;
use crate::Tensor;

/// Hyper-parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Zero padding applied on all four sides.
    pub padding: usize,
}

impl Default for Conv2dParams {
    /// Stride 1, no padding.
    fn default() -> Self {
        Conv2dParams {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dParams {
    /// Creates parameters with the given stride and padding.
    pub fn new(stride: usize, padding: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        Conv2dParams { stride, padding }
    }

    /// Output spatial size for an input of size `in_size` and kernel `k`.
    pub fn out_size(&self, in_size: usize, k: usize) -> usize {
        (in_size + 2 * self.padding).saturating_sub(k) / self.stride + 1
    }
}

/// Lowers input patches to a matrix: `(C*kh*kw, Ho*Wo)` for one sample.
///
/// `input` must be `(C, H, W)` flattened row-major within `data`.
fn im2col(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    p: &Conv2dParams,
    cols: &mut [f32],
) {
    let ho = p.out_size(h, kh);
    let wo = p.out_size(w, kw);
    let owh = ho * wo;
    debug_assert_eq!(cols.len(), c * kh * kw * owh);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let out_base = row * owh;
                for oy in 0..ho {
                    let iy = (oy * p.stride + ki) as isize - p.padding as isize;
                    for ox in 0..wo {
                        let ix = (ox * p.stride + kj) as isize - p.padding as isize;
                        let v = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            data[(ci * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        cols[out_base + oy * wo + ox] = v;
                    }
                }
            }
        }
    }
}

/// Scatters a column matrix back to an image, accumulating overlaps.
fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    p: &Conv2dParams,
    out: &mut [f32],
) {
    let ho = p.out_size(h, kh);
    let wo = p.out_size(w, kw);
    let owh = ho * wo;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let in_base = row * owh;
                for oy in 0..ho {
                    let iy = (oy * p.stride + ki) as isize - p.padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..wo {
                        let ix = (ox * p.stride + kj) as isize - p.padding as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        out[(ci * h + iy as usize) * w + ix as usize] +=
                            cols[in_base + oy * wo + ox];
                    }
                }
            }
        }
    }
}

/// 2-D convolution forward pass.
///
/// * `input`  — `(N, Cin, H, W)`
/// * `weight` — `(Cout, Cin, kh, kw)`
/// * `bias`   — optional `(Cout,)`
///
/// Returns `(N, Cout, Ho, Wo)`.
///
/// # Panics
///
/// Panics if ranks or channel counts disagree.
///
/// ```
/// use adagp_tensor::{Tensor, conv::{conv2d, Conv2dParams}};
/// let x = Tensor::ones(&[1, 1, 3, 3]);
/// let w = Tensor::ones(&[1, 1, 3, 3]);
/// let y = conv2d(&x, &w, None, &Conv2dParams::new(1, 1));
/// assert_eq!(y.shape(), &[1, 1, 3, 3]);
/// assert_eq!(y.at(&[0, 0, 1, 1]), 9.0); // full overlap in the centre
/// ```
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, p: &Conv2dParams) -> Tensor {
    assert_eq!(input.ndim(), 4, "conv2d: input must be (N, C, H, W)");
    assert_eq!(
        weight.ndim(),
        4,
        "conv2d: weight must be (Cout, Cin, kh, kw)"
    );
    let (n, cin, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (cout, cin_w, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    assert_eq!(cin, cin_w, "conv2d: channel mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), cout, "conv2d: bias length must equal Cout");
    }
    let ho = p.out_size(h, kh);
    let wo = p.out_size(w, kw);
    let patch = cin * kh * kw;
    let owh = ho * wo;

    let mut out = vec![0.0f32; n * cout * owh];
    let wmat = weight.data(); // (cout, patch) row-major

    let pool = adagp_runtime::pool();
    let work = n * cout * patch * owh;
    let cols_len = n * patch * owh;
    if pool.size() == 1 || n * cout < 2 || work < par::PAR_MIN_WORK || cols_len > par::SCRATCH_CAP {
        // Memory-lean serial path: one cols buffer reused across samples.
        let mut cols = vec![0.0f32; patch * owh];
        for ni in 0..n {
            let sample = &input.data()[ni * cin * h * w..(ni + 1) * cin * h * w];
            im2col(sample, cin, h, w, kh, kw, p, &mut cols);
            let obase = ni * cout * owh;
            for co in 0..cout {
                let orow = &mut out[obase + co * owh..obase + (co + 1) * owh];
                conv_out_row(wmat, &cols, bias, co, patch, owh, orow);
            }
        }
    } else {
        // Stage 1: lower every sample in parallel (one chunk per sample).
        let mut cols_all = vec![0.0f32; cols_len];
        pool.parallel_chunks(&mut cols_all, patch * owh, |ni, cols| {
            let sample = &input.data()[ni * cin * h * w..(ni + 1) * cin * h * w];
            im2col(sample, cin, h, w, kh, kw, p, cols);
        });
        // Stage 2: each (sample, out-channel) output row is one work item.
        par::row_blocks(&mut out, n * cout, owh, work, |first, chunk| {
            for (r, orow) in chunk.chunks_mut(owh).enumerate() {
                let row = first + r;
                let (ni, co) = (row / cout, row % cout);
                let cols = &cols_all[ni * patch * owh..(ni + 1) * patch * owh];
                conv_out_row(wmat, cols, bias, co, patch, owh, orow);
            }
        });
    }
    Tensor::from_vec(out, &[n, cout, ho, wo])
}

/// Computes one `(sample, out-channel)` output row: `orow += wmat[co] .
/// cols`, plus the channel bias. Shared by the serial and parallel paths so
/// both accumulate in the same order.
fn conv_out_row(
    wmat: &[f32],
    cols: &[f32],
    bias: Option<&Tensor>,
    co: usize,
    patch: usize,
    owh: usize,
    orow: &mut [f32],
) {
    let wrow = &wmat[co * patch..(co + 1) * patch];
    for (pi, &wv) in wrow.iter().enumerate() {
        if wv == 0.0 {
            continue;
        }
        let crow = &cols[pi * owh..(pi + 1) * owh];
        for (ov, &cv) in orow.iter_mut().zip(crow.iter()) {
            *ov += wv * cv;
        }
    }
    if let Some(b) = bias {
        let bv = b.data()[co];
        for ov in orow.iter_mut() {
            *ov += bv;
        }
    }
}

/// Gradient of the convolution with respect to its input.
///
/// Given `dy (N, Cout, Ho, Wo)` and `weight (Cout, Cin, kh, kw)`, returns
/// `dx (N, Cin, H, W)` for the original input spatial size `(h, w)`.
///
/// # Panics
///
/// Panics on rank mismatch or if `dy`'s spatial size disagrees with the
/// parameters.
pub fn conv2d_backward_data(
    dy: &Tensor,
    weight: &Tensor,
    h: usize,
    w: usize,
    p: &Conv2dParams,
) -> Tensor {
    assert_eq!(dy.ndim(), 4, "conv2d_backward_data: dy must be rank-4");
    assert_eq!(
        weight.ndim(),
        4,
        "conv2d_backward_data: weight must be rank-4"
    );
    let (n, cout, ho, wo) = (dy.dim(0), dy.dim(1), dy.dim(2), dy.dim(3));
    let (cout_w, cin, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    assert_eq!(cout, cout_w, "conv2d_backward_data: channel mismatch");
    assert_eq!(ho, p.out_size(h, kh), "conv2d_backward_data: Ho mismatch");
    assert_eq!(wo, p.out_size(w, kw), "conv2d_backward_data: Wo mismatch");
    let patch = cin * kh * kw;
    let owh = ho * wo;

    let mut dx = vec![0.0f32; n * cin * h * w];
    let wmat = weight.data();

    // Each sample's dx is independent: one chunk per sample, with a
    // task-local dcols scratch buffer. Per-sample math is untouched, so the
    // result matches the serial path bit for bit.
    let work = n * cout * patch * owh;
    par::row_blocks(&mut dx, n, cin * h * w, work, |first, chunk| {
        let mut dcols = vec![0.0f32; patch * owh];
        for (r, dx_sample) in chunk.chunks_mut(cin * h * w).enumerate() {
            let ni = first + r;
            // dcols = W^T @ dy_sample, dy_sample is (cout, owh)
            dcols.iter_mut().for_each(|v| *v = 0.0);
            let dybase = ni * cout * owh;
            for co in 0..cout {
                let wrow = &wmat[co * patch..(co + 1) * patch];
                let dyrow = &dy.data()[dybase + co * owh..dybase + (co + 1) * owh];
                for (pi, &wv) in wrow.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let drow = &mut dcols[pi * owh..(pi + 1) * owh];
                    for (dv, &gy) in drow.iter_mut().zip(dyrow.iter()) {
                        *dv += wv * gy;
                    }
                }
            }
            col2im(&dcols, cin, h, w, kh, kw, p, dx_sample);
        }
    });
    Tensor::from_vec(dx, &[n, cin, h, w])
}

/// Gradient of the convolution with respect to its weights (and bias).
///
/// Returns `(dw, db)` with `dw (Cout, Cin, kh, kw)` and `db (Cout,)`.
/// These are the *true gradients* that ADA-GP's predictor is trained to
/// imitate.
///
/// # Panics
///
/// Panics on rank mismatch or inconsistent spatial sizes.
pub fn conv2d_backward_weight(
    input: &Tensor,
    dy: &Tensor,
    kh: usize,
    kw: usize,
    p: &Conv2dParams,
) -> (Tensor, Tensor) {
    assert_eq!(
        input.ndim(),
        4,
        "conv2d_backward_weight: input must be rank-4"
    );
    assert_eq!(dy.ndim(), 4, "conv2d_backward_weight: dy must be rank-4");
    let (n, cin, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (n2, cout, ho, wo) = (dy.dim(0), dy.dim(1), dy.dim(2), dy.dim(3));
    assert_eq!(n, n2, "conv2d_backward_weight: batch mismatch");
    assert_eq!(ho, p.out_size(h, kh), "conv2d_backward_weight: Ho mismatch");
    assert_eq!(wo, p.out_size(w, kw), "conv2d_backward_weight: Wo mismatch");
    let patch = cin * kh * kw;
    let owh = ho * wo;

    let mut dw = vec![0.0f32; cout * patch];
    let mut db = vec![0.0f32; cout];

    let pool = adagp_runtime::pool();
    let work = n * cout * patch * owh;
    let cols_len = n * patch * owh;
    if pool.size() == 1 || cout < 2 || work < par::PAR_MIN_WORK || cols_len > par::SCRATCH_CAP {
        // Memory-lean serial path. The ni-outer loop order means every
        // dw element accumulates its per-sample contribution in ascending
        // sample order — the same order the parallel path reproduces.
        let mut cols = vec![0.0f32; patch * owh];
        for ni in 0..n {
            let sample = &input.data()[ni * cin * h * w..(ni + 1) * cin * h * w];
            im2col(sample, cin, h, w, kh, kw, p, &mut cols);
            let dybase = ni * cout * owh;
            for co in 0..cout {
                let dyrow = &dy.data()[dybase + co * owh..dybase + (co + 1) * owh];
                let dwrow = &mut dw[co * patch..(co + 1) * patch];
                dw_accumulate_row(&cols, dyrow, owh, dwrow, &mut db[co]);
            }
        }
    } else {
        // Stage 1: lower every sample in parallel.
        let mut cols_all = vec![0.0f32; cols_len];
        pool.parallel_chunks(&mut cols_all, patch * owh, |ni, cols| {
            let sample = &input.data()[ni * cin * h * w..(ni + 1) * cin * h * w];
            im2col(sample, cin, h, w, kh, kw, p, cols);
        });
        // Stage 2: each out-channel owns its dw row and db cell; samples
        // are consumed in ascending order inside the task, matching the
        // serial accumulation order exactly.
        par::row_blocks_pair(&mut dw, &mut db, cout, patch, 1, work, |first, dwc, dbc| {
            for (r, (dwrow, dbv)) in dwc.chunks_mut(patch).zip(dbc.iter_mut()).enumerate() {
                let co = first + r;
                for ni in 0..n {
                    let cols = &cols_all[ni * patch * owh..(ni + 1) * patch * owh];
                    let dybase = ni * cout * owh;
                    let dyrow = &dy.data()[dybase + co * owh..dybase + (co + 1) * owh];
                    dw_accumulate_row(cols, dyrow, owh, dwrow, dbv);
                }
            }
        });
    }
    (
        Tensor::from_vec(dw, &[cout, cin, kh, kw]),
        Tensor::from_vec(db, &[cout]),
    )
}

/// Accumulates one sample's contribution to one out-channel's weight
/// gradient row and bias gradient. Shared by the serial and parallel paths
/// so both sum in the same order.
fn dw_accumulate_row(cols: &[f32], dyrow: &[f32], owh: usize, dwrow: &mut [f32], dbv: &mut f32) {
    for (pi, dwv) in dwrow.iter_mut().enumerate() {
        let crow = &cols[pi * owh..(pi + 1) * owh];
        let mut acc = 0.0f32;
        for (&cv, &gy) in crow.iter().zip(dyrow.iter()) {
            acc += cv * gy;
        }
        *dwv += acc;
    }
    *dbv += dyrow.iter().sum::<f32>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, Prng};

    #[test]
    fn out_size_formula() {
        let p = Conv2dParams::new(1, 1);
        assert_eq!(p.out_size(28, 3), 28);
        let p = Conv2dParams::new(2, 1);
        assert_eq!(p.out_size(28, 3), 14);
        let p = Conv2dParams::new(1, 0);
        assert_eq!(p.out_size(5, 3), 3);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 kernel of value 1 is identity.
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, &Conv2dParams::default());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, &Conv2dParams::default());
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert!(y.data().iter().all(|&v| v == 9.0));
    }

    #[test]
    fn padding_zero_borders() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, &Conv2dParams::new(1, 1));
        // Corners see a 2x2 window of ones.
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
        assert_eq!(y.at(&[0, 0, 0, 1]), 6.0);
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::ones(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.5, -2.0], &[2]);
        let y = conv2d(&x, &w, Some(&b), &Conv2dParams::default());
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.5);
        assert_eq!(y.at(&[0, 1, 1, 1]), -2.0);
    }

    #[test]
    fn multi_channel_multi_batch_shapes() {
        let mut rng = Prng::seed_from_u64(0);
        let x = init::gaussian(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let w = init::gaussian(&[5, 3, 3, 3], 0.0, 1.0, &mut rng);
        let y = conv2d(&x, &w, None, &Conv2dParams::new(2, 1));
        assert_eq!(y.shape(), &[2, 5, 4, 4]);
    }

    /// Numerical gradient check of both backward kernels.
    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Prng::seed_from_u64(11);
        let p = Conv2dParams::new(1, 1);
        let x = init::gaussian(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let w = init::gaussian(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let dy = Tensor::ones(&[1, 3, 4, 4]);

        let dx = conv2d_backward_data(&dy, &w, 4, 4, &p);
        let (dw, db) = conv2d_backward_weight(&x, &dy, 3, 3, &p);

        let f = |x: &Tensor, w: &Tensor| conv2d(x, w, None, &p).sum();
        let eps = 1e-2;
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp, &w) - f(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 5e-2,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
        for i in (0..w.len()).step_by(7) {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (f(&x, &wp) - f(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - dw.data()[i]).abs() < 5e-2,
                "dw[{i}]: numeric {num} vs analytic {}",
                dw.data()[i]
            );
        }
        // Bias gradient for sum-loss is simply the output element count per channel.
        assert!(db.data().iter().all(|&v| (v - 16.0).abs() < 1e-4));
    }

    #[test]
    fn stride_2_backward_shapes() {
        let p = Conv2dParams::new(2, 1);
        let dy = Tensor::ones(&[2, 4, 4, 4]);
        let w = Tensor::ones(&[4, 3, 3, 3]);
        let dx = conv2d_backward_data(&dy, &w, 8, 8, &p);
        assert_eq!(dx.shape(), &[2, 3, 8, 8]);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let (dw, db) = conv2d_backward_weight(&x, &dy, 3, 3, &p);
        assert_eq!(dw.shape(), &[4, 3, 3, 3]);
        assert_eq!(db.shape(), &[4]);
    }
}
