//! Weight initialization schemes.
//!
//! The paper trains all models from random initialization ("the weights of
//! the DNN model are initialized randomly", §3.2); convergence behaviour of
//! ADA-GP depends on sensible fan-in scaled init, so we provide the standard
//! Kaiming/Xavier family used by PyTorch defaults.

use crate::{Prng, Tensor};

/// Kaiming (He) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// Appropriate for layers followed by ReLU, which is every conv layer in the
/// paper's CNN zoo.
///
/// ```
/// use adagp_tensor::{init, Prng};
/// let mut rng = Prng::seed_from_u64(0);
/// let w = init::kaiming_normal(&[16, 3, 3, 3], 27, &mut rng);
/// assert_eq!(w.shape(), &[16, 3, 3, 3]);
/// ```
pub fn kaiming_normal(shape: &[usize], fan_in: usize, rng: &mut Prng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    gaussian(shape, 0.0, std, rng)
}

/// Kaiming uniform initialization: `U(-b, b)` with `b = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut Prng) -> Tensor {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// Xavier (Glorot) uniform initialization over fan-in + fan-out.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut Prng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// I.i.d. Gaussian tensor.
pub fn gaussian(shape: &[usize], mean: f32, std: f32, rng: &mut Prng) -> Tensor {
    let len: usize = shape.iter().product();
    let data = (0..len).map(|_| rng.normal(mean, std)).collect();
    Tensor::from_vec(data, shape)
}

/// I.i.d. uniform tensor over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Prng) -> Tensor {
    let len: usize = shape.iter().product();
    let data = (0..len).map(|_| rng.uniform_range(lo, hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Fan-in of a conv weight `(out_ch, in_ch, kh, kw)` or linear weight
/// `(out, in)`.
///
/// # Panics
///
/// Panics for tensors of rank other than 2 or 4.
pub fn fan_in_of(shape: &[usize]) -> usize {
    match shape.len() {
        2 => shape[1],
        4 => shape[1] * shape[2] * shape[3],
        r => panic!("fan_in_of supports rank 2 or 4 weights, got rank {r}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_normal_std() {
        let mut rng = Prng::seed_from_u64(1);
        let fan_in = 64;
        let w = kaiming_normal(&[40_000], fan_in, &mut rng);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / w.len() as f32;
        let expected = 2.0 / fan_in as f32;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!(
            (var - expected).abs() / expected < 0.1,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = Prng::seed_from_u64(2);
        let w = kaiming_uniform(&[10_000], 24, &mut rng);
        let bound = (6.0f32 / 24.0).sqrt();
        assert!(w.max() <= bound && w.min() >= -bound);
    }

    #[test]
    fn xavier_uses_both_fans() {
        let mut rng = Prng::seed_from_u64(3);
        let w = xavier_uniform(&[1000], 10, 30, &mut rng);
        let bound = (6.0f32 / 40.0).sqrt();
        assert!(w.max() <= bound && w.min() >= -bound);
    }

    #[test]
    fn fan_in_shapes() {
        assert_eq!(fan_in_of(&[128, 64]), 64);
        assert_eq!(fan_in_of(&[32, 16, 3, 3]), 16 * 9);
    }

    #[test]
    #[should_panic(expected = "rank 2 or 4")]
    fn fan_in_bad_rank_panics() {
        fan_in_of(&[1, 2, 3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = Prng::seed_from_u64(9);
        let mut r2 = Prng::seed_from_u64(9);
        let a = gaussian(&[32], 0.0, 1.0, &mut r1);
        let b = gaussian(&[32], 0.0, 1.0, &mut r2);
        assert_eq!(a, b);
    }
}
