//! Normalization kernels: batch normalization (2-D) and layer
//! normalization, forward and backward.
//!
//! ResNet/DenseNet/Inception/MobileNet all rely on BatchNorm; the
//! transformer model uses LayerNorm.
//!
//! `batchnorm2d_forward` runs on the `adagp_runtime` pool: the per-channel
//! statistics parallelize over channels and the normalization over
//! `(sample, channel)` row blocks, both with the scalar path's
//! floating-point order, so results are bit-identical for every
//! `ADAGP_THREADS`.

use crate::par;
use crate::Tensor;

/// Saved state from a batch-norm forward pass, needed by the backward pass.
#[derive(Debug, Clone)]
pub struct BatchNormCache {
    /// Normalized activations `x_hat`.
    pub x_hat: Tensor,
    /// Per-channel batch standard deviation (with epsilon folded in).
    pub std: Vec<f32>,
}

/// Batch normalization over `(N, C, H, W)`: normalizes each channel across
/// `N, H, W`, then applies per-channel scale `gamma` and shift `beta`.
///
/// Returns `(output, cache, batch_mean, batch_var)` — the mean/var feed the
/// running statistics kept by the layer.
///
/// # Panics
///
/// Panics on rank or channel mismatch.
pub fn batchnorm2d_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, BatchNormCache, Vec<f32>, Vec<f32>) {
    assert_eq!(x.ndim(), 4, "batchnorm2d: input must be (N, C, H, W)");
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    assert_eq!(gamma.len(), c, "batchnorm2d: gamma length mismatch");
    assert_eq!(beta.len(), c, "batchnorm2d: beta length mismatch");
    let per_c = n * h * w;
    let inv = 1.0 / per_c as f32;
    let hw = h * w;
    let xd = x.data();

    // Per-channel mean and variance. Each channel's sums run over samples
    // in ascending order — the same order as the scalar two-pass loops —
    // so sharding channels across the pool changes nothing.
    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    let work = 2 * n * c * hw;
    par::row_blocks_pair(&mut mean, &mut var, c, 1, 1, work, |first, mc, vc| {
        for (r, (m_out, v_out)) in mc.iter_mut().zip(vc.iter_mut()).enumerate() {
            let ci = first + r;
            let mut m = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for &v in &xd[base..base + hw] {
                    m += v;
                }
            }
            m *= inv;
            let mut vv = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for &v in &xd[base..base + hw] {
                    vv += (v - m) * (v - m);
                }
            }
            *m_out = m;
            *v_out = vv * inv;
        }
    });

    let std: Vec<f32> = var.iter().map(|&v| (v + eps).sqrt()).collect();
    let mut x_hat = vec![0.0f32; x.len()];
    let mut out = vec![0.0f32; x.len()];
    // Normalization: one `(sample, channel)` plane per row, elementwise.
    par::row_blocks_pair(
        &mut x_hat,
        &mut out,
        n * c,
        hw,
        hw,
        x.len(),
        |first, xhc, oc| {
            for (r, (xh_row, out_row)) in xhc.chunks_mut(hw).zip(oc.chunks_mut(hw)).enumerate() {
                let row = first + r;
                let ci = row % c;
                let base = row * hw;
                let m = mean[ci];
                let s = 1.0 / std[ci];
                let g = gamma.data()[ci];
                let b = beta.data()[ci];
                for (i, (xh, o)) in xh_row.iter_mut().zip(out_row.iter_mut()).enumerate() {
                    let v = (xd[base + i] - m) * s;
                    *xh = v;
                    *o = g * v + b;
                }
            }
        },
    );
    (
        Tensor::from_vec(out, x.shape()),
        BatchNormCache {
            x_hat: Tensor::from_vec(x_hat, x.shape()),
            std,
        },
        mean,
        var,
    )
}

/// Batch-norm inference pass using running statistics.
///
/// # Panics
///
/// Panics on rank or channel mismatch.
pub fn batchnorm2d_infer(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    running_mean: &[f32],
    running_var: &[f32],
    eps: f32,
) -> Tensor {
    assert_eq!(x.ndim(), 4, "batchnorm2d_infer: input must be rank-4");
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    assert_eq!(running_mean.len(), c);
    assert_eq!(running_var.len(), c);
    let mut out = vec![0.0f32; x.len()];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let m = running_mean[ci];
            let s = 1.0 / (running_var[ci] + eps).sqrt();
            let g = gamma.data()[ci];
            let b = beta.data()[ci];
            for i in base..base + h * w {
                out[i] = g * (x.data()[i] - m) * s + b;
            }
        }
    }
    Tensor::from_vec(out, x.shape())
}

/// Batch-norm backward pass.
///
/// Returns `(dx, dgamma, dbeta)` using the standard closed-form batch-norm
/// gradient.
///
/// # Panics
///
/// Panics on rank or shape mismatch with the cache.
pub fn batchnorm2d_backward(
    dy: &Tensor,
    cache: &BatchNormCache,
    gamma: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    assert_eq!(
        dy.shape(),
        cache.x_hat.shape(),
        "batchnorm2d_backward: shape mismatch"
    );
    let (n, c, h, w) = (dy.dim(0), dy.dim(1), dy.dim(2), dy.dim(3));
    let per_c = (n * h * w) as f32;

    let mut dgamma = vec![0.0f32; c];
    let mut dbeta = vec![0.0f32; c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for i in base..base + h * w {
                dgamma[ci] += dy.data()[i] * cache.x_hat.data()[i];
                dbeta[ci] += dy.data()[i];
            }
        }
    }

    let mut dx = vec![0.0f32; dy.len()];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let g = gamma.data()[ci];
            let inv_std = 1.0 / cache.std[ci];
            let dg = dgamma[ci];
            let db = dbeta[ci];
            for i in base..base + h * w {
                let xh = cache.x_hat.data()[i];
                dx[i] = g * inv_std / per_c * (per_c * dy.data()[i] - db - xh * dg);
            }
        }
    }
    (
        Tensor::from_vec(dx, dy.shape()),
        Tensor::from_vec(dgamma, &[c]),
        Tensor::from_vec(dbeta, &[c]),
    )
}

/// Saved state from a layer-norm forward pass.
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    /// Normalized activations.
    pub x_hat: Tensor,
    /// Per-row inverse standard deviation.
    pub inv_std: Vec<f32>,
}

/// Layer normalization over the last dimension of a rank-2 tensor
/// `(rows, features)`.
///
/// # Panics
///
/// Panics on rank or length mismatch.
pub fn layernorm_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, LayerNormCache) {
    assert_eq!(x.ndim(), 2, "layernorm: input must be (rows, features)");
    let (r, f) = (x.dim(0), x.dim(1));
    assert_eq!(gamma.len(), f, "layernorm: gamma length mismatch");
    assert_eq!(beta.len(), f, "layernorm: beta length mismatch");
    let mut out = vec![0.0f32; x.len()];
    let mut x_hat = vec![0.0f32; x.len()];
    let mut inv_std = vec![0.0f32; r];
    for i in 0..r {
        let row = &x.data()[i * f..(i + 1) * f];
        let mean = row.iter().sum::<f32>() / f as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / f as f32;
        let is = 1.0 / (var + eps).sqrt();
        inv_std[i] = is;
        for j in 0..f {
            let xh = (row[j] - mean) * is;
            x_hat[i * f + j] = xh;
            out[i * f + j] = gamma.data()[j] * xh + beta.data()[j];
        }
    }
    (
        Tensor::from_vec(out, x.shape()),
        LayerNormCache {
            x_hat: Tensor::from_vec(x_hat, x.shape()),
            inv_std,
        },
    )
}

/// Layer-norm backward pass. Returns `(dx, dgamma, dbeta)`.
///
/// # Panics
///
/// Panics on shape mismatch with the cache.
pub fn layernorm_backward(
    dy: &Tensor,
    cache: &LayerNormCache,
    gamma: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    assert_eq!(
        dy.shape(),
        cache.x_hat.shape(),
        "layernorm_backward: shape mismatch"
    );
    let (r, f) = (dy.dim(0), dy.dim(1));
    let mut dgamma = vec![0.0f32; f];
    let mut dbeta = vec![0.0f32; f];
    let mut dx = vec![0.0f32; dy.len()];
    for i in 0..r {
        let xh = &cache.x_hat.data()[i * f..(i + 1) * f];
        let gy = &dy.data()[i * f..(i + 1) * f];
        let mut sum_gyg = 0.0f32;
        let mut sum_gyg_xh = 0.0f32;
        for j in 0..f {
            let gyg = gy[j] * gamma.data()[j];
            sum_gyg += gyg;
            sum_gyg_xh += gyg * xh[j];
            dgamma[j] += gy[j] * xh[j];
            dbeta[j] += gy[j];
        }
        let is = cache.inv_std[i];
        let nf = f as f32;
        for j in 0..f {
            let gyg = gy[j] * gamma.data()[j];
            dx[i * f + j] = is / nf * (nf * gyg - sum_gyg - xh[j] * sum_gyg_xh);
        }
    }
    (
        Tensor::from_vec(dx, dy.shape()),
        Tensor::from_vec(dgamma, &[f]),
        Tensor::from_vec(dbeta, &[f]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, Prng};

    #[test]
    fn batchnorm_output_is_normalized() {
        let mut rng = Prng::seed_from_u64(1);
        let x = init::gaussian(&[4, 3, 5, 5], 2.0, 3.0, &mut rng);
        let gamma = Tensor::ones(&[3]);
        let beta = Tensor::zeros(&[3]);
        let (y, _, _, _) = batchnorm2d_forward(&x, &gamma, &beta, 1e-5);
        // Each channel of y should have ~zero mean and ~unit variance.
        let (n, c, h, w) = (4, 3, 5, 5);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                vals.extend_from_slice(&y.data()[base..base + h * w]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_gamma_beta_applied() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 1, 2]);
        let gamma = Tensor::from_vec(vec![2.0], &[1]);
        let beta = Tensor::from_vec(vec![10.0], &[1]);
        let (y, _, _, _) = batchnorm2d_forward(&x, &gamma, &beta, 1e-5);
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!((mean - 10.0).abs() < 1e-4);
    }

    #[test]
    fn batchnorm_backward_fd() {
        let mut rng = Prng::seed_from_u64(2);
        let x = init::gaussian(&[2, 2, 3, 3], 0.0, 1.0, &mut rng);
        let gamma = init::uniform(&[2], 0.5, 1.5, &mut rng);
        let beta = init::uniform(&[2], -0.5, 0.5, &mut rng);
        let (_, cache, _, _) = batchnorm2d_forward(&x, &gamma, &beta, 1e-5);
        let dy = Tensor::ones(x.shape());
        let (dx, dgamma, dbeta) = batchnorm2d_backward(&dy, &cache, &gamma);

        let f = |x: &Tensor, g: &Tensor, b: &Tensor| batchnorm2d_forward(x, g, b, 1e-5).0.sum();
        let eps = 1e-2;
        for i in (0..x.len()).step_by(4) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp, &gamma, &beta) - f(&xm, &gamma, &beta)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 2e-2,
                "dx[{i}] numeric {num} vs {}",
                dx.data()[i]
            );
        }
        for i in 0..gamma.len() {
            let mut gp = gamma.clone();
            gp.data_mut()[i] += eps;
            let mut gm = gamma.clone();
            gm.data_mut()[i] -= eps;
            let num = (f(&x, &gp, &beta) - f(&x, &gm, &beta)) / (2.0 * eps);
            assert!((num - dgamma.data()[i]).abs() < 2e-2);
        }
        // dbeta is the plain sum of dy per channel = n*h*w.
        assert!(dbeta.data().iter().all(|&v| (v - 18.0).abs() < 1e-3));
    }

    #[test]
    fn batchnorm_infer_uses_running_stats() {
        let x = Tensor::from_vec(vec![1.0, 3.0], &[2, 1, 1, 1]);
        let y = batchnorm2d_infer(
            &x,
            &Tensor::ones(&[1]),
            &Tensor::zeros(&[1]),
            &[2.0],
            &[1.0],
            0.0,
        );
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn layernorm_rows_normalized() {
        let mut rng = Prng::seed_from_u64(3);
        let x = init::gaussian(&[4, 16], 5.0, 2.0, &mut rng);
        let (y, _) = layernorm_forward(&x, &Tensor::ones(&[16]), &Tensor::zeros(&[16]), 1e-5);
        for i in 0..4 {
            let row = &y.data()[i * 16..(i + 1) * 16];
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn layernorm_backward_fd() {
        let mut rng = Prng::seed_from_u64(4);
        let x = init::gaussian(&[3, 8], 0.0, 1.0, &mut rng);
        let gamma = init::uniform(&[8], 0.5, 1.5, &mut rng);
        let beta = Tensor::zeros(&[8]);
        let (_, cache) = layernorm_forward(&x, &gamma, &beta, 1e-5);
        let dy = Tensor::ones(x.shape());
        let (dx, dgamma, _) = layernorm_backward(&dy, &cache, &gamma);

        let f = |x: &Tensor, g: &Tensor| layernorm_forward(x, g, &beta, 1e-5).0.sum();
        let eps = 1e-2;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp, &gamma) - f(&xm, &gamma)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 2e-2,
                "dx[{i}] numeric {num} vs {}",
                dx.data()[i]
            );
        }
        for i in 0..gamma.len() {
            let mut gp = gamma.clone();
            gp.data_mut()[i] += eps;
            let mut gm = gamma.clone();
            gm.data_mut()[i] -= eps;
            let num = (f(&x, &gp) - f(&x, &gm)) / (2.0 * eps);
            assert!((num - dgamma.data()[i]).abs() < 2e-2);
        }
    }
}
