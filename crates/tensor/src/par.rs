//! Serial/parallel dispatch for the kernels in this crate.
//!
//! Every parallel kernel is expressed as a *row-block* function: given a
//! first row index and a mutable block of whole output rows, it computes
//! those rows with a fixed per-element floating-point order. Running one
//! block over all rows is the scalar reference; sharding the blocks across
//! the `adagp_runtime` pool produces bit-identical bytes because chunk
//! boundaries depend only on the row count (never the thread count) and
//! each row is written by exactly one task.

use adagp_runtime::det_chunk_len;

/// Estimated scalar-op count below which parallel dispatch is not worth
/// the queueing overhead and the kernel runs inline.
pub(crate) const PAR_MIN_WORK: usize = 16 * 1024;

/// Cap (in `f32` elements) on scratch buffers materialized to enable
/// parallelism (e.g. batched im2col); above it kernels fall back to the
/// memory-lean serial path.
pub(crate) const SCRATCH_CAP: usize = 1 << 24;

/// Splits `out` — viewed as `rows` rows of `row_len` elements — into fixed
/// row blocks and runs `f(first_row, block)` for each, in parallel when
/// `work` (a rough op-count estimate, used *only* for the serial/parallel
/// decision) says it pays off.
pub(crate) fn row_blocks<F>(out: &mut [f32], rows: usize, row_len: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * row_len);
    let pool = adagp_runtime::pool();
    if pool.size() == 1 || rows < 2 || work < PAR_MIN_WORK {
        f(0, out);
        return;
    }
    let chunk_rows = det_chunk_len(rows);
    pool.parallel_chunks(out, chunk_rows * row_len.max(1), |ci, chunk| {
        f(ci * chunk_rows, chunk)
    });
}

/// Like [`row_blocks`] over two lockstep outputs (`a` rows of `a_row_len`,
/// `b` rows of `b_row_len`): `f(first_row, a_block, b_block)`.
pub(crate) fn row_blocks_pair<F>(
    a: &mut [f32],
    b: &mut [f32],
    rows: usize,
    a_row_len: usize,
    b_row_len: usize,
    work: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32], &mut [f32]) + Sync,
{
    debug_assert_eq!(a.len(), rows * a_row_len);
    debug_assert_eq!(b.len(), rows * b_row_len);
    let pool = adagp_runtime::pool();
    if pool.size() == 1 || rows < 2 || work < PAR_MIN_WORK {
        f(0, a, b);
        return;
    }
    let chunk_rows = det_chunk_len(rows);
    pool.parallel_chunks_pair(
        a,
        b,
        chunk_rows * a_row_len.max(1),
        chunk_rows * b_row_len.max(1),
        |ci, ca, cb| f(ci * chunk_rows, ca, cb),
    );
}
