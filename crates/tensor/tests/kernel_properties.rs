//! Property-based tests of the tensor kernels: linearity, adjointness and
//! conservation laws that must hold for any shapes.
//!
//! The build environment is offline, so instead of proptest these are
//! seeded randomized sweeps driven by the crate's own [`Prng`]: each
//! property runs across `CASES` pseudo-random configurations drawn from the
//! same ranges the original proptest strategies used.

use adagp_runtime::with_threads;
use adagp_tensor::conv::{conv2d, conv2d_backward_data, conv2d_backward_weight, Conv2dParams};
use adagp_tensor::norm::batchnorm2d_forward;
use adagp_tensor::pool::{avgpool2d, avgpool2d_backward, global_avgpool, maxpool2d};
use adagp_tensor::softmax::{cross_entropy, log_softmax, relu, relu_backward};
use adagp_tensor::{init, Prng, Tensor};

const CASES: u64 = 48;

/// Uniform draw from `lo..hi` (half-open, like a proptest range strategy).
fn draw(rng: &mut Prng, lo: usize, hi: usize) -> usize {
    lo + rng.below(hi - lo)
}

/// Runs `body` for `CASES` seeded cases.
fn cases(mut body: impl FnMut(&mut Prng)) {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x7e45_0000 + case);
        body(&mut rng);
    }
}

/// Convolution is linear in its input: conv(ax) = a·conv(x).
#[test]
fn conv_linear_in_input() {
    cases(|rng| {
        let a = rng.uniform_range(0.1, 8.0);
        let x = init::gaussian(&[1, 2, 6, 6], 0.0, 1.0, rng);
        let w = init::gaussian(&[3, 2, 3, 3], 0.0, 0.5, rng);
        let p = Conv2dParams::new(1, 1);
        let y1 = conv2d(&x.scale(a), &w, None, &p);
        let y2 = conv2d(&x, &w, None, &p).scale(a);
        assert!(y1.allclose(&y2, 1e-3 * a.max(1.0)));
    });
}

/// Convolution data-backward is the adjoint of the forward map:
/// <conv(x), y> == <x, conv_bw(y)> for any x, y.
#[test]
fn conv_backward_is_adjoint() {
    cases(|rng| {
        let x = init::gaussian(&[1, 2, 5, 5], 0.0, 1.0, rng);
        let w = init::gaussian(&[3, 2, 3, 3], 0.0, 0.5, rng);
        let p = Conv2dParams::new(1, 1);
        let y = init::gaussian(&[1, 3, 5, 5], 0.0, 1.0, rng);
        let fwd = conv2d(&x, &w, None, &p);
        let bwd = conv2d_backward_data(&y, &w, 5, 5, &p);
        let lhs: f32 = fwd.mul(&y).sum();
        let rhs: f32 = x.mul(&bwd).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    });
}

/// Average pooling preserves the mean of the tensor (for exact tiling).
#[test]
fn avgpool_preserves_mean() {
    cases(|rng| {
        let x = init::gaussian(&[2, 3, 8, 8], 0.0, 2.0, rng);
        let y = avgpool2d(&x, 2, 2);
        assert!((x.mean() - y.mean()).abs() < 1e-4);
    });
}

/// Avg-pool backward conserves total gradient mass.
#[test]
fn avgpool_backward_conserves_mass() {
    cases(|rng| {
        let dy = init::gaussian(&[1, 2, 4, 4], 0.0, 1.0, rng);
        let dx = avgpool2d_backward(&dy, &[1, 2, 8, 8], 2, 2);
        assert!((dx.sum() - dy.sum()).abs() < 1e-3);
    });
}

/// Max-pool output dominates avg-pool output elementwise.
#[test]
fn maxpool_dominates_avgpool() {
    cases(|rng| {
        let x = init::gaussian(&[1, 2, 8, 8], 0.0, 1.0, rng);
        let mx = maxpool2d(&x, 2, 2).output;
        let av = avgpool2d(&x, 2, 2);
        for (m, a) in mx.data().iter().zip(av.data().iter()) {
            assert!(m >= a);
        }
    });
}

/// Global average pooling equals the per-channel mean.
#[test]
fn gap_equals_channel_mean() {
    cases(|rng| {
        let x = init::gaussian(&[1, 1, 6, 6], 0.0, 1.0, rng);
        let y = global_avgpool(&x);
        assert!((y.data()[0] - x.mean()).abs() < 1e-5);
    });
}

/// Log-softmax is shift invariant: adding a constant to every logit leaves
/// it unchanged.
#[test]
fn log_softmax_shift_invariant() {
    cases(|rng| {
        let shift = rng.uniform_range(-50.0, 50.0);
        let l = init::gaussian(&[2, 5], 0.0, 2.0, rng);
        let a = log_softmax(&l);
        let b = log_softmax(&l.map(|v| v + shift));
        assert!(a.allclose(&b, 1e-3));
    });
}

/// Cross-entropy gradient rows sum to zero (softmax minus one-hot).
#[test]
fn cross_entropy_grad_rows_sum_zero() {
    cases(|rng| {
        let t = draw(rng, 0, 4);
        let l = init::gaussian(&[1, 4], 0.0, 2.0, rng);
        let (_, g) = cross_entropy(&l, &[t]);
        assert!(g.sum().abs() < 1e-5);
    });
}

/// ReLU backward never increases gradient magnitude.
#[test]
fn relu_backward_contracts() {
    cases(|rng| {
        let x = init::gaussian(&[32], 0.0, 1.0, rng);
        let dy = init::gaussian(&[32], 0.0, 1.0, rng);
        let dx = relu_backward(&x, &dy);
        assert!(dx.norm() <= dy.norm() + 1e-6);
        // And forward output is non-negative.
        assert!(relu(&x).min() >= 0.0);
    });
}

/// matmul distributes over addition: (A+B)C = AC + BC.
#[test]
fn matmul_distributes() {
    cases(|rng| {
        let a = init::gaussian(&[4, 3], 0.0, 1.0, rng);
        let b = init::gaussian(&[4, 3], 0.0, 1.0, rng);
        let c = init::gaussian(&[3, 5], 0.0, 1.0, rng);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        assert!(lhs.allclose(&rhs, 1e-3));
    });
}

/// Tensor reshape preserves the sum.
#[test]
fn reshape_preserves_sum() {
    cases(|rng| {
        let rows = draw(rng, 1, 8);
        let cols = draw(rng, 1, 8);
        let t = init::gaussian(&[rows * cols], 0.0, 1.0, rng);
        let r = t.reshape(&[rows, cols]);
        assert!((t.sum() - r.sum()).abs() < 1e-5);
    });
}

/// Deterministic sanity outside the randomized sweeps: conv with zero
/// weights is zero.
#[test]
fn conv_zero_weights_zero_output() {
    let x = Tensor::ones(&[1, 2, 4, 4]);
    let w = Tensor::zeros(&[3, 2, 3, 3]);
    let y = conv2d(&x, &w, None, &Conv2dParams::new(1, 1));
    assert_eq!(y.norm(), 0.0);
}

// ---------------------------------------------------------------------------
// Thread-count invariance: every parallel kernel must be *bit-identical* to
// the scalar reference (`ADAGP_THREADS=1` runs the kernels inline) for every
// pool size. The shapes are chosen large enough to clear the kernels'
// serial-dispatch thresholds, so the parallel paths genuinely execute.
// ---------------------------------------------------------------------------

/// Thread counts swept against the scalar reference. 7 is deliberately odd
/// and coprime with typical chunk counts to shake out boundary bugs.
const SWEEP_THREADS: [usize; 3] = [2, 4, 7];

/// Asserts `kernel` produces byte-identical tensors for 1, 2, 4 and 7
/// threads.
fn assert_thread_invariant(label: &str, kernel: impl Fn() -> Vec<Tensor>) {
    let reference = with_threads(1, &kernel);
    for threads in SWEEP_THREADS {
        let got = with_threads(threads, &kernel);
        assert_eq!(reference.len(), got.len(), "{label}: output arity");
        for (i, (a, b)) in reference.iter().zip(got.iter()).enumerate() {
            assert_eq!(
                a.shape(),
                b.shape(),
                "{label}[{i}] shape, threads={threads}"
            );
            assert!(
                a.data() == b.data(),
                "{label}[{i}] diverged from scalar reference at threads={threads}"
            );
        }
    }
}

#[test]
fn conv2d_forward_thread_invariant() {
    cases(|rng| {
        let n = draw(rng, 1, 5);
        let cin = draw(rng, 1, 5);
        let cout = draw(rng, 2, 9);
        let size = draw(rng, 6, 13);
        let x = init::gaussian(&[n, cin, size, size], 0.0, 1.0, rng);
        let w = init::gaussian(&[cout, cin, 3, 3], 0.0, 0.5, rng);
        let b = init::gaussian(&[cout], 0.0, 0.5, rng);
        let p = Conv2dParams::new(1 + draw(rng, 0, 2), 1);
        assert_thread_invariant("conv2d", || vec![conv2d(&x, &w, Some(&b), &p)]);
    });
}

#[test]
fn conv2d_backward_thread_invariant() {
    cases(|rng| {
        let n = draw(rng, 2, 5);
        let cin = draw(rng, 1, 4);
        let cout = draw(rng, 2, 7);
        let size = draw(rng, 6, 11);
        let p = Conv2dParams::new(1, 1);
        let x = init::gaussian(&[n, cin, size, size], 0.0, 1.0, rng);
        let dy = init::gaussian(&[n, cout, size, size], 0.0, 1.0, rng);
        let w = init::gaussian(&[cout, cin, 3, 3], 0.0, 0.5, rng);
        assert_thread_invariant("conv2d_backward", || {
            let dx = conv2d_backward_data(&dy, &w, size, size, &p);
            let (dw, db) = conv2d_backward_weight(&x, &dy, 3, 3, &p);
            vec![dx, dw, db]
        });
    });
}

#[test]
fn matmul_family_thread_invariant() {
    cases(|rng| {
        let m = draw(rng, 2, 70);
        let k = draw(rng, 1, 48);
        let n = draw(rng, 1, 48);
        let a = init::gaussian(&[m, k], 0.0, 1.0, rng);
        let b = init::gaussian(&[k, n], 0.0, 1.0, rng);
        let at = init::gaussian(&[k, m], 0.0, 1.0, rng);
        let bt = init::gaussian(&[n, k], 0.0, 1.0, rng);
        assert_thread_invariant("matmul_family", || {
            vec![a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt)]
        });
    });
}

#[test]
fn batchnorm_forward_thread_invariant() {
    cases(|rng| {
        let n = draw(rng, 2, 7);
        let c = draw(rng, 2, 9);
        let size = draw(rng, 4, 13);
        let x = init::gaussian(&[n, c, size, size], 1.0, 2.0, rng);
        let gamma = init::uniform(&[c], 0.5, 1.5, rng);
        let beta = init::uniform(&[c], -0.5, 0.5, rng);
        assert_thread_invariant("batchnorm2d_forward", || {
            let (y, cache, mean, var) = batchnorm2d_forward(&x, &gamma, &beta, 1e-5);
            vec![
                y,
                cache.x_hat,
                Tensor::from_vec(cache.std, &[c]),
                Tensor::from_vec(mean, &[c]),
                Tensor::from_vec(var, &[c]),
            ]
        });
    });
}

/// Large-shape spot check at the bench sizes, where chunking covers many
/// row blocks per thread.
#[test]
fn large_shapes_thread_invariant() {
    let mut rng = Prng::seed_from_u64(0xbeef);
    let x = init::gaussian(&[4, 16, 16, 16], 0.0, 1.0, &mut rng);
    let w = init::gaussian(&[32, 16, 3, 3], 0.0, 0.1, &mut rng);
    let p = Conv2dParams::new(1, 1);
    let a = init::gaussian(&[128, 96], 0.0, 1.0, &mut rng);
    let b = init::gaussian(&[96, 128], 0.0, 1.0, &mut rng);
    assert_thread_invariant("large_shapes", || {
        let y = conv2d(&x, &w, None, &p);
        let dx = conv2d_backward_data(&y, &w, 16, 16, &p);
        let (dw, db) = conv2d_backward_weight(&x, &y, 3, 3, &p);
        vec![y, dx, dw, db, a.matmul(&b)]
    });
}
