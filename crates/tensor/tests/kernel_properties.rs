//! Property-based tests of the tensor kernels: linearity, adjointness and
//! conservation laws that must hold for any shapes.

use adagp_tensor::conv::{conv2d, conv2d_backward_data, Conv2dParams};
use adagp_tensor::pool::{avgpool2d, avgpool2d_backward, global_avgpool, maxpool2d};
use adagp_tensor::softmax::{cross_entropy, log_softmax, relu, relu_backward};
use adagp_tensor::{init, Prng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Convolution is linear in its input: conv(ax) = a·conv(x).
    #[test]
    fn conv_linear_in_input(a in 0.1f32..8.0, seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let x = init::gaussian(&[1, 2, 6, 6], 0.0, 1.0, &mut rng);
        let w = init::gaussian(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let p = Conv2dParams::new(1, 1);
        let y1 = conv2d(&x.scale(a), &w, None, &p);
        let y2 = conv2d(&x, &w, None, &p).scale(a);
        prop_assert!(y1.allclose(&y2, 1e-3 * a.max(1.0)));
    }

    /// Convolution data-backward is the adjoint of the forward map:
    /// <conv(x), y> == <x, conv_bw(y)> for any x, y.
    #[test]
    fn conv_backward_is_adjoint(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let x = init::gaussian(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let w = init::gaussian(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let p = Conv2dParams::new(1, 1);
        let y = init::gaussian(&[1, 3, 5, 5], 0.0, 1.0, &mut rng);
        let fwd = conv2d(&x, &w, None, &p);
        let bwd = conv2d_backward_data(&y, &w, 5, 5, &p);
        let lhs: f32 = fwd.mul(&y).sum();
        let rhs: f32 = x.mul(&bwd).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// Average pooling preserves the mean of the tensor (for exact tiling).
    #[test]
    fn avgpool_preserves_mean(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let x = init::gaussian(&[2, 3, 8, 8], 0.0, 2.0, &mut rng);
        let y = avgpool2d(&x, 2, 2);
        prop_assert!((x.mean() - y.mean()).abs() < 1e-4);
    }

    /// Avg-pool backward conserves total gradient mass.
    #[test]
    fn avgpool_backward_conserves_mass(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let dy = init::gaussian(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let dx = avgpool2d_backward(&dy, &[1, 2, 8, 8], 2, 2);
        prop_assert!((dx.sum() - dy.sum()).abs() < 1e-3);
    }

    /// Max-pool output dominates avg-pool output elementwise.
    #[test]
    fn maxpool_dominates_avgpool(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let x = init::gaussian(&[1, 2, 8, 8], 0.0, 1.0, &mut rng);
        let mx = maxpool2d(&x, 2, 2).output;
        let av = avgpool2d(&x, 2, 2);
        for (m, a) in mx.data().iter().zip(av.data().iter()) {
            prop_assert!(m >= a);
        }
    }

    /// Global average pooling equals the per-channel mean.
    #[test]
    fn gap_equals_channel_mean(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let x = init::gaussian(&[1, 1, 6, 6], 0.0, 1.0, &mut rng);
        let y = global_avgpool(&x);
        prop_assert!((y.data()[0] - x.mean()).abs() < 1e-5);
    }

    /// Log-softmax is shift invariant: adding a constant to every logit
    /// leaves it unchanged.
    #[test]
    fn log_softmax_shift_invariant(shift in -50.0f32..50.0, seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let l = init::gaussian(&[2, 5], 0.0, 2.0, &mut rng);
        let a = log_softmax(&l);
        let b = log_softmax(&l.map(|v| v + shift));
        prop_assert!(a.allclose(&b, 1e-3));
    }

    /// Cross-entropy gradient rows sum to zero (softmax minus one-hot).
    #[test]
    fn cross_entropy_grad_rows_sum_zero(seed in 0u64..500, t in 0usize..4) {
        let mut rng = Prng::seed_from_u64(seed);
        let l = init::gaussian(&[1, 4], 0.0, 2.0, &mut rng);
        let (_, g) = cross_entropy(&l, &[t]);
        prop_assert!(g.sum().abs() < 1e-5);
    }

    /// ReLU backward never increases gradient magnitude.
    #[test]
    fn relu_backward_contracts(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let x = init::gaussian(&[32], 0.0, 1.0, &mut rng);
        let dy = init::gaussian(&[32], 0.0, 1.0, &mut rng);
        let dx = relu_backward(&x, &dy);
        prop_assert!(dx.norm() <= dy.norm() + 1e-6);
        // And forward output is non-negative.
        prop_assert!(relu(&x).min() >= 0.0);
    }

    /// matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let a = init::gaussian(&[4, 3], 0.0, 1.0, &mut rng);
        let b = init::gaussian(&[4, 3], 0.0, 1.0, &mut rng);
        let c = init::gaussian(&[3, 5], 0.0, 1.0, &mut rng);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    /// Tensor reshape preserves the sum.
    #[test]
    fn reshape_preserves_sum(rows in 1usize..8, cols in 1usize..8, seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let t = init::gaussian(&[rows * cols], 0.0, 1.0, &mut rng);
        let r = t.reshape(&[rows, cols]);
        prop_assert!((t.sum() - r.sum()).abs() < 1e-5);
    }
}

/// Deterministic sanity outside proptest: conv with zero weights is zero.
#[test]
fn conv_zero_weights_zero_output() {
    let x = Tensor::ones(&[1, 2, 4, 4]);
    let w = Tensor::zeros(&[3, 2, 3, 3]);
    let y = conv2d(&x, &w, None, &Conv2dParams::new(1, 1));
    assert_eq!(y.norm(), 0.0);
}
