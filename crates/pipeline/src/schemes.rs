//! Step-count models of the three pipeline schemes and their ADA-GP
//! overlays (§3.8, Figures 10–12).

use crate::schedule::simulate_gpipe;
use serde::{Deserialize, Serialize};

/// Pipeline setup: the paper uses 4 devices × 4 micro-batches with
/// forward = 1 step and backward = 2 steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Number of pipeline stages/devices.
    pub devices: usize,
    /// Micro-batches per mini-batch.
    pub microbatches: usize,
    /// Steps per micro-batch forward on one device.
    pub fw: usize,
    /// Steps per micro-batch backward on one device.
    pub bw: usize,
}

impl Default for PipelineConfig {
    /// The paper's §6.5 setup.
    fn default() -> Self {
        PipelineConfig {
            devices: 4,
            microbatches: 4,
            fw: 1,
            bw: 2,
        }
    }
}

/// Which baseline pipelining technique ADA-GP overlays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineScheme {
    /// GPipe (Huang et al.): all-forward then all-backward.
    GPipe,
    /// DAPPLE (Fan et al.): 1F1B interleaving (same makespan for one
    /// batch; lower activation memory).
    Dapple,
    /// Chimera (Li & Hoefler): bidirectional pipelines.
    Chimera,
}

impl PipelineScheme {
    /// All three schemes in the paper's order.
    pub fn all() -> [PipelineScheme; 3] {
        [
            PipelineScheme::GPipe,
            PipelineScheme::Dapple,
            PipelineScheme::Chimera,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineScheme::GPipe => "GPipe",
            PipelineScheme::Dapple => "DAPPLE",
            PipelineScheme::Chimera => "Chimera",
        }
    }

    /// Steps the baseline scheme needs for **one** mini-batch.
    ///
    /// GPipe/DAPPLE: `(D + M − 1) · (fw + bw)` — derived from the schedule
    /// simulator. Chimera's bidirectional pipelines overlap half the
    /// micro-batches: `(D + M/2 − 1) · (fw + bw) + fw`.
    pub fn batch_steps(&self, cfg: &PipelineConfig) -> usize {
        let (d, m) = (cfg.devices, cfg.microbatches);
        match self {
            PipelineScheme::GPipe | PipelineScheme::Dapple => (d + m - 1) * (cfg.fw + cfg.bw),
            PipelineScheme::Chimera => (d + m.div_ceil(2) - 1) * (cfg.fw + cfg.bw) + cfg.fw,
        }
    }

    /// Steps ADA-GP needs for a **pair** of batches (one Phase GP + one
    /// Phase BP, §6.5): the GP batch has no backward pass, so its forward
    /// micro-batches stream into the baseline schedule's bubbles, adding
    /// only `M · fw` steps.
    pub fn adagp_pair_steps(&self, cfg: &PipelineConfig) -> usize {
        self.batch_steps(cfg) + cfg.microbatches * cfg.fw
    }

    /// ADA-GP speed-up over the baseline at the steady 1:1 GP:BP ratio,
    /// with `alpha_ratio` = predictor latency as a fraction of one
    /// forward step (model-dependent; Figure 20's per-model variation).
    pub fn adagp_speedup(&self, cfg: &PipelineConfig, alpha_ratio: f64) -> f64 {
        let baseline = 2.0 * self.batch_steps(cfg) as f64;
        // The predictor adds α on each device's critical-path forward.
        let overhead = alpha_ratio * (cfg.devices + cfg.microbatches) as f64 * cfg.fw as f64;
        baseline / (self.adagp_pair_steps(cfg) as f64 + overhead)
    }
}

/// Validates the GPipe closed form against the event-level simulator.
pub fn gpipe_steps_via_simulation(cfg: &PipelineConfig) -> usize {
    simulate_gpipe(cfg.devices, cfg.microbatches, cfg.fw, cfg.bw).makespan()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_step_counts() {
        let cfg = PipelineConfig::default();
        // §6.5: GPipe 21, DAPPLE 21, Chimera 16 steps per batch.
        assert_eq!(PipelineScheme::GPipe.batch_steps(&cfg), 21);
        assert_eq!(PipelineScheme::Dapple.batch_steps(&cfg), 21);
        assert_eq!(PipelineScheme::Chimera.batch_steps(&cfg), 16);
    }

    #[test]
    fn paper_adagp_pair_counts() {
        let cfg = PipelineConfig::default();
        // §6.5: ADA-GP needs 25 steps (GPipe/DAPPLE) and 20 (Chimera) for
        // two batches.
        assert_eq!(PipelineScheme::GPipe.adagp_pair_steps(&cfg), 25);
        assert_eq!(PipelineScheme::Dapple.adagp_pair_steps(&cfg), 25);
        assert_eq!(PipelineScheme::Chimera.adagp_pair_steps(&cfg), 20);
    }

    #[test]
    fn paper_peak_speedups() {
        let cfg = PipelineConfig::default();
        // With a negligible predictor: 42/25 = 1.68× and 32/20 = 1.6×.
        assert!((PipelineScheme::GPipe.adagp_speedup(&cfg, 0.0) - 1.68).abs() < 0.001);
        assert!((PipelineScheme::Chimera.adagp_speedup(&cfg, 0.0) - 1.60).abs() < 0.001);
    }

    #[test]
    fn alpha_reduces_speedup_toward_paper_averages() {
        let cfg = PipelineConfig::default();
        // Figure 20: averages 1.654 (GPipe/DAPPLE) and 1.575 (Chimera)
        // across models — a small positive alpha lands there.
        let s = PipelineScheme::GPipe.adagp_speedup(&cfg, 0.05);
        assert!(s < 1.68 && s > 1.60, "speed-up {s}");
        let c = PipelineScheme::Chimera.adagp_speedup(&cfg, 0.05);
        assert!(c < 1.60 && c > 1.50, "speed-up {c}");
    }

    #[test]
    fn closed_form_matches_simulation() {
        for devices in 2..6 {
            for microbatches in 1..6 {
                let cfg = PipelineConfig {
                    devices,
                    microbatches,
                    fw: 1,
                    bw: 2,
                };
                assert_eq!(
                    PipelineScheme::GPipe.batch_steps(&cfg),
                    gpipe_steps_via_simulation(&cfg),
                    "d={devices} m={microbatches}"
                );
            }
        }
    }

    #[test]
    fn chimera_beats_gpipe() {
        let cfg = PipelineConfig::default();
        assert!(
            PipelineScheme::Chimera.batch_steps(&cfg) < PipelineScheme::GPipe.batch_steps(&cfg)
        );
    }

    #[test]
    fn speedup_monotone_in_alpha() {
        let cfg = PipelineConfig::default();
        let a = PipelineScheme::GPipe.adagp_speedup(&cfg, 0.0);
        let b = PipelineScheme::GPipe.adagp_speedup(&cfg, 0.2);
        assert!(a > b);
    }
}
