//! Event-level pipeline schedule simulation.
//!
//! Builds the device×time occupancy grid for a GPipe-style schedule so the
//! closed-form step counts used by [`crate::schemes`] are *derived*, not
//! asserted: forward of micro-batch `m` on device `d` waits for device
//! `d−1` to finish `m`; backward runs in reverse after all forwards.

use serde::{Deserialize, Serialize};

/// What occupies one device-step slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotKind {
    /// Idle bubble.
    Idle,
    /// Forward of micro-batch `m`.
    Forward(usize),
    /// Backward of micro-batch `m`.
    Backward(usize),
}

/// A device×time occupancy grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleGrid {
    /// `grid[d][t]` = what device `d` does at step `t`.
    pub grid: Vec<Vec<SlotKind>>,
}

impl ScheduleGrid {
    /// Total schedule length in steps (makespan).
    pub fn makespan(&self) -> usize {
        self.grid.first().map(|row| row.len()).unwrap_or(0)
    }

    /// Number of idle slots across all devices.
    pub fn bubbles(&self) -> usize {
        self.grid
            .iter()
            .flat_map(|row| row.iter())
            .filter(|s| **s == SlotKind::Idle)
            .count()
    }

    /// Fraction of device-steps spent idle.
    pub fn bubble_fraction(&self) -> f64 {
        let total: usize = self.grid.iter().map(|r| r.len()).sum();
        if total == 0 {
            0.0
        } else {
            self.bubbles() as f64 / total as f64
        }
    }
}

/// Simulates a GPipe schedule: all forwards pipeline through the devices,
/// then all backwards in reverse order. `fw` and `bw` are the step costs
/// of one micro-batch's forward/backward on one device.
///
/// # Panics
///
/// Panics if any parameter is zero.
pub fn simulate_gpipe(devices: usize, microbatches: usize, fw: usize, bw: usize) -> ScheduleGrid {
    assert!(devices > 0 && microbatches > 0 && fw > 0 && bw > 0);
    // fw_end[d][m]: step at which device d finishes forward of m.
    let mut fw_end = vec![vec![0usize; microbatches]; devices];
    let mut device_free = vec![0usize; devices];
    for m in 0..microbatches {
        for d in 0..devices {
            let upstream = if d == 0 { 0 } else { fw_end[d - 1][m] };
            let start = upstream.max(device_free[d]);
            fw_end[d][m] = start + fw;
            device_free[d] = fw_end[d][m];
        }
    }
    let all_fw_done = fw_end[devices - 1]
        .iter()
        .copied()
        .max()
        .expect("microbatches > 0");

    // Backward: device D-1 first, reverse pipeline, micro-batches in order.
    let mut bw_end = vec![vec![0usize; microbatches]; devices];
    let mut free = vec![all_fw_done; devices];
    for m in 0..microbatches {
        for d in (0..devices).rev() {
            let upstream = if d == devices - 1 {
                0
            } else {
                bw_end[d + 1][m]
            };
            let start = upstream.max(free[d]);
            bw_end[d][m] = start + bw;
            free[d] = bw_end[d][m];
        }
    }
    let makespan = bw_end[0].iter().copied().max().expect("microbatches > 0");

    // Render the occupancy grid.
    let mut grid = vec![vec![SlotKind::Idle; makespan]; devices];
    for d in 0..devices {
        for m in 0..microbatches {
            for t in fw_end[d][m] - fw..fw_end[d][m] {
                grid[d][t] = SlotKind::Forward(m);
            }
            for t in bw_end[d][m] - bw..bw_end[d][m] {
                grid[d][t] = SlotKind::Backward(m);
            }
        }
    }
    ScheduleGrid { grid }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_give_21_steps() {
        // §6.5.1: "the standard GPipe method takes 21 steps to complete
        // the training of one batch" (4 devices, 4 micro-batches, BW=2FW).
        let g = simulate_gpipe(4, 4, 1, 2);
        assert_eq!(g.makespan(), 21);
    }

    #[test]
    fn makespan_matches_closed_form() {
        for d in 1..6 {
            for m in 1..6 {
                let g = simulate_gpipe(d, m, 1, 2);
                assert_eq!(g.makespan(), (d + m - 1) + 2 * (d + m - 1), "d={d} m={m}");
            }
        }
    }

    #[test]
    fn no_overlapping_work_per_device() {
        // The grid construction itself guarantees one slot per step; check
        // every forward and backward got rendered.
        let g = simulate_gpipe(4, 4, 1, 2);
        let fw_slots: usize = g
            .grid
            .iter()
            .flat_map(|r| r.iter())
            .filter(|s| matches!(s, SlotKind::Forward(_)))
            .count();
        let bw_slots: usize = g
            .grid
            .iter()
            .flat_map(|r| r.iter())
            .filter(|s| matches!(s, SlotKind::Backward(_)))
            .count();
        assert_eq!(fw_slots, 4 * 4); // D*M forward slots
        assert_eq!(bw_slots, 4 * 4 * 2); // D*M*2 backward slots
    }

    #[test]
    fn bubbles_exist_in_gpipe() {
        let g = simulate_gpipe(4, 4, 1, 2);
        assert!(g.bubbles() > 0);
        assert!(g.bubble_fraction() > 0.2); // GPipe is bubble-heavy
    }

    #[test]
    fn single_device_has_no_bubbles() {
        let g = simulate_gpipe(1, 4, 1, 2);
        assert_eq!(g.bubbles(), 0);
        assert_eq!(g.makespan(), 4 * 3);
    }

    #[test]
    fn slot_kind_serde_round_trips_tuple_variants() {
        // SlotKind mixes unit and single-field tuple variants — the
        // hardest shape the activated serde derive supports.
        for slot in [SlotKind::Idle, SlotKind::Forward(3), SlotKind::Backward(11)] {
            let js = serde::json::to_string(&slot);
            let back: SlotKind = serde::json::from_str(&js).expect("slot round-trip");
            assert_eq!(back, slot, "{js}");
        }
        assert_eq!(serde::json::to_string(&SlotKind::Idle), "\"Idle\"");
        assert_eq!(
            serde::json::to_string(&SlotKind::Forward(3)),
            "{\"Forward\":3}"
        );
    }
}
