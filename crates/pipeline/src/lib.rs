//! # adagp-pipeline
//!
//! Multi-device pipeline schedule models (§3.8, §6.5 of the ADA-GP paper):
//! GPipe, DAPPLE and Chimera baselines plus the ADA-GP overlays that fill
//! their pipeline bubbles during Phase GP.
//!
//! The paper's setting: four devices, each mini-batch split into four
//! micro-batches, one *step* = the forward time of one micro-batch on one
//! device, backward = two steps. Under those parameters the paper reports:
//!
//! * GPipe / DAPPLE: 21 steps per batch; ADA-GP finishes a GP+BP batch
//!   pair in 25 steps (§6.5.1–6.5.2) → up to 42/25 ≈ 1.68× speed-up.
//! * Chimera: 16 steps per batch; ADA-GP pairs take 20 steps (§6.5.3) →
//!   up to 32/20 = 1.6×.
//!
//! [`schedule::simulate_gpipe`] builds the actual device×time grid and the
//! closed-form step counts are validated against it.

pub mod data_parallel;
pub mod schedule;
pub mod schemes;

pub use data_parallel::DataParallelConfig;
pub use schedule::{simulate_gpipe, ScheduleGrid, SlotKind};
pub use schemes::{PipelineConfig, PipelineScheme};
