//! Data-parallel training model (§2: "Data Parallelism … encounters
//! efficiency challenges due to gradient synchronization").
//!
//! In data-parallel training every worker computes gradients on its shard
//! and an all-reduce synchronizes them each batch. ADA-GP changes the
//! accounting in two ways (§6.5.1: "ADA-GP reduces the number of
//! synchronization steps to half"):
//!
//! * GP batches skip the backward pass, shrinking per-batch compute; and
//! * at the steady 1:1 ratio, only every second batch produces true
//!   gradients that need a full all-reduce — predicted gradients are
//!   produced *locally* from locally-computed activations.

use serde::{Deserialize, Serialize};

/// Data-parallel cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataParallelConfig {
    /// Number of workers.
    pub workers: usize,
    /// Compute steps for one worker's forward pass per batch.
    pub fw_steps: f64,
    /// Compute steps for one worker's backward pass per batch.
    pub bw_steps: f64,
    /// Steps for one gradient all-reduce (ring all-reduce grows with
    /// model size, roughly independent of worker count).
    pub allreduce_steps: f64,
    /// Predictor latency per batch (α·layers) in steps.
    pub alpha_steps: f64,
}

impl Default for DataParallelConfig {
    /// FW 1 unit, BW 2 units (the paper's ratio), all-reduce comparable to
    /// one forward pass, small predictor.
    fn default() -> Self {
        DataParallelConfig {
            workers: 4,
            fw_steps: 1.0,
            bw_steps: 2.0,
            allreduce_steps: 1.0,
            alpha_steps: 0.1,
        }
    }
}

/// Per-batch costs and sync counts of a data-parallel training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataParallelCost {
    /// Average steps per batch.
    pub steps_per_batch: f64,
    /// All-reduce synchronizations per batch (averaged over the phase mix).
    pub syncs_per_batch: f64,
}

/// Baseline data-parallel cost: every batch computes FW+BW and
/// synchronizes gradients.
pub fn baseline_cost(cfg: &DataParallelConfig) -> DataParallelCost {
    DataParallelCost {
        steps_per_batch: cfg.fw_steps + cfg.bw_steps + cfg.allreduce_steps,
        syncs_per_batch: 1.0,
    }
}

/// ADA-GP data-parallel cost at GP fraction `g`:
///
/// * BP batches: FW + BW + predictor (3α) + all-reduce;
/// * GP batches: FW + predictor (α) only — gradients are predicted locally
///   from locally averaged activations, so no gradient all-reduce is
///   issued.
///
/// # Panics
///
/// Panics if `g` is outside `[0, 1]`.
pub fn adagp_cost(cfg: &DataParallelConfig, g: f64) -> DataParallelCost {
    assert!((0.0..=1.0).contains(&g), "GP fraction must be in [0, 1]");
    let bp = cfg.fw_steps + cfg.bw_steps + 3.0 * cfg.alpha_steps + cfg.allreduce_steps;
    let gp = cfg.fw_steps + cfg.alpha_steps;
    DataParallelCost {
        steps_per_batch: g * gp + (1.0 - g) * bp,
        syncs_per_batch: 1.0 - g,
    }
}

/// ADA-GP speed-up over baseline data parallelism at GP fraction `g`.
pub fn adagp_speedup(cfg: &DataParallelConfig, g: f64) -> f64 {
    baseline_cost(cfg).steps_per_batch / adagp_cost(cfg, g).steps_per_batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_halves_syncs() {
        // §6.5.1: at the steady 1:1 ratio, synchronization steps halve.
        let cfg = DataParallelConfig::default();
        let c = adagp_cost(&cfg, 0.5);
        assert!((c.syncs_per_batch - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_grows_with_gp_fraction() {
        let cfg = DataParallelConfig::default();
        let s0 = adagp_speedup(&cfg, 0.0);
        let s5 = adagp_speedup(&cfg, 0.5);
        let s8 = adagp_speedup(&cfg, 0.8);
        assert!(s0 < s5 && s5 < s8);
        // At g=0 ADA-GP pays only the predictor overhead.
        assert!(s0 <= 1.0);
    }

    #[test]
    fn steady_state_speedup_in_expected_band() {
        // (1+2+1) / (0.5*(1+0.1) + 0.5*(1+2+0.3+1)) = 4 / 2.7 ≈ 1.48 —
        // consistent with the single-chip 1.47x average once sync is free.
        let cfg = DataParallelConfig::default();
        let s = adagp_speedup(&cfg, 0.5);
        assert!((1.3..1.7).contains(&s), "speed-up {s}");
    }

    #[test]
    fn expensive_allreduce_amplifies_benefit() {
        let cheap = DataParallelConfig {
            allreduce_steps: 0.1,
            ..Default::default()
        };
        let costly = DataParallelConfig {
            allreduce_steps: 3.0,
            ..Default::default()
        };
        assert!(adagp_speedup(&costly, 0.5) > adagp_speedup(&cheap, 0.5));
    }

    #[test]
    fn all_gp_never_syncs() {
        let cfg = DataParallelConfig::default();
        assert_eq!(adagp_cost(&cfg, 1.0).syncs_per_batch, 0.0);
    }
}
