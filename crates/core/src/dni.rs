//! A DNI-style baseline (Jaderberg et al., §2 of the ADA-GP paper):
//! synthetic gradients are *applied immediately* to every layer while the
//! backpropagation pass still runs in full to train the auxiliary
//! predictor.
//!
//! The paper's central criticism of this line of work is performance: "DNI
//! does not eliminate the backpropagation step at all. Instead, it
//! increases computations of the backpropagation step." This module lets
//! the repository demonstrate that comparison directly: `DniTrainer` never
//! skips a backward pass (so the accelerator model gives it ≤1× speed-up),
//! whereas `AdaGp` skips it on every GP batch.

use crate::metrics::{gradient_errors, GradientErrors};
use crate::predictor::{Predictor, PredictorConfig};
use adagp_nn::module::{site_metas, ForwardCtx, Module};
use adagp_nn::optim::Optimizer;
use adagp_nn::SiteMeta;
use adagp_tensor::softmax::cross_entropy;
use adagp_tensor::{Prng, Tensor};

/// Per-batch statistics of a DNI training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DniBatchStats {
    /// Task loss.
    pub loss: f32,
    /// Mean predictor training loss across sites.
    pub predictor_loss: f32,
    /// Mean MAPE between synthetic and true gradients.
    pub mape: f32,
}

/// Decoupled-Neural-Interface-style trainer: weights are updated with
/// synthetic (predicted) gradients as soon as activations are available,
/// and the full backward pass still runs to supervise the predictor.
pub struct DniTrainer {
    predictor: Predictor,
    sites: Vec<SiteMeta>,
    mape_eps: f32,
}

impl std::fmt::Debug for DniTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DniTrainer(sites={})", self.sites.len())
    }
}

impl DniTrainer {
    /// Builds a DNI trainer for `model`, sharing ADA-GP's predictor
    /// architecture for a like-for-like comparison.
    ///
    /// # Panics
    ///
    /// Panics if the model has no prediction sites.
    pub fn new(cfg: PredictorConfig, model: &mut dyn Module, rng: &mut Prng) -> Self {
        let sites = site_metas(model);
        assert!(!sites.is_empty(), "model exposes no prediction sites");
        let predictor = Predictor::for_sites(cfg, &sites, rng);
        DniTrainer {
            predictor,
            sites,
            mape_eps: 1e-3,
        }
    }

    /// Site metadata.
    pub fn sites(&self) -> &[SiteMeta] {
        &self.sites
    }

    /// One DNI training batch:
    ///
    /// 1. forward (recording activations);
    /// 2. synthetic gradients are written into every site (the "decoupled"
    ///    update signal);
    /// 3. the real backward pass runs anyway — its true gradients
    ///    *replace* the bookkeeping gradient for non-site parameters and
    ///    supervise the predictor;
    /// 4. one optimizer step applies the synthetic site gradients and the
    ///    true non-site gradients.
    ///
    /// Crucially the backward pass is never skipped, so DNI's cost is the
    /// baseline's cost plus predictor work — the paper's §2 argument.
    pub fn train_batch(
        &mut self,
        model: &mut dyn Module,
        opt: &mut dyn Optimizer,
        x: &Tensor,
        targets: &[usize],
    ) -> DniBatchStats {
        let logits = model.forward(x, &mut ForwardCtx::train_recording());
        let (loss, dlogits) = cross_entropy(&logits, targets);
        // Full backward (true gradients accumulate everywhere).
        model.backward(&dlogits);

        // For every site: compare + train predictor on the true gradient,
        // then *overwrite* the site gradient with the synthetic one.
        let predictor = &mut self.predictor;
        let eps = self.mape_eps;
        let mut pred_losses = Vec::with_capacity(self.sites.len());
        let mut mapes = Vec::with_capacity(self.sites.len());
        model.visit_sites(&mut |site| {
            let meta = site.meta();
            if let Some(act) = site.take_activation() {
                let true_grad = site.weight_param().grad.clone();
                let synthetic = predictor.predict_gradient(&meta, &act);
                let e: GradientErrors = gradient_errors(&synthetic, &true_grad, eps);
                mapes.push(e.mape);
                pred_losses.push(predictor.train_step(&meta, &act, &true_grad));
                let w = site.weight_param();
                w.zero_grad();
                w.accumulate_grad(&synthetic);
            }
        });
        opt.step(model);
        let n = pred_losses.len().max(1) as f32;
        DniBatchStats {
            loss,
            predictor_loss: pred_losses.iter().sum::<f32>() / n,
            mape: mapes.iter().sum::<f32>() / n,
        }
    }
}

/// Relative training cost of DNI vs ADA-GP per the §3.7 step model: DNI
/// pays the full baseline (3 steps/layer) plus predictor FW+BW (3α) on
/// *every* batch, while ADA-GP's GP batches cost only `1 + α`.
///
/// Returns `(dni_steps_per_batch, adagp_gp_steps_per_batch,
/// baseline_steps_per_batch)` for an `n_layers` model.
pub fn dni_vs_adagp_steps(n_layers: usize, alpha: f64) -> (f64, f64, f64) {
    let n = n_layers as f64;
    let baseline = 3.0 * n;
    let dni = 3.0 * n + 3.0 * n * alpha;
    let adagp_gp = n + n * alpha;
    (dni, adagp_gp, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_nn::containers::Sequential;
    use adagp_nn::layers::{Conv2d, Flatten, Linear, Relu};
    use adagp_nn::optim::Sgd;

    fn tiny_model(rng: &mut Prng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Conv2d::new(1, 4, 3, 1, 1, true, rng));
        m.push(Relu::new());
        m.push(Flatten::new());
        m.push(Linear::new(4 * 4 * 4, 3, true, rng));
        m
    }

    #[test]
    fn dni_trains_and_reports_stats() {
        let mut rng = Prng::seed_from_u64(0);
        let mut model = tiny_model(&mut rng);
        let mut dni = DniTrainer::new(PredictorConfig::default(), &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.9);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        let stats = dni.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        assert!(stats.loss.is_finite());
        assert!(stats.predictor_loss.is_finite());
        assert!(stats.mape.is_finite());
        assert_eq!(dni.sites().len(), 2);
    }

    #[test]
    fn dni_updates_sites_with_synthetic_gradients() {
        let mut rng = Prng::seed_from_u64(1);
        let mut model = tiny_model(&mut rng);
        let mut dni = DniTrainer::new(PredictorConfig::default(), &mut model, &mut rng);
        let mut opt = Sgd::new(0.05, 0.0);
        let mut before = Vec::new();
        model.visit_sites(&mut |s| before.push(s.weight_param().value.clone()));
        let x = Tensor::ones(&[2, 1, 4, 4]);
        dni.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        let mut after = Vec::new();
        model.visit_sites(&mut |s| after.push(s.weight_param().value.clone()));
        assert!(before
            .iter()
            .zip(after.iter())
            .any(|(b, a)| b.sub(a).norm() > 0.0));
    }

    #[test]
    fn dni_never_skips_backward_in_step_model() {
        // The paper's §2 point: DNI >= baseline cost; ADA-GP GP << both.
        let (dni, adagp_gp, baseline) = dni_vs_adagp_steps(10, 0.1);
        assert!(dni >= baseline);
        assert!(adagp_gp < baseline / 2.0);
        assert!(adagp_gp < dni / 2.0);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut rng = Prng::seed_from_u64(9);
            let mut model = tiny_model(&mut rng);
            let mut dni = DniTrainer::new(PredictorConfig::default(), &mut model, &mut rng);
            let mut opt = Sgd::new(0.01, 0.9);
            let x = Tensor::ones(&[2, 1, 4, 4]);
            dni.train_batch(&mut model, &mut opt, &x, &[0, 1]).loss
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }
}
