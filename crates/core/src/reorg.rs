//! Tensor reorganization (§3.6 of the paper).
//!
//! The predictor must emit `out_ch × in_ch × k × k` gradients for a conv
//! layer — far too many for a small model to produce from a flat view of
//! the activations. The paper's reorganization:
//!
//! 1. **Batch mean** — average the output activations `(B, out_ch, W, H)`
//!    over the batch, capturing the combined effect of all samples:
//!    `(out_ch, W, H)`.
//! 2. **Channels as batch** — treat each output channel as an independent
//!    predictor sample: `(out_ch, 1, W, H)`. Each filter's gradient row
//!    (`in_ch * k * k` values) is predicted from its own channel's
//!    activation map.
//!
//! Linear layers follow the same scheme with `out_features` as the channel
//! axis and a 1×1 spatial map.

use adagp_nn::{SiteKind, SiteMeta};
use adagp_tensor::Tensor;

/// A reorganized activation ready for the predictor: shape
/// `(out_ch, 1, W, H)`.
#[derive(Debug, Clone)]
pub struct ReorganizedActivation {
    /// Predictor input of shape `(out_ch, 1, W, H)`.
    pub input: Tensor,
    /// Gradient row length this site needs (`in_ch * k * k` or
    /// `in_features`).
    pub row_len: usize,
}

/// Reorganizes a recorded output activation for the predictor.
///
/// * Conv sites: activation `(B, out_ch, W, H)` → `(out_ch, 1, W, H)`.
/// * Linear sites: activation `(B, out_features)` → `(out_features, 1, 1, 1)`.
///
/// # Panics
///
/// Panics if the activation rank does not match the site kind or the
/// channel count disagrees with the weight shape.
pub fn reorganize(meta: &SiteMeta, activation: &Tensor) -> ReorganizedActivation {
    match meta.kind {
        SiteKind::Conv2d => {
            assert_eq!(
                activation.ndim(),
                4,
                "conv activation must be (B, out_ch, W, H)"
            );
            let out_ch = meta.out_channels();
            assert_eq!(
                activation.dim(1),
                out_ch,
                "activation channels disagree with weight shape"
            );
            let (h, w) = (activation.dim(2), activation.dim(3));
            // Step 1: batch mean -> (out_ch, H, W).
            let mean = activation.mean_axis0();
            // Step 2: out_ch as batch -> (out_ch, 1, H, W).
            let input = mean.reshape(&[out_ch, 1, h, w]);
            ReorganizedActivation {
                input,
                row_len: meta.grads_per_out_channel(),
            }
        }
        SiteKind::Linear => {
            assert_eq!(
                activation.ndim(),
                2,
                "linear activation must be (B, out_features)"
            );
            let out_f = meta.out_channels();
            assert_eq!(
                activation.dim(1),
                out_f,
                "activation features disagree with weight shape"
            );
            let mean = activation.mean_axis0(); // (out_f,)
            let input = mean.reshape(&[out_f, 1, 1, 1]);
            ReorganizedActivation {
                input,
                row_len: meta.grads_per_out_channel(),
            }
        }
    }
}

/// Reshapes a true weight gradient into predictor-target rows
/// `(out_ch, row_len)`.
///
/// # Panics
///
/// Panics if the gradient shape disagrees with the site metadata.
pub fn gradient_rows(meta: &SiteMeta, grad: &Tensor) -> Tensor {
    assert_eq!(
        grad.shape(),
        &meta.weight_shape[..],
        "gradient shape disagrees with site metadata"
    );
    let out_ch = meta.out_channels();
    let row = meta.grads_per_out_channel();
    grad.reshape(&[out_ch, row])
}

/// Inverse of [`gradient_rows`]: reshapes predicted rows back into the
/// weight-gradient shape.
///
/// # Panics
///
/// Panics if `rows` is not `(out_ch, row_len)` for this site.
pub fn rows_to_gradient(meta: &SiteMeta, rows: &Tensor) -> Tensor {
    assert_eq!(rows.ndim(), 2, "rows must be rank-2");
    assert_eq!(rows.dim(0), meta.out_channels(), "row count mismatch");
    assert_eq!(
        rows.dim(1),
        meta.grads_per_out_channel(),
        "row length mismatch"
    );
    rows.reshape(&meta.weight_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_tensor::{init, Prng};

    fn conv_meta() -> SiteMeta {
        SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![8, 4, 3, 3],
            label: "c".into(),
        }
    }

    fn linear_meta() -> SiteMeta {
        SiteMeta {
            kind: SiteKind::Linear,
            weight_shape: vec![10, 32],
            label: "l".into(),
        }
    }

    #[test]
    fn conv_reorganization_shapes() {
        let mut rng = Prng::seed_from_u64(0);
        let act = init::gaussian(&[16, 8, 5, 5], 0.0, 1.0, &mut rng);
        let r = reorganize(&conv_meta(), &act);
        assert_eq!(r.input.shape(), &[8, 1, 5, 5]);
        assert_eq!(r.row_len, 4 * 9);
    }

    #[test]
    fn conv_reorganization_is_batch_mean() {
        // Two samples; channel 0 holds 1s and 3s -> mean 2.
        let act = Tensor::from_vec(
            vec![
                1.0, 1.0, 1.0, 1.0, // sample 0, ch 0
                5.0, 5.0, 5.0, 5.0, // sample 0, ch 1
                3.0, 3.0, 3.0, 3.0, // sample 1, ch 0
                7.0, 7.0, 7.0, 7.0, // sample 1, ch 1
            ],
            &[2, 2, 2, 2],
        );
        let meta = SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![2, 1, 1, 1],
            label: "c".into(),
        };
        let r = reorganize(&meta, &act);
        assert_eq!(r.input.shape(), &[2, 1, 2, 2]);
        assert!(r.input.data()[..4].iter().all(|&v| v == 2.0));
        assert!(r.input.data()[4..].iter().all(|&v| v == 6.0));
    }

    #[test]
    fn linear_reorganization_shapes() {
        let mut rng = Prng::seed_from_u64(1);
        let act = init::gaussian(&[16, 10], 0.0, 1.0, &mut rng);
        let r = reorganize(&linear_meta(), &act);
        assert_eq!(r.input.shape(), &[10, 1, 1, 1]);
        assert_eq!(r.row_len, 32);
    }

    #[test]
    fn gradient_rows_roundtrip() {
        let mut rng = Prng::seed_from_u64(2);
        let meta = conv_meta();
        let grad = init::gaussian(&[8, 4, 3, 3], 0.0, 0.01, &mut rng);
        let rows = gradient_rows(&meta, &grad);
        assert_eq!(rows.shape(), &[8, 36]);
        let back = rows_to_gradient(&meta, &rows);
        assert_eq!(back, grad);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn wrong_activation_channels_panics() {
        let act = Tensor::ones(&[2, 4, 3, 3]); // meta says 8 channels
        let _ = reorganize(&conv_meta(), &act);
    }
}
