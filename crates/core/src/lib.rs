//! # adagp-core
//!
//! The ADA-GP algorithm (Janfaza et al., MICRO 2023): **adaptive gradient
//! prediction** for accelerating DNN training while maintaining accuracy.
//!
//! ADA-GP attaches a single small *predictor model* to a DNN. The predictor
//! consumes each layer's output activations (after a tensor reorganization
//! that folds the batch and treats output channels as samples, §3.6 of the
//! paper) and predicts that layer's weight gradients. Training proceeds in
//! three phases (§3.1):
//!
//! * **Warm-up** — the first `L` epochs use plain backpropagation while the
//!   predictor learns from the true gradients.
//! * **Phase BP** — backprop trains the model *and* the predictor.
//! * **Phase GP** — backprop is skipped entirely; the model's weights are
//!   updated with predicted gradients as the forward pass proceeds.
//!
//! The controller alternates GP and BP batches at a ratio that anneals
//! from 4:1 down to 1:1 over training (§3.5).
//!
//! ## Quickstart
//!
//! ```
//! use adagp_core::{AdaGp, AdaGpConfig, Phase};
//! use adagp_nn::{layers::{Conv2d, Linear, Relu, Flatten}, containers::Sequential};
//! use adagp_nn::optim::Sgd;
//! use adagp_tensor::{Prng, Tensor};
//!
//! let mut rng = Prng::seed_from_u64(0);
//! let mut model = Sequential::new();
//! model.push(Conv2d::new(3, 4, 3, 1, 1, true, &mut rng));
//! model.push(Relu::new());
//! model.push(Flatten::new());
//! model.push(Linear::new(4 * 8 * 8, 10, true, &mut rng));
//!
//! let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut model, &mut rng);
//! let mut opt = Sgd::new(0.01, 0.9);
//! let x = Tensor::ones(&[2, 3, 8, 8]);
//! let stats = adagp.train_batch(&mut model, &mut opt, &x, &[1, 2]);
//! assert_eq!(stats.phase, Phase::WarmUp);
//! ```

pub mod controller;
pub mod dni;
pub mod fit;
pub mod metrics;
pub mod predictor;
pub mod reorg;
pub mod trainer;

pub use controller::{Phase, PhaseController, ScheduleConfig};
pub use dni::DniTrainer;
pub use metrics::{GradientErrors, PredictorMetrics};
pub use predictor::{Predictor, PredictorConfig};
pub use trainer::{AdaGp, AdaGpConfig, BaselineTrainer, BatchStats, PipelinedEpochReport};
